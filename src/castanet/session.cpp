#include "src/castanet/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>

#include "src/core/error.hpp"
#include "src/core/log.hpp"
#include "src/core/telemetry.hpp"

namespace castanet::cosim {

namespace {
/// Process-wide session elaboration hook (see set_elaboration_hook).
/// Written once at program setup, read at the first run_until; install it
/// before any session runs.
VerificationSession::ElaborationHook g_session_hook;
}  // namespace

void VerificationSession::set_elaboration_hook(ElaborationHook hook) {
  g_session_hook = std::move(hook);
}

VerificationSession::VerificationSession(netsim::Simulation& net,
                                         netsim::Node& node, unsigned streams,
                                         Params params)
    : net_(net),
      from_gateway_(
          make_transport(params.transport, params.ipc_overhead_per_message)),
      params_(params) {
  gateway_ = &node.add_process<GatewayProcess>("castanet_if", *from_gateway_,
                                               streams);
}

MessageChannel& VerificationSession::gateway_channel() {
  auto* ch = dynamic_cast<MessageChannel*>(from_gateway_.get());
  require(ch != nullptr,
          "VerificationSession: gateway_channel() needs the in-process "
          "transport; use gateway_transport() instead");
  return *ch;
}

VerificationSession::~VerificationSession() {
  // run_until always joins before returning, so live workers here mean an
  // unwind tore through the session; make sure no thread can outlive the
  // members it touches.
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->cmd->close();
      w->resp->close();
      w->thread.join();
    }
  }
}

std::size_t VerificationSession::attach(DutBackend& backend) {
  require(!ran_, "VerificationSession: attach every backend before running");
  backends_.push_back(&backend);
  responses_drained_.push_back(0);
  worker_batches_total_.push_back(0);
  send_blocks_total_.push_back(0);
  nudges_total_.push_back(0);
  return backends_.size() - 1;
}

void VerificationSession::set_primary(std::size_t index) {
  require(index < backends_.size(), "VerificationSession: primary out of range");
  require(!ran_, "VerificationSession: set the primary before running");
  primary_ = index;
}

void VerificationSession::run_until(SimTime limit) {
  require(!backends_.empty(),
          "VerificationSession: attach at least one backend before running");
  if (!ran_) {
    comparator_.attach(backends_.size(), primary_);
    ran_ = true;
    // Opt-in elaboration hook (see set_elaboration_hook): the session is
    // fully assembled — backends attached, primary chosen — and nothing has
    // run yet, so static analysis sees the same structures the run will use.
    if (g_session_hook) g_session_hook(*this);
  }
  assign_tracks();
  if (params_.pipelined) {
    run_until_pipelined(limit);
  } else {
    run_until_serial(limit);
  }
  finish_backends(limit);
  if (telemetry::enabled()) publish_metrics();
}

// ---------------------------------------------------------------------------
// Telemetry.  assign_tracks runs at the start of every run_until so a hub
// enabled (or reset) between runs gets fresh timeline rows; while the hub is
// disabled both functions are no-ops and the cached handles are dropped.

void VerificationSession::assign_tracks() {
  if (!telemetry::enabled()) {
    fanout_timing_ = nullptr;
    stride_gauge_ = nullptr;
    compare_timing_ = nullptr;
    return;
  }
  auto& hub = telemetry::Hub::instance();
  for (DutBackend* b : backends_)
    b->set_telemetry_track(hub.track("backend:" + b->name()));
  net_.scheduler().set_telemetry_track(hub.track("net"));
  fanout_timing_ = &hub.timing("session.fanout_batch");
  stride_gauge_ = &hub.gauge("session.effective_stride");
  compare_timing_ = &hub.timing("session.compare_ns");
}

void VerificationSession::publish_metrics() const {
  auto& hub = telemetry::Hub::instance();
  const Stats s = stats();
  hub.publish_count("session.net_events", s.net_events);
  hub.publish_count("session.messages_to_hdl", s.messages_to_hdl);
  hub.publish_count("session.responses", s.responses);
  hub.publish_count("session.window_grant_stalls", s.window_grant_stalls);
  hub.publish_count("session.max_channel_occupancy", s.max_channel_occupancy);
  hub.publish_count("session.fanout_batches", s.fanout_batches);
  hub.publish_count("session.fanout_messages", s.fanout_messages);
  hub.publish_count("session.max_effective_stride", s.max_effective_stride);
  hub.publish_count("session.divergences", comparator_.divergences().size());
  // Calendar-queue health for the network-side event list (dsim.wheel.*).
  net_.scheduler().publish_telemetry();
  // Per-flow cell statistics accumulate on the network simulation; publish
  // them here because the co-verification loop never calls net_.finish()
  // (kEnd interrupts would perturb the measured run).
  if (!net_.flows().empty()) net_.flows().publish("flow", net_.now().seconds());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const DutBackend& b = *backends_[i];
    const BackendStats& bs = s.backends[i];
    const std::string prefix = "backend." + b.name() + ".";
    hub.publish_count(prefix + "windows", bs.windows);
    hub.publish_count(prefix + "causality_errors", bs.causality_errors);
    hub.publish_count(prefix + "lookahead_stalls", bs.lookahead_stalls);
    hub.publish_count(prefix + "responses", bs.responses);
    hub.publish_count(prefix + "worker_batches", bs.worker_batches);
    hub.publish_count(prefix + "send_blocks", bs.send_blocks);
    hub.publish_count(prefix + "nudge_wakeups", bs.nudge_wakeups);
    hub.publish_stat(prefix + "lag_seconds", b.sync().lag_stat());
    hub.publish_histogram(prefix + "lag_seconds_hist", b.sync().lag_histogram());
    const double net_now = b.sync().network_time().seconds();
    for (const ConservativeSync::QueueDepth& q : b.sync().queue_depths()) {
      hub.publish_time_avg(
          prefix + "queue_depth." + std::to_string(q.type), *q.depth, net_now);
    }
  }
}

// ---------------------------------------------------------------------------
// Shared response path.

void VerificationSession::schedule_response(TimedMessage m) {
  // A response computed at backend time t re-enters the network model no
  // earlier than t (plus the configured latency) and never in the network's
  // past.
  SimTime when = m.timestamp + params_.response_latency;
  if (when < net_.now()) when = net_.now();
  net_.scheduler().schedule_at(when, [this, msg = std::move(m)] {
    if (on_response_) {
      on_response_(msg);
      return;
    }
    if (msg.cell) {
      netsim::Packet p;
      p.set_id(net_.next_packet_id());
      p.set_creation_time(net_.now());
      p.set_cell(*msg.cell);
      gateway_->emit_response(msg.type, std::move(p));
    }
  });
}

void VerificationSession::handle_response(std::size_t backend, TimedMessage m,
                                          bool in_run) {
  ++responses_drained_[backend];
  if (compare_timing_ != nullptr && telemetry::enabled()) {
    const auto t0 = std::chrono::steady_clock::now();
    comparator_.note_response(backend, m);
    compare_timing_->record(
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count());
  } else {
    comparator_.note_response(backend, m);
  }
  // New comparator divergences become instant events on the offending
  // backend's timeline row.  The count is tracked unconditionally so
  // enabling the hub mid-sequence does not replay old divergences.
  const std::size_t n_div = comparator_.divergences().size();
  if (n_div > divergences_seen_) {
    if (telemetry::enabled()) {
      telemetry::instant(
          "divergence", backends_[backend]->telemetry_track(),
          {{"stream", static_cast<double>(m.type)},
           {"ts_us", m.timestamp.seconds() * 1e6},
           {"count", static_cast<double>(n_div)}});
    }
    divergences_seen_ = n_div;
  }
  if (backend != primary_) return;  // secondary backends are pure checkers
  if (telemetry::enabled() && m.cell) {
    // Cells leaving the DUT: observed here, not in GatewayProcess, because
    // scenarios may install a response handler that bypasses emit_response
    // (the switch rig's monitors do).  Sim-time based, so deterministic.
    net_.flows().note_out({m.cell->header.vpi, m.cell->header.vci,
                           static_cast<std::uint32_t>(m.type)},
                          m.timestamp);
  }
  if (in_run) {
    schedule_response(std::move(m));
  } else if (on_response_) {
    // finish()-hook responses arrive after the horizon: the network loop is
    // over, so they cannot be scheduled as events.  The handler runs
    // directly; without one they feed the comparator only.
    on_response_(m);
  }
}

void VerificationSession::drain_backend(std::size_t backend, bool in_run) {
  resp_scratch_.clear();
  backends_[backend]->drain_responses(resp_scratch_);
  for (TimedMessage& m : resp_scratch_)
    handle_response(backend, std::move(m), in_run);
  resp_scratch_.clear();
}

void VerificationSession::finish_backends(SimTime limit) {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    backends_[i]->finish(limit);
    drain_backend(i, /*in_run=*/false);
  }
}

// ---------------------------------------------------------------------------
// Serial mode: the N-backend generalization of CoVerification's loop.  Per
// network event, every backend sees the identical protocol input (gateway
// messages, then the originator's clock) and catches up to its own window;
// draining after the full catch-up is equivalent to draining per grant
// because net time does not advance inside a catch-up (scheduled re-entry
// times and their order are unchanged).

void VerificationSession::run_until_serial(SimTime limit) {
  net_.start();
  while (true) {
    const SimTime next = net_.scheduler().next_event_time();
    if (next > limit) break;
    net_.scheduler().step();
    ++net_events_;

    msg_scratch_.clear();
    while (auto m = from_gateway_->receive())
      msg_scratch_.push_back(std::move(*m));
    if (!msg_scratch_.empty()) {
      ++fanout_batches_;
      fanout_messages_ += msg_scratch_.size();
      if (telemetry::enabled() && fanout_timing_)
        fanout_timing_->record(static_cast<double>(msg_scratch_.size()));
    }
    const TimedMessage clock = make_time_update(net_.now());
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      DutBackend& b = *backends_[i];
      for (const TimedMessage& m : msg_scratch_) b.push(m);
      b.push(clock);
      b.catch_up(limit);
      drain_backend(i, /*in_run=*/true);
    }
  }
  // Final catch-up: grant every backend the rest of the horizon.  Responses
  // scheduled back into the network may create new events, so iterate until
  // all sides are quiescent up to the limit.
  for (;;) {
    net_.scheduler().advance_to(
        std::min(limit, net_.scheduler().next_event_time()));
    msg_scratch_.clear();
    while (auto m = from_gateway_->receive())
      msg_scratch_.push_back(std::move(*m));
    const TimedMessage horizon = make_time_update(limit);
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      DutBackend& b = *backends_[i];
      for (const TimedMessage& m : msg_scratch_) b.push(m);
      b.push(horizon);
      b.catch_up(limit);
      drain_backend(i, /*in_run=*/true);
    }
    if (net_.scheduler().next_event_time() > limit) break;
    net_.run_until(limit);
  }
}

// ---------------------------------------------------------------------------
// Pipelined mode: coverify.cpp's worker protocol, instantiated once per
// backend.  Each worker owns its backend for the duration of the run; the
// session thread fans every grant out to all command channels and drains
// all response channels.  Workers share nothing but done_mu_/done_cv_ (the
// completion-edge wakeup) — the §3.1 windows remain the only
// synchronization points between simulators.

void VerificationSession::start_workers() {
  workers_.clear();
  for (DutBackend* b : backends_) {
    auto w = std::make_unique<Worker>();
    w->backend = b;
    w->cmd = std::make_unique<SpscChannel<WorkerCmd>>(params_.channel_capacity);
    w->resp =
        std::make_unique<SpscChannel<TimedMessage>>(params_.channel_capacity);
    w->track = b->telemetry_track();  // assign_tracks ran before this
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    Worker* raw = w.get();
    raw->thread = std::thread([this, raw] { worker_main(*raw); });
  }
}

void VerificationSession::worker_main(Worker& w) {
  set_thread_log_context("worker:" + w.backend->name());
  try {
    // Coalesce grants into large catch-up batches (see coverify.cpp for the
    // tuning rationale of the backlog hint and the chunk size).
    const std::size_t backlog_hint = std::min<std::size_t>(
        std::size_t{64},
        std::max<std::size_t>(std::size_t{1}, params_.channel_capacity / 4));
    std::size_t chunk = 16;
    if (const char* env = std::getenv("CASTANET_COSIM_CHUNK")) {
      chunk = std::strtoull(env, nullptr, 10);
      if (chunk == 0) chunk = 1;
    }
    std::vector<WorkerCmd> cmds;
    for (;;) {
      if (!w.cmd->receive_some(cmds, backlog_hint,
                               std::chrono::milliseconds(10))) {
        break;
      }
      if (cmds.empty()) continue;  // timed out waiting for a backlog
      for (std::size_t i = 0; i < cmds.size(); i += chunk) {
        const std::size_t end = std::min(cmds.size(), i + chunk);
        // The batch span shares the backend's timeline row: it encloses the
        // grant spans of this catch-up, which enclose the kernel slices.
        std::optional<telemetry::Span> span;
        if (telemetry::enabled()) {
          span.emplace("worker.batch", w.track);
          span->arg("cmds", static_cast<double>(end - i));
        }
        SimTime horizon = SimTime::zero();
        for (std::size_t c = i; c < end; ++c) {
          for (TimedMessage& m : cmds[c].msgs) w.backend->push(m);
          horizon = std::max(horizon, cmds[c].limit);
        }
        // One clock update per chunk: net_now is monotone in send order, so
        // the last command's clock subsumes the earlier ones.
        w.backend->push(make_time_update(cmds[end - 1].net_now));
        worker_catch_up(w, horizon);
        span.reset();
        w.batches.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t done =
            w.done.fetch_add(end - i, std::memory_order_release) + (end - i);
        // Only wake the flushing thread on the completion edge; the empty
        // lock/unlock pairs the counter update with a flusher that has
        // checked the predicate but not yet parked on done_cv_.
        if (done >= w.sent.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(done_mu_); }
          done_cv_.notify_all();
        }
      }
      cmds.clear();
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      w.error = std::current_exception();
    }
    w.dead.store(true, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    w.exited = true;
  }
  done_cv_.notify_all();
}

bool VerificationSession::worker_catch_up(Worker& w, SimTime limit) {
  // Same convergence loop as the serial path, but responses are forwarded
  // over the SPSC channel for the session thread to schedule/compare.  The
  // responses of one advance ship as a batch: one lock acquisition instead
  // of one per message.  Draining inside the catch-up lets the bounded
  // response channel apply back-pressure without deadlock.
  std::vector<TimedMessage> out;
  return w.backend->catch_up(limit, [&w, &out]() -> bool {
    out.clear();
    w.backend->drain_responses(out);
    if (!out.empty()) {
      const std::size_t n = out.size();
      if (w.resp->send_all(out) < n) return false;  // closed: shutting down
    }
    return true;
  });
}

void VerificationSession::send_commands(std::vector<WorkerCmd>& cmds) {
  if (cmds.empty()) return;
  std::size_t msgs = 0;
  for (const WorkerCmd& c : cmds) msgs += c.msgs.size();
  if (msgs > 0) {
    ++fanout_batches_;
    fanout_messages_ += msgs;
    if (telemetry::enabled() && fanout_timing_)
      fanout_timing_->record(static_cast<double>(msgs));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    // The last worker takes the originals; earlier ones get copies.
    std::vector<WorkerCmd> local =
        (i + 1 == workers_.size()) ? std::move(cmds) : cmds;
    std::size_t pos = 0;
    // Lazily opened on the first full channel: the span's duration is
    // exactly how long this batch sat blocked on the bottleneck backend.
    std::optional<telemetry::Span> stall;
    while (pos < local.size() && !w.dead.load(std::memory_order_acquire)) {
      const std::size_t accepted = w.cmd->try_send_some(local, pos);
      if (accepted > 0) {
        pos += accepted;
        w.sent.fetch_add(accepted, std::memory_order_release);
        continue;
      }
      // Full channel: this backend is the bottleneck right now.  Drain
      // responses while stalled so no worker can deadlock blocked on a full
      // response channel while we block on a full command channel.
      ++window_grant_stalls_;
      if (telemetry::enabled() && !stall) {
        stall.emplace("grant_stall", telemetry::kMainTrack);
        stall->arg("backend", static_cast<double>(i));
      }
      drain_worker_responses();
      w.cmd->wait_space();
    }
    // A dead worker's error is rethrown by shutdown_workers().
  }
  cmds.clear();
}

void VerificationSession::update_stride(std::uint64_t stalls_before) {
  if (!params_.adaptive_stride) return;
  const std::uint32_t floor_stride =
      std::max<std::uint32_t>(1, params_.clock_announce_stride);
  const std::uint32_t max_stride =
      params_.max_clock_announce_stride != 0
          ? std::max(params_.max_clock_announce_stride, floor_stride)
          : floor_stride * 16;
  std::size_t max_occ = 0;
  for (const auto& w : workers_)
    max_occ = std::max(max_occ, w->cmd->size());
  // Pressure: this flush had to stall on a full channel, or a command
  // channel is at half capacity or worse — the workers are falling behind,
  // so grant them bigger windows (fewer, coarser sync points).  Four calm
  // flushes in a row decay the stride back towards the configured floor,
  // restoring the finer-grained overlap once the workers keep up.
  const bool pressure = window_grant_stalls_ > stalls_before ||
                        max_occ * 2 >= params_.channel_capacity;
  if (pressure) {
    calm_streak_ = 0;
    if (effective_stride_ < max_stride)
      effective_stride_ = std::min(max_stride, effective_stride_ * 2);
  } else if (effective_stride_ > floor_stride && ++calm_streak_ >= 4) {
    calm_streak_ = 0;
    effective_stride_ = std::max(floor_stride, effective_stride_ / 2);
  }
  max_effective_stride_ = std::max(max_effective_stride_, effective_stride_);
  if (telemetry::enabled() && stride_gauge_)
    stride_gauge_->set(static_cast<double>(effective_stride_));
}

void VerificationSession::drain_worker_responses() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    resp_scratch_.clear();
    if (workers_[i]->resp->try_receive_all(resp_scratch_) == 0) continue;
    for (TimedMessage& m : resp_scratch_)
      handle_response(i, std::move(m), /*in_run=*/true);
  }
  resp_scratch_.clear();
}

void VerificationSession::flush_workers() {
  // Notification-driven wait until every worker has executed everything it
  // was sent; the timeout is only a fallback that lets us drain response
  // channels if a worker ever blocks on one full.
  for (auto& w : workers_) w->cmd->nudge();
  for (;;) {
    drain_worker_responses();
    std::unique_lock<std::mutex> lk(done_mu_);
    bool all_done = true;
    for (auto& wp : workers_) {
      Worker& w = *wp;
      if (!w.dead.load(std::memory_order_acquire) &&
          w.done.load(std::memory_order_acquire) <
              w.sent.load(std::memory_order_acquire)) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    done_cv_.wait_for(lk, std::chrono::milliseconds(20));
  }
  // The last batches may have produced responses after our final drain.
  drain_worker_responses();
}

bool VerificationSession::any_worker_dead() const {
  for (const auto& w : workers_)
    if (w->dead.load(std::memory_order_acquire)) return true;
  return false;
}

void VerificationSession::shutdown_workers() {
  for (auto& w : workers_) w->cmd->close();
  // Keep draining responses until every worker returns, so none can sit
  // blocked on a full response channel while we wait to join.
  for (;;) {
    drain_worker_responses();
    std::unique_lock<std::mutex> lk(done_mu_);
    bool all_exited = true;
    for (auto& w : workers_) {
      if (!w->exited) {
        all_exited = false;
        break;
      }
    }
    if (all_exited) break;
    done_cv_.wait_for(lk, std::chrono::milliseconds(5));
  }
  for (auto& w : workers_) w->resp->close();
  for (auto& w : workers_) w->thread.join();
  drain_worker_responses();
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      max_channel_occupancy_ = std::max(
          {max_channel_occupancy_,
           static_cast<std::uint64_t>(w.cmd->max_occupancy()),
           static_cast<std::uint64_t>(w.resp->max_occupancy())});
      worker_batches_total_[i] += w.batches.load(std::memory_order_relaxed);
      send_blocks_total_[i] += w.cmd->send_blocks() + w.resp->send_blocks();
      nudges_total_[i] += w.cmd->nudges() + w.resp->nudges();
      if (w.error && !err) err = w.error;
    }
  }
  workers_.clear();
  if (err) std::rethrow_exception(err);
}

void VerificationSession::run_until_pipelined(SimTime limit) {
  net_.start();
  start_workers();
  SimTime announced = SimTime::zero();
  effective_stride_ = std::max<std::uint32_t>(1, params_.clock_announce_stride);
  max_effective_stride_ = std::max(max_effective_stride_, effective_stride_);
  calm_streak_ = 0;
  pending_cmds_.clear();
  pending_msgs_ = 0;
  if (telemetry::enabled() && stride_gauge_)
    stride_gauge_->set(static_cast<double>(effective_stride_));
  const std::size_t batch_msgs =
      std::max<std::size_t>(1, params_.fanout_batch_messages);
  try {
    while (true) {
      const SimTime next = net_.scheduler().next_event_time();
      if (next > limit) break;
      net_.scheduler().step();
      ++net_events_;

      // Same protocol input the serial loop would push — gateway output
      // first, then the originator's clock.  Message-carrying grants
      // accumulate into the pending batch (each keeps its own net_now, so
      // worker-side clock coalescing stays monotone); the batch flushes to
      // every worker in one bulk push once enough messages are pending or
      // the (adaptive) announce stride elapsed.  Delaying a message never
      // reorders it: per-backend input order is the accumulation order, and
      // no backend can pass the last ANNOUNCED clock, which only moves at
      // flush time.
      WorkerCmd cmd;
      while (auto m = from_gateway_->receive())
        cmd.msgs.push_back(std::move(*m));
      const SimTime now = net_.now();
      cmd.net_now = now;
      cmd.limit = limit;
      if (!cmd.msgs.empty()) {
        pending_msgs_ += cmd.msgs.size();
        pending_cmds_.push_back(std::move(cmd));
      }
      const bool boundary =
          now - announced >= params_.clock_period * effective_stride_;
      if (pending_msgs_ >= batch_msgs || boundary) {
        // At a stride boundary the clock must reach `now` even if the last
        // pending grant (or none) is older — append a pure-clock grant.
        if (boundary &&
            (pending_cmds_.empty() || pending_cmds_.back().net_now < now)) {
          WorkerCmd clock;
          clock.net_now = now;
          clock.limit = limit;
          pending_cmds_.push_back(std::move(clock));
        }
        if (!pending_cmds_.empty()) {
          announced = pending_cmds_.back().net_now;
          const std::uint64_t stalls_before = window_grant_stalls_;
          send_commands(pending_cmds_);
          pending_msgs_ = 0;
          update_stride(stalls_before);
        }
      }
      drain_worker_responses();
      if (any_worker_dead()) break;
    }
    // Final catch-up, mirroring the serial epilogue: flush whatever the
    // batcher still holds together with a horizon grant, wait for every
    // worker to finish it, and iterate because responses re-entering the
    // network can create new events below the limit.
    for (;;) {
      net_.scheduler().advance_to(
          std::min(limit, net_.scheduler().next_event_time()));
      WorkerCmd cmd;
      while (auto m = from_gateway_->receive())
        cmd.msgs.push_back(std::move(*m));
      cmd.net_now = limit;
      cmd.limit = limit;
      pending_msgs_ += cmd.msgs.size();
      pending_cmds_.push_back(std::move(cmd));
      const std::uint64_t stalls_before = window_grant_stalls_;
      send_commands(pending_cmds_);
      pending_msgs_ = 0;
      update_stride(stalls_before);
      flush_workers();
      if (any_worker_dead()) break;
      if (net_.scheduler().next_event_time() > limit) break;
      net_.run_until(limit);
    }
  } catch (...) {
    try {
      shutdown_workers();
    } catch (...) {
      // Prefer the original exception over a secondary worker failure.
    }
    throw;
  }
  shutdown_workers();
}

VerificationSession::Stats VerificationSession::stats() const {
  // Only meaningful between run_until calls; the joins in shutdown_workers()
  // order every worker-side write before these reads.
  Stats s;
  s.net_events = net_events_;
  s.messages_to_hdl = from_gateway_->messages_sent();
  s.window_grant_stalls = window_grant_stalls_;
  s.max_channel_occupancy = max_channel_occupancy_;
  s.effective_stride = effective_stride_;
  s.max_effective_stride = max_effective_stride_;
  s.fanout_batches = fanout_batches_;
  s.fanout_messages = fanout_messages_;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const DutBackend& b = *backends_[i];
    BackendStats bs;
    bs.name = b.name();
    bs.windows = b.sync().windows_granted();
    bs.causality_errors = b.sync().causality_errors();
    bs.max_lag_seconds = b.sync().max_lag_seconds();
    bs.responses = responses_drained_[i];
    bs.worker_batches = worker_batches_total_[i];
    bs.lookahead_stalls = b.sync().lookahead_stalls();
    bs.mean_lag_seconds = b.sync().lag_stat().mean();
    bs.send_blocks = send_blocks_total_[i];
    bs.nudge_wakeups = nudges_total_[i];
    s.responses += bs.responses;
    s.backends.push_back(std::move(bs));
  }
  return s;
}

}  // namespace castanet::cosim

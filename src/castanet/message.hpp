// Time-stamped typed messages and the channel connecting the simulators.
//
// "Communication between both simulators is based on the exchange of
// time-stamped messages updating the receiving simulator with the current
// simulation time of the originator" (§3.1).  In the paper the transport is
// UNIX IPC (to VSS) or the SCSI bus (to the test board); here both ends live
// in one process, so MessageChannel is an in-process queue with modeled
// per-message transport overhead accounted for the benches.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/atm/cell.hpp"
#include "src/dsim/time.hpp"

namespace castanet::cosim {

/// Message type identifier; one per logical DUT input (one per input queue
/// I_j of the synchronization protocol).
using MessageType = std::uint32_t;

struct TimedMessage {
  MessageType type = 0;
  SimTime timestamp;
  /// Abstract payload.  Cells are the common case; register operations and
  /// raw words use `words`.
  std::optional<atm::Cell> cell;
  std::vector<std::uint64_t> words;
  /// Pure time update carrying no data (the originator's clock only).
  bool time_update_only = false;
};

TimedMessage make_cell_message(MessageType type, SimTime ts,
                               const atm::Cell& c);
TimedMessage make_word_message(MessageType type, SimTime ts,
                               std::vector<std::uint64_t> words);
TimedMessage make_time_update(SimTime ts);

/// Unidirectional FIFO channel with transfer accounting.
class MessageChannel {
 public:
  struct Params {
    /// Modeled cost per message (UNIX IPC syscall pair in the paper's
    /// setup); summed into transport_overhead() for the E1/E3 benches.
    SimTime per_message_overhead = SimTime::zero();
  };

  MessageChannel() = default;
  explicit MessageChannel(Params p) : p_(p) {}

  void send(TimedMessage m);
  std::optional<TimedMessage> receive();
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  std::uint64_t messages_sent() const { return sent_; }
  SimTime transport_overhead() const { return overhead_; }

 private:
  Params p_;
  std::deque<TimedMessage> queue_;
  std::uint64_t sent_ = 0;
  SimTime overhead_;
};

}  // namespace castanet::cosim

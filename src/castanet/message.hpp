// Time-stamped typed messages and the channel connecting the simulators.
//
// "Communication between both simulators is based on the exchange of
// time-stamped messages updating the receiving simulator with the current
// simulation time of the originator" (§3.1).  In the paper the transport is
// UNIX IPC (to VSS) or the SCSI bus (to the test board); here both ends live
// in one process, so MessageChannel is an in-process queue with modeled
// per-message transport overhead accounted for the benches.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "src/atm/cell.hpp"
#include "src/dsim/time.hpp"

namespace castanet::cosim {

/// Message type identifier; one per logical DUT input (one per input queue
/// I_j of the synchronization protocol).
using MessageType = std::uint32_t;

struct TimedMessage {
  MessageType type = 0;
  SimTime timestamp;
  /// Abstract payload.  Cells are the common case; register operations and
  /// raw words use `words`.
  std::optional<atm::Cell> cell;
  std::vector<std::uint64_t> words;
  /// Pure time update carrying no data (the originator's clock only).
  bool time_update_only = false;
};

TimedMessage make_cell_message(MessageType type, SimTime ts,
                               const atm::Cell& c);
TimedMessage make_word_message(MessageType type, SimTime ts,
                               std::vector<std::uint64_t> words);
TimedMessage make_time_update(SimTime ts);

/// Abstract unidirectional FIFO transport of timed messages between the
/// network simulator and the HDL side — the seam the paper's UNIX-IPC
/// coupling occupies.  Two implementations exist: MessageChannel (below),
/// an in-process queue and the default, and SocketMessageTransport
/// (castanet/transport.hpp), which serializes every message over an AF_UNIX
/// stream socket.  Both account identical MODELED per-message overhead, so
/// swapping the physical transport never changes simulated time.
///
/// Semantics all implementations honor: send() never blocks the simulation
/// indefinitely, receive() is non-blocking (nullopt when nothing is
/// pending), and delivery is reliable and ordered.
class MessageTransport {
 public:
  virtual ~MessageTransport() = default;
  MessageTransport(const MessageTransport&) = delete;
  MessageTransport& operator=(const MessageTransport&) = delete;

  virtual void send(TimedMessage m) = 0;
  virtual std::optional<TimedMessage> receive() = 0;
  virtual bool empty() const = 0;
  virtual std::size_t pending() const = 0;

  virtual std::uint64_t messages_sent() const = 0;
  /// Accumulated modeled transport cost (the paper's IPC syscall pair).
  virtual SimTime transport_overhead() const = 0;
  /// Stable identifier ("in-process", "socket") for telemetry and lint.
  virtual const char* kind_name() const = 0;

 protected:
  MessageTransport() = default;
};

/// Unidirectional FIFO channel with transfer accounting — the in-process
/// MessageTransport implementation (and the zero-regression default).
class MessageChannel final : public MessageTransport {
 public:
  struct Params {
    /// Modeled cost per message (UNIX IPC syscall pair in the paper's
    /// setup); summed into transport_overhead() for the E1/E3 benches.
    SimTime per_message_overhead = SimTime::zero();
  };

  MessageChannel() = default;
  explicit MessageChannel(Params p) : p_(p) {}

  void send(TimedMessage m) override;
  std::optional<TimedMessage> receive() override;
  bool empty() const override { return queue_.empty(); }
  std::size_t pending() const override { return queue_.size(); }

  std::uint64_t messages_sent() const override { return sent_; }
  SimTime transport_overhead() const override { return overhead_; }
  const char* kind_name() const override { return "in-process"; }

 private:
  Params p_;
  std::deque<TimedMessage> queue_;
  std::uint64_t sent_ = 0;
  SimTime overhead_;
};

/// Bounded single-producer/single-consumer channel used by the pipelined
/// co-simulation to feed the RTL worker thread (and to carry DUT responses
/// back).  The bound provides back-pressure: a full channel stalls the
/// producer, which the orchestrator counts as a window-grant stall.
///
/// Discipline: exactly one producer thread and one consumer thread at a
/// time.  Blocking waits use a condition variable (no spinning — the
/// co-simulation threads share cores with the simulators themselves).
template <typename T>
class SpscChannel {
 public:
  explicit SpscChannel(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Moves `v` into the channel; returns false (leaving `v` intact) when
  /// the channel is full or closed.
  bool try_send(T& v) {
    bool wake = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(v));
      size_.store(queue_.size(), std::memory_order_release);
      if (queue_.size() > max_occupancy_) max_occupancy_ = queue_.size();
      wake = queue_.size() >= wake_threshold_;
    }
    if (wake) ready_.notify_one();
    return true;
  }

  /// Blocks until the item is accepted; returns false (dropping the item)
  /// when the channel is closed.
  bool send(T v) {
    bool wake = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!closed_ && queue_.size() >= capacity_) ++send_blocks_;
      space_.wait(lk, [&] { return closed_ || queue_.size() < capacity_; });
      if (closed_) return false;
      queue_.push_back(std::move(v));
      size_.store(queue_.size(), std::memory_order_release);
      if (queue_.size() > max_occupancy_) max_occupancy_ = queue_.size();
      wake = queue_.size() >= wake_threshold_;
    }
    if (wake) ready_.notify_one();
    return true;
  }

  /// Moves every element of `batch` into the channel under one lock,
  /// blocking for space as needed (the batch may exceed the remaining
  /// capacity).  Returns the number of items accepted — short only when the
  /// channel is closed mid-batch.  `batch` is cleared on return.
  std::size_t send_all(std::vector<T>& batch) {
    std::size_t accepted = 0;
    bool wake = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      for (T& v : batch) {
        if (!closed_ && queue_.size() >= capacity_) {
          // About to block mid-batch: wake any parked consumer first.  The
          // partial batch is already published through size_ below, but a
          // consumer parked in receive()/receive_some() needs the notify,
          // and one polling try_receive* needs a current size_ — a stale 0
          // here would mean nobody ever drains and this wait never returns.
          if (wake) {
            ready_.notify_one();
            wake = false;
          }
          ++send_blocks_;
          space_.wait(lk, [&] { return closed_ || queue_.size() < capacity_; });
        }
        if (closed_) break;
        queue_.push_back(std::move(v));
        size_.store(queue_.size(), std::memory_order_release);
        ++accepted;
        if (queue_.size() > max_occupancy_) max_occupancy_ = queue_.size();
        wake = wake || queue_.size() >= wake_threshold_;
      }
    }
    batch.clear();
    if (wake) ready_.notify_one();
    return accepted;
  }

  /// Non-blocking batch send: moves elements of `batch` starting at `pos`
  /// into the channel under one lock until it fills (or closes), and
  /// returns how many were accepted.  Never blocks — the session thread
  /// uses it to fan a coalesced grant batch out to every worker while
  /// staying free to drain response channels between retries (the
  /// two-channel deadlock avoidance that rules out the blocking send_all
  /// on that thread).
  std::size_t try_send_some(std::vector<T>& batch, std::size_t pos) {
    std::size_t accepted = 0;
    bool wake = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return 0;
      while (pos + accepted < batch.size() && queue_.size() < capacity_) {
        queue_.push_back(std::move(batch[pos + accepted]));
        ++accepted;
      }
      if (accepted) {
        size_.store(queue_.size(), std::memory_order_release);
        if (queue_.size() > max_occupancy_) max_occupancy_ = queue_.size();
        wake = queue_.size() >= wake_threshold_;
      }
    }
    if (wake) ready_.notify_one();
    return accepted;
  }

  /// Blocks until an item arrives; returns false once the channel is closed
  /// and drained.
  bool receive(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    wake_threshold_ = 1;
    ready_.wait(lk, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    size_.store(queue_.size(), std::memory_order_release);
    lk.unlock();
    space_.notify_one();
    return true;
  }

  /// Batched receive with wake-up hysteresis: blocks until at least
  /// `min_items` are queued, the channel is closed, or `max_wait` elapses,
  /// then drains everything available into `out` (appended).  While this
  /// waiter is parked, producers skip the notify until the backlog reaches
  /// `min_items` — on a shared core this gives the producer long
  /// uninterrupted runs instead of a wake-up per item, which is where the
  /// coalescing in the pipelined co-simulation comes from.  Returns false
  /// only when the channel is closed and fully drained; a timeout simply
  /// returns true with whatever was there (possibly nothing).
  bool receive_some(std::vector<T>& out, std::size_t min_items,
                    std::chrono::microseconds max_wait) {
    std::unique_lock<std::mutex> lk(mu_);
    // A pending nudge() is sticky: it forces this call to drain immediately
    // even if it arrived while the consumer was mid-batch (not parked), in
    // which case a one-shot wake_threshold_ write would have been
    // overwritten right here and the backlog would wait out max_wait.
    wake_threshold_ = (drain_now_ || min_items < 1) ? 1 : min_items;
    ready_.wait_for(lk, max_wait, [&] {
      return closed_ || drain_now_ || queue_.size() >= wake_threshold_;
    });
    drain_now_ = false;
    wake_threshold_ = 1;
    if (queue_.empty()) return !closed_;
    while (!queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    size_.store(0, std::memory_order_release);
    lk.unlock();
    space_.notify_all();
    return true;
  }

  /// Non-blocking receive; false when currently empty.  Starts with a
  /// lock-free emptiness probe so poll loops on the consumer thread cost no
  /// atomic RMW while the channel is idle (a racing send is picked up by
  /// the caller's next poll).
  bool try_receive(T& out) {
    if (size_.load(std::memory_order_acquire) == 0) return false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (queue_.empty()) return false;
      out = std::move(queue_.front());
      queue_.pop_front();
      size_.store(queue_.size(), std::memory_order_release);
    }
    space_.notify_one();
    return true;
  }

  /// Non-blocking batch receive: drains everything currently queued into
  /// `out` (appended) under a single lock acquisition.  Returns the number
  /// of items taken; zero-cost (no lock) while the channel is empty.
  std::size_t try_receive_all(std::vector<T>& out) {
    if (size_.load(std::memory_order_acquire) == 0) return 0;
    std::size_t n = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      n = queue_.size();
      while (!queue_.empty()) {
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      size_.store(0, std::memory_order_release);
    }
    if (n) space_.notify_all();
    return n;
  }

  /// Bounded producer-side wait for space; also wakes on close.  The caller
  /// re-tries try_send afterwards (it may need to drain its own inbound
  /// queue between waits to avoid a two-channel deadlock).
  void wait_space() {
    std::unique_lock<std::mutex> lk(mu_);
    if (!closed_ && queue_.size() >= capacity_) ++send_blocks_;
    space_.wait_for(lk, std::chrono::microseconds(200),
                    [&] { return closed_ || queue_.size() < capacity_; });
  }

  /// Asks the consumer to drain now rather than at its next backlog
  /// threshold or timeout (e.g. when the producer has sent everything it
  /// will send for a while).  Sticky: if the consumer is mid-batch rather
  /// than parked, its next receive_some() call consumes the request.
  void nudge() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      drain_now_ = true;
      wake_threshold_ = 1;
      ++nudges_;
    }
    ready_.notify_one();
  }

  /// Wakes all waiters; subsequent sends fail, pending items stay readable.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }
  /// Lock-free occupancy probe (the size_ mirror): exact at quiescent
  /// points, approximate while the other side is mid-operation — good
  /// enough for congestion controllers, not for emptiness decisions.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  /// High-water mark of queued items (channel-occupancy statistic).
  std::size_t max_occupancy() const {
    std::lock_guard<std::mutex> lk(mu_);
    return max_occupancy_;
  }
  /// Times a producer found the channel full and had to wait for space
  /// (send/send_all blocking mid-batch, or a wait_space after a failed
  /// try_send) — the back-pressure statistic.
  std::uint64_t send_blocks() const {
    std::lock_guard<std::mutex> lk(mu_);
    return send_blocks_;
  }
  /// nudge() calls — producer-requested early drains.
  std::uint64_t nudges() const {
    std::lock_guard<std::mutex> lk(mu_);
    return nudges_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable space_;
  std::deque<T> queue_;
  /// Mirror of queue_.size(), updated under mu_; lets consumers probe for
  /// emptiness without taking the lock.
  std::atomic<std::size_t> size_{0};
  std::size_t max_occupancy_ = 0;
  std::uint64_t send_blocks_ = 0;  ///< producer waits on a full channel
  std::uint64_t nudges_ = 0;       ///< nudge() calls
  std::size_t wake_threshold_ = 1;  ///< receive_some() hysteresis
  bool drain_now_ = false;  ///< sticky nudge(); consumed by receive_some()
  bool closed_ = false;
};

}  // namespace castanet::cosim

// The backend abstraction behind the paper's testbench-reuse promise (§3.3,
// Fig. 5): the same CASTANET environment — traffic models, gateway, sync
// protocol, comparator — drives the algorithm reference model, the VHDL DUT
// and the fabricated chip on the test board.  A DutBackend is one such
// attachment point: it owns a ConservativeSync instance (inputs declared
// with their δ_j), consumes the gateway's time-stamped messages, catches up
// to granted windows, and produces time-stamped responses.
//
// Three implementations:
//   RtlBackend       — rtl::Simulator + CosimEntity (the "VSS" path of
//                      Fig. 2); δ_j are real processing delays.
//   ReferenceBackend — the hw/reference behavioral models as an
//                      instantaneous-δ backend: deliverable messages are
//                      applied as plain function calls at their own time
//                      stamps, responses carry the stimulus time stamp.
//   BoardBackend     — the RAVEN board model (§3.3): deliverable cells are
//                      batched into hardware test cycles and replayed
//                      through a HardwareTestBoard in (modeled) real time.
//
// Thread discipline: a VerificationSession in pipelined mode hands each
// backend to its own worker thread for the duration of a run; nothing in a
// backend may be shared with another backend.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/castanet/board_driver.hpp"
#include "src/castanet/entity.hpp"
#include "src/castanet/message.hpp"
#include "src/castanet/sync.hpp"
#include "src/core/telemetry.hpp"
#include "src/traffic/trace.hpp"

namespace castanet::cosim {

class DutBackend {
 public:
  explicit DutBackend(std::string name) : name_(std::move(name)) {}
  virtual ~DutBackend() = default;
  DutBackend(const DutBackend&) = delete;
  DutBackend& operator=(const DutBackend&) = delete;

  const std::string& name() const { return name_; }

  /// This backend's conservative synchronization instance.  Every backend
  /// owns exactly one; the session pushes every gateway message into every
  /// attached backend's sync, so causality is checked per backend.
  virtual ConservativeSync& sync() = 0;
  const ConservativeSync& sync() const {
    return const_cast<DutBackend*>(this)->sync();
  }

  /// Feeds one message (or pure time update) from the network side.
  /// Virtual so proxy backends (RemoteBackend) can forward the identical
  /// stream across a process boundary while mirroring it locally.
  virtual void push(const TimedMessage& m) { sync().push(m); }

  /// Current safe window (exclusive) for this backend.
  SimTime window() const { return sync().window(); }

  /// This backend's current simulated time.
  virtual SimTime now() const = 0;

  /// Grants windows until the protocol stops making progress below `limit`
  /// (the same convergence loop for every backend: message-driven policies
  /// converge in one iteration, lockstep needs one per clock period).
  /// `after_step`, when set, runs after every granted advance — the
  /// pipelined worker drains responses there so its bounded response
  /// channel applies back-pressure mid-catch-up; returning false aborts
  /// the catch-up (channel closed / shutting down).
  void catch_up(SimTime limit);
  bool catch_up(SimTime limit, const std::function<bool()>& after_step);

  /// End-of-run hook, invoked once per VerificationSession::run_until after
  /// the final catch-up: flush anything batched (board test cycles) and
  /// emit final responses (register readbacks).  Runs on the session
  /// thread, after pipelined workers have joined.
  virtual void finish(SimTime at) { (void)at; }

  /// Moves every response produced since the last call into `out`
  /// (appended), time-stamped with this backend's clock.
  virtual void drain_responses(std::vector<TimedMessage>& out) = 0;

  /// Assigns this backend's timeline row in the Chrome trace; the session
  /// assigns one per backend ("backend:<name>") at the start of a traced
  /// run.  RtlBackend forwards the row to its HDL kernel so kernel slices
  /// nest under this backend's grant spans.
  virtual void set_telemetry_track(telemetry::TrackId track) {
    telemetry_track_ = track;
  }
  telemetry::TrackId telemetry_track() const { return telemetry_track_; }

 protected:
  /// Applies deliverable messages with ts <= `target` and advances this
  /// backend's simulated time to `target` (inclusive).
  virtual void advance_to(SimTime target) = 0;

 private:
  std::string name_;
  telemetry::TrackId telemetry_track_ = telemetry::kMainTrack;
};

/// The Fig. 2 HDL path: an rtl::Simulator plus the CosimEntity that maps
/// abstract messages onto bit-level stimulus (§3.2) and collects monitor
/// responses.  The entity's sync instance is the backend's sync instance.
class RtlBackend : public DutBackend {
 public:
  RtlBackend(std::string name, rtl::Simulator& hdl,
             ConservativeSync::Params sync_params,
             MessageChannel::Params channel_params = {});

  /// The co-simulation entity: register_input(type, δ, apply) declares
  /// inputs; monitors call entity().send_cell_response(...).
  CosimEntity& entity() { return *entity_; }

  /// The HDL kernel this backend advances (netlist introspection for the
  /// lint analyzers).
  rtl::Simulator& hdl() { return hdl_; }
  const rtl::Simulator& hdl() const { return hdl_; }

  /// Response channel (HDL -> net) for transport-overhead accounting.
  MessageChannel& response_channel() { return to_net_; }
  const MessageChannel& response_channel() const { return to_net_; }

  /// Optional end-of-run hook (e.g. read out final registers through the
  /// entity); runs before the final response drain.
  void set_finish_hook(std::function<void(RtlBackend&, SimTime)> hook) {
    finish_hook_ = std::move(hook);
  }

  ConservativeSync& sync() override { return entity_->sync(); }
  SimTime now() const override;
  void finish(SimTime at) override;
  void drain_responses(std::vector<TimedMessage>& out) override;
  void set_telemetry_track(telemetry::TrackId track) override;

 protected:
  void advance_to(SimTime target) override;

 private:
  rtl::Simulator& hdl_;
  MessageChannel from_net_;  ///< unused by the session (it pushes directly)
  MessageChannel to_net_;
  std::unique_ptr<CosimEntity> entity_;
  std::function<void(RtlBackend&, SimTime)> finish_hook_;
};

/// An algorithm reference model as a backend.  δ is instantaneous: a
/// deliverable message is applied as a plain function call, and responses
/// emitted during apply default to the stimulus time stamp — the reference
/// reacts "within" the message.  The sync instance still enforces the full
/// protocol (declared inputs, causality check, lag accounting), so the
/// reference path is verified under the same rules as the HDL path.
class ReferenceBackend : public DutBackend {
 public:
  ReferenceBackend(std::string name, ConservativeSync::Params sync_params);

  /// Registers input `type` with δ = `delta_cycles`; `apply` is invoked per
  /// deliverable message in time-stamp order.  Call respond()/
  /// respond_words() from inside to emit responses.
  using ApplyFn = std::function<void(const TimedMessage&)>;
  void register_input(MessageType type, std::uint64_t delta_cycles,
                      ApplyFn apply);

  /// Emits a response on `stream`; `ts` is usually the stimulus message's
  /// time stamp (instantaneous reaction).
  void respond(MessageType stream, SimTime ts, const atm::Cell& c);
  void respond_words(MessageType stream, SimTime ts,
                     std::vector<std::uint64_t> words);

  /// Optional end-of-run hook (e.g. emit final counter values).
  void set_finish_hook(std::function<void(ReferenceBackend&, SimTime)> hook) {
    finish_hook_ = std::move(hook);
  }

  ConservativeSync& sync() override { return sync_; }
  SimTime now() const override { return now_; }
  void finish(SimTime at) override;
  void drain_responses(std::vector<TimedMessage>& out) override;
  std::uint64_t messages_applied() const { return applied_; }

 protected:
  void advance_to(SimTime target) override;

 private:
  ConservativeSync sync_;
  std::map<MessageType, ApplyFn> apply_;
  std::vector<TimedMessage> responses_;
  std::function<void(ReferenceBackend&, SimTime)> finish_hook_;
  SimTime now_;
  std::uint64_t applied_ = 0;
};

/// The §3.3 board path as a backend: deliverable cell messages are buffered
/// and replayed through a HardwareTestBoard in batches of hardware test
/// cycles (SW activity -> HW activity -> readback).  Each batch is rebased
/// to its first cell's time stamp so vector memories stay small over long
/// runs; inter-batch idle time is not replayed (the board verifies function
/// and at-speed behavior, not long-term idle).  Responses (board register
/// readbacks via the finish hook, reassembled output cells when the DUT
/// produces any) carry board-derived time stamps.
class BoardBackend : public DutBackend {
 public:
  struct Params {
    ConservativeSync::Params sync;
    BoardCellStream::Params stream;
    /// Deliverable cells buffered before a hardware test-cycle batch runs;
    /// remaining cells flush in finish().
    std::size_t cells_per_batch = 64;
    /// WALL-CLOCK time one hardware test cycle occupies the (shared,
    /// SCSI-attached) test board — the §3.3 board runs in real time, so a
    /// batch of k test cycles blocks the calling process for k times this.
    /// Zero (default) models an infinitely fast board and keeps every
    /// existing rig untouched.  Simulated time is NOT affected; this is the
    /// hardware-in-the-loop latency the session farm overlaps across worker
    /// processes.
    std::chrono::microseconds real_time_per_test_cycle{0};
  };

  /// `board` must be configured; `dut` is the device on it.  Both outlive
  /// the backend.
  BoardBackend(std::string name, board::HardwareTestBoard& board,
               board::BehavioralDut& dut, Params p);

  /// Declares the cell stream replayed through the board.
  void register_cell_input(MessageType type, std::uint64_t delta_cycles);

  /// Emits a response on `stream` (typically from the finish hook, after
  /// µP-bus readbacks through the board).
  void respond_words(MessageType stream, SimTime ts,
                     std::vector<std::uint64_t> words);

  /// End-of-run hook, invoked after the last batch ran: read registers
  /// through the board (board_bus_read) and respond_words() the results.
  void set_finish_hook(std::function<void(BoardBackend&, SimTime)> hook) {
    finish_hook_ = std::move(hook);
  }

  board::HardwareTestBoard& board() { return board_; }
  const board::HardwareTestBoard& board() const { return board_; }
  board::BehavioralDut& dut() { return dut_; }
  const Params& params() const { return p_; }

  /// Accumulated run statistics over every batch so far.
  const BoardCellStream::Result& totals() const { return totals_; }

  ConservativeSync& sync() override { return sync_; }
  SimTime now() const override { return now_; }
  void finish(SimTime at) override;
  void drain_responses(std::vector<TimedMessage>& out) override;

 protected:
  void advance_to(SimTime target) override;

 private:
  void run_pending();

  ConservativeSync sync_;
  board::HardwareTestBoard& board_;
  board::BehavioralDut& dut_;
  BoardCellStream stream_;
  Params p_;
  MessageType cell_stream_ = 0;
  std::vector<traffic::CellArrival> pending_;
  std::vector<TimedMessage> responses_;
  BoardCellStream::Result totals_;
  std::function<void(BoardBackend&, SimTime)> finish_hook_;
  SimTime now_;
};

}  // namespace castanet::cosim

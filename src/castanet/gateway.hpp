// The CASTANET interface process on the network-simulator side (Fig. 2:
// "The CASTANET interface process in OPNET manages the proper initialization
// of the VHDL simulator and the hardware test board and handles the message
// exchange").
//
// It is an ordinary process model: packets arriving on its input streams are
// forwarded to the HDL side as time-stamped messages (stream s -> message
// type base+s); responses injected by the orchestrator are emitted as
// packets on the matching output streams, so the rest of the network model
// is oblivious to the DUT being simulated elsewhere.
#pragma once

#include "src/castanet/message.hpp"
#include "src/netsim/process.hpp"

namespace castanet::cosim {

class GatewayProcess : public netsim::ProcessModel {
 public:
  /// `to_hdl` is any MessageTransport — the in-process channel by default,
  /// or a socket transport when the HDL side lives in another process.
  GatewayProcess(MessageTransport& to_hdl, unsigned streams,
                 MessageType base_type = 0);

  void handle_interrupt(const netsim::Interrupt& intr) override;

  /// Emits a response packet on output stream `stream` (orchestrator use).
  void emit_response(unsigned stream, netsim::Packet p);

  MessageType type_for_stream(unsigned s) const { return base_type_ + s; }
  unsigned streams() const { return streams_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t responses_emitted() const { return responses_; }

 private:
  MessageTransport& to_hdl_;
  unsigned streams_;
  MessageType base_type_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t responses_ = 0;
};

}  // namespace castanet::cosim

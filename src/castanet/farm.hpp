// Multi-process session farm: shard independent VerificationSessions across
// worker processes.
//
// A regression campaign is a matrix of independent sessions — scenario ×
// seed × DUT binding × transport — and nothing couples two sessions, so the
// farm is embarrassingly parallel: a parent process forks N workers, each
// connected by an AF_UNIX socketpair, and dispatches session indices over a
// small framed protocol.  Workers run whole sessions (including board
// backends whose real-time hardware waits the farm overlaps) and ship back
// a compact wire-serialized result; the parent aggregates a JSON report.
//
// Failure semantics: a worker that dies mid-session (crash, kill -9) is
// detected by the parent's poll loop (EOF on its socket); its in-flight
// session is reported as a failed shard, the worker is reaped and NOT
// respawned, and the remaining sessions drain through the surviving
// workers.  Only when every worker is gone are leftover sessions failed.
//
// Determinism: a session's result depends only on its spec (everything is
// seeded), so run_serial and run_farm produce byte-identical per-session
// results — the farm changes wall-clock, never outcomes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/castanet/transport.hpp"
#include "src/core/json.hpp"
#include "src/core/telemetry.hpp"

namespace castanet::cosim::farm {

/// One unit of farm work: a fully parameterized verification session.
struct SessionSpec {
  /// Unique within the experiment; used in reports and trace-file tags.
  std::string id;
  /// Scenario runner name (the CLI registers "accounting", "switch", ...).
  std::string scenario;
  /// Master seed for every stochastic model in the session.
  std::uint64_t seed = 1;
  /// Which MessageTransport the session uses.
  TransportKind transport = TransportKind::kInProcess;
  /// Full merged parameter object (scenario-specific knobs: horizon,
  /// binding, trace_out, ...).  Always a JSON object.
  json::Value params;
};

/// What one session run produced.  Identity-relevant fields (everything
/// except wall_seconds) are byte-identical between serial and farm runs.
struct SessionResult {
  std::string id;
  bool ok = false;
  std::string error;            ///< empty when ok
  std::uint64_t responses = 0;  ///< responses drained across backends
  std::uint64_t divergences = 0;
  /// FNV-1a digest over the canonical encoding of every comparator-visible
  /// response, in order — the byte-identity witness.
  std::uint64_t digest = 0;
  double wall_seconds = 0.0;    ///< informational; excluded from identity
  std::string detail;           ///< scenario-provided one-line summary
  /// Final telemetry Hub snapshot of the session, captured by the runner
  /// when telemetry is enabled and shipped back over the worker socketpair.
  /// Counters/histograms are deterministic in the spec; wall-clock timings
  /// inside the snapshot are informational, like wall_seconds.
  bool has_metrics = false;
  telemetry::MetricsSnapshot metrics;
};

/// Executes one session spec.  Runs inside a worker process (or inline for
/// run_serial); must be deterministic in the spec.  Exceptions become
/// failed results.
using SessionRunner = std::function<SessionResult(const SessionSpec&)>;

struct FarmParams {
  int jobs = 1;  ///< worker processes (clamped to the session count)
};

struct FarmReport {
  std::vector<SessionResult> results;  ///< in spec order
  int jobs = 0;                        ///< 0 = serial in-process run
  int workers_spawned = 0;
  int workers_failed = 0;  ///< workers that died before orderly exit
  double wall_seconds = 0.0;
  /// Cross-shard merge of every session's snapshot (merge_metric_row
  /// semantics: counters summed, timings/histograms merged exactly).  Empty
  /// unless at least one session shipped metrics.
  telemetry::MetricsSnapshot metrics;
  int sessions_with_metrics = 0;
  std::uint64_t heartbeats = 0;  ///< progress frames seen (farm runs only)

  bool all_ok() const;
  /// {"jobs", "wall_seconds", "workers_spawned", "workers_failed",
  ///  "sessions": [{"id", "ok", ...}], "metrics": {...} when present}
  json::Value to_json() const;
};

/// Runs every spec inline on the calling process, in order — the baseline
/// the farm's results are compared against.
FarmReport run_serial(const std::vector<SessionSpec>& specs,
                      const SessionRunner& runner);

/// Runs the specs across `params.jobs` forked worker processes.
FarmReport run_farm(const std::vector<SessionSpec>& specs,
                    const SessionRunner& runner, const FarmParams& params);

// ---------------------------------------------------------------------------
// Generic fork()-based work pool (the farm's engine; also used to
// parallelize RegressionSuite::cross_run).  The parent dispatches item
// indices; each worker calls `run` and ships the returned bytes back.

struct PoolStats {
  int workers_spawned = 0;
  int workers_failed = 0;
};

/// Runs `run(item, worker)` for every item in [0, n) across `jobs` forked
/// workers.  `run` executes in the CHILD process; its returned bytes arrive
/// at the parent's `on_result(item, bytes)` in completion order.  A child
/// whose `run` throws reports the failure; the parent maps it (and any
/// worker death) to `on_failed(item, detail)`.  Fork safety: call from a
/// single-threaded parent, before spawning any threads.
PoolStats fork_map(
    std::size_t n, int jobs,
    const std::function<std::vector<std::uint8_t>(std::size_t item,
                                                  int worker)>& run,
    const std::function<void(std::size_t item,
                             const std::vector<std::uint8_t>& bytes)>&
        on_result,
    const std::function<void(std::size_t item, const std::string& detail)>&
        on_failed,
    const std::function<void(std::size_t item, int worker, double value)>&
        on_beat = {});

/// Ships a heartbeat/progress frame (current item + a scenario-defined
/// gauge, e.g. cycles completed) from inside a worker's `run` callback to
/// the parent, which surfaces it through fork_map's `on_beat` — the stall
/// detector's signal.  Returns false (no-op) when the caller is not a farm
/// worker, so instrumented runners work unchanged under run_serial.
bool worker_heartbeat(double value);

// ---------------------------------------------------------------------------
// Experiment files: tsload-style parametrization.
//
//   {
//     "name": "cross_run",
//     "scenario": "accounting",
//     "defaults": { "horizon_us": 400 },
//     "matrix": { "seed": [1, 2, 3, 4],
//                 "transport": ["in-process", "socket"] },
//     "sessions": [ { "scenario": "switch", "seed": 7 } ]
//   }
//
// The matrix expands to the cartesian product of its arrays, each point
// merged over `defaults` (point wins); explicit `sessions` entries append
// after the matrix, also merged over `defaults`.  Recognized keys become
// SessionSpec fields (scenario, seed, transport); the whole merged object
// lands in SessionSpec::params for the scenario runner.

std::vector<SessionSpec> load_experiment(const json::Value& doc);
std::vector<SessionSpec> load_experiment_file(const std::string& path);

/// Tags an output path with the session (and worker) that writes it, so
/// concurrent sessions never collide on one file: "t.jsonl" ->
/// "t.<session>.w3.jsonl" (worker < 0 omits the worker part).  Unsafe id
/// characters are replaced with '_'.
std::string tagged_path(const std::string& path, int worker,
                        const std::string& session_id);

}  // namespace castanet::cosim::farm

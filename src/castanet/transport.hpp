// Message-level transports over real byte pipes.
//
// message.hpp defines the MessageTransport seam and its in-process default
// (MessageChannel).  This header adds the second implementation the paper
// actually ran with: messages serialized (castanet/wire.hpp) and carried
// over an AF_UNIX stream socket (core/transport.hpp), so either endpoint of
// the co-simulation can live in another process.  Modeled latency semantics
// are preserved — the same per-message overhead is accounted no matter
// which transport carries the bytes — which is what the transport
// conformance suite checks: a session run over either transport produces
// byte-identical results.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "src/castanet/message.hpp"
#include "src/core/transport.hpp"

namespace castanet::cosim {

/// Which MessageTransport implementation a session should construct.
enum class TransportKind {
  kInProcess,  ///< MessageChannel: plain in-process queue (default)
  kSocket,     ///< SocketMessageTransport: framed wire over AF_UNIX loopback
};

const char* to_string(TransportKind kind);
/// Parses "in-process"/"inprocess" or "socket" (experiment files, CLI).
/// Throws ConfigError on anything else.
TransportKind transport_kind_from_string(const std::string& s);

/// MessageTransport carried over a FramePipe pair: send() encodes the
/// message with the canonical wire format and writes one frame; receive()
/// reads frames and decodes.  The default constructor builds an AF_UNIX
/// socketpair loopback — both endpoints owned by this object, every message
/// round-trips through real kernel socket buffers and the real serializer,
/// which is exactly what the conformance suite wants to exercise against
/// MessageChannel.
///
/// To keep kernel buffer occupancy bounded without threads, every send()
/// eagerly drains arrived frames into an in-process inbox; receive() serves
/// from the inbox first.  FIFO order is preserved end to end.
struct SocketTransportParams {
  /// Modeled cost per message — same accounting as MessageChannel.
  SimTime per_message_overhead = SimTime::zero();
};

class SocketMessageTransport final : public MessageTransport {
 public:
  /// At namespace scope (not nested) so it can default-construct in the
  /// constructor's default argument below.
  using Params = SocketTransportParams;

  /// Loopback over a fresh AF_UNIX socketpair.  Throws IoError on failure.
  explicit SocketMessageTransport(Params p = {});
  /// Wraps explicit pipe endpoints (e.g. across a fork(): the parent keeps
  /// the tx side, the child the rx side; pass nullptr for the absent
  /// direction).
  SocketMessageTransport(Params p, std::unique_ptr<transport::FramePipe> tx,
                         std::unique_ptr<transport::FramePipe> rx);
  ~SocketMessageTransport() override;

  void send(TimedMessage m) override;
  std::optional<TimedMessage> receive() override;
  bool empty() const override;
  std::size_t pending() const override;

  std::uint64_t messages_sent() const override { return sent_; }
  SimTime transport_overhead() const override { return overhead_; }
  const char* kind_name() const override { return "socket"; }

  /// Payload bytes pushed through the socket (framing headers excluded).
  std::uint64_t bytes_sent() const;

 private:
  /// Moves every frame already arrived on the socket into inbox_.
  void pump() const;

  Params p_;
  std::unique_ptr<transport::FramePipe> tx_;
  std::unique_ptr<transport::FramePipe> rx_;
  mutable std::deque<TimedMessage> inbox_;
  std::uint64_t sent_ = 0;
  SimTime overhead_;
};

/// Constructs the transport a session's Params ask for.
std::unique_ptr<MessageTransport> make_transport(TransportKind kind,
                                                 SimTime per_message_overhead);

}  // namespace castanet::cosim

// §3.1 — conservative synchronization between the network simulator and the
// HDL simulator.
//
// The HDL side maintains one time-stamped message queue I_j per input
// message type, with a user-specified per-type processing delay δ_j (the
// maximum number of clock cycles the DUT needs to react to a type-j
// message).  Incoming messages double as time updates from the originator.
// The protocol grants the HDL simulator timing windows such that
//
//   * the HDL simulator's simulated time always lags the network
//     simulator's simulated time,
//   * no message is ever delivered into the HDL simulator's past (zero
//     causality errors, Fig. 3), and
//   * progress is always possible (no deadlock): the network side never
//     waits on the HDL clock, and every received time stamp widens the
//     window.
//
// Three window policies are provided for the E3 ablation:
//   kTimeWindow  — the paper's protocol: with every queue populated, grant
//                  up to min_j(head ts) + min_j(δ_j); with some queues
//                  still empty, grant strictly below the originator's
//                  newest announced time.
//   kGlobalOrder — exploit the single-originator property: grant strictly
//                  below the newest announced network time (messages from
//                  one OPNET arrive in nondecreasing time-stamp order).
//   kLockstep    — naive baseline: grant exactly one clock period per
//                  explicit time update, regardless of message content.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/castanet/message.hpp"
#include "src/core/histogram.hpp"
#include "src/core/stats.hpp"

namespace castanet::cosim {

enum class SyncPolicy { kTimeWindow, kGlobalOrder, kLockstep };

class ConservativeSync {
 public:
  struct Params {
    SyncPolicy policy = SyncPolicy::kTimeWindow;
    /// HDL clock period; δ_j are expressed in clock cycles of this clock.
    SimTime clock_period = SimTime::from_ns(50);
  };

  explicit ConservativeSync(Params p) : p_(p) {}

  /// Declares input message type `type` with processing delay δ =
  /// `delta_cycles` clock cycles.  All types must be declared before the
  /// first push.
  void declare_input(MessageType type, std::uint64_t delta_cycles);

  /// Feeds a message (or pure time update) from the network side.  Throws
  /// ProtocolError if its time stamp precedes an already-granted window
  /// (a causality error — the network side violated monotonicity).
  void push(const TimedMessage& m);

  /// Largest simulated time (exclusive) the HDL simulator may advance to
  /// right now.  Monotone nondecreasing across calls.
  SimTime window() const;

  /// Messages that must be applied to the DUT before the HDL simulator
  /// crosses their time stamps; pops all with ts < `up_to`.
  std::vector<TimedMessage> take_deliverable(SimTime up_to);

  /// Records the HDL simulator's current time for lag statistics and the
  /// lag invariant (hdl_time <= network_time must always hold).
  void note_hdl_time(SimTime t);

  SimTime network_time() const { return network_time_; }
  const Params& params() const { return p_; }

  /// Declared input types with their δ_j, in type order (static view for
  /// the lint sync analyzers).
  struct InputInfo {
    MessageType type = 0;
    std::uint64_t delta_cycles = 0;
  };
  std::vector<InputInfo> declared_inputs() const;
  bool input_declared(MessageType type) const;

  std::uint64_t messages_received() const { return received_; }
  std::uint64_t time_updates_received() const { return time_updates_; }
  std::uint64_t windows_granted() const { return windows_granted_; }
  /// Count of push() calls that would have landed in the granted past; the
  /// protocol guarantees this stays 0 (the E3 bench asserts it).
  std::uint64_t causality_errors() const { return causality_errors_; }
  double max_lag_seconds() const { return max_lag_sec_; }

  // --- telemetry ----------------------------------------------------------
  /// Counts a catch-up attempt that could not advance local time: the
  /// lookahead (granted window minus local time) was exhausted and the HDL
  /// side had to wait for the network to announce more time.  Recorded by
  /// DutBackend::catch_up.
  void note_lookahead_stall() { ++lookahead_stalls_; }
  std::uint64_t lookahead_stalls() const { return lookahead_stalls_; }
  /// Distribution of (network_time - hdl_time) over every note_hdl_time
  /// call — how far this simulator trails the originator (§3.1's lag).
  const SampleStat& lag_stat() const { return lag_; }
  /// The same grant-to-response lag as a log2 histogram (p50/p99 of how far
  /// the HDL side trails).  Recorded only while telemetry is enabled.
  const Log2Histogram& lag_histogram() const { return lag_hist_; }
  /// Per-input-queue occupancy as a time-weighted statistic over network
  /// time (OPNET-style "time average"), one entry per declared type in type
  /// order.  The depth changes at push() and take_deliverable().
  struct QueueDepth {
    MessageType type = 0;
    const TimeAverageStat* depth = nullptr;
  };
  std::vector<QueueDepth> queue_depths() const;

 private:
  struct InputQueue {
    MessageType type = 0;
    std::uint64_t delta_cycles = 0;
    std::deque<TimedMessage> queue;
    TimeAverageStat depth;  ///< occupancy over network time (telemetry)
  };

  SimTime min_delta_time() const;
  InputQueue* find(MessageType type);

  Params p_;
  /// Flat, sorted by type.  Input types are few and all declared up front;
  /// push() and window() run once per grant, so the contiguous scan (and
  /// binary-searched push) beats tree traversal.
  std::vector<InputQueue> inputs_;
  std::uint64_t min_delta_cycles_ = UINT64_MAX;  ///< cached min_j delta_j
  SimTime network_time_;
  SimTime granted_;  ///< high-water mark of window()
  std::uint64_t received_ = 0;
  std::uint64_t time_updates_ = 0;
  std::uint64_t windows_granted_ = 0;
  std::uint64_t causality_errors_ = 0;
  std::uint64_t lookahead_stalls_ = 0;
  double max_lag_sec_ = 0.0;
  SampleStat lag_;
  Log2Histogram lag_hist_;
};

}  // namespace castanet::cosim

// N-backend verification fabric — the generalization of Fig. 2 to the whole
// of Fig. 5: ONE testbench (the network simulation, its traffic models and
// its gateway) drives ANY number of attached device backends in lockstep —
// the algorithm reference model, the RTL DUT under the HDL kernel, the
// fabricated device on the test board — each behind its own conservative
// synchronization instance, with a session-level comparator cross-checking
// every backend's responses against the primary's.
//
// Structure per run_until:
//   * every network event's gateway output plus the originator's clock is
//     fanned out to every attached backend (each backend's sync sees the
//     identical protocol input stream the two-party orchestrator would
//     produce);
//   * each backend catches up to its own granted window — backends advance
//     at their own pace (δ_j differ per backend) but all lag network time;
//   * responses drain per backend into the SessionComparator; the PRIMARY
//     backend's responses additionally re-enter the network model (the
//     closed loop of Fig. 2), so secondary backends are pure checkers and
//     their attachment cannot perturb the network side.
//
// Execution modes mirror CoVerification (which is now a two-party shim over
// this class):
//   * serial: everything interleaves on the calling thread, deterministic;
//   * pipelined: one worker thread + one SPSC channel pair PER BACKEND; the
//     network thread ships every window grant to all workers and drains all
//     response channels.  Workers never share state; the §3.1 windows are
//     the only synchronization points.  The determinism caveat of
//     coverify.hpp applies unchanged (feed-forward topologies are
//     bit-identical to serial mode), and so does its levelized-kernel
//     note: backends run their HDL kernels with §7.7 two-phase evaluation
//     on by default, which preserves every settled value the protocol and
//     comparators can observe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/castanet/backend.hpp"
#include "src/castanet/comparator.hpp"
#include "src/castanet/gateway.hpp"
#include "src/castanet/transport.hpp"
#include "src/netsim/simulation.hpp"

namespace castanet::cosim {

class VerificationSession {
 public:
  struct Params {
    /// Modeled IPC cost per message, charged to the gateway channel.
    SimTime ipc_overhead_per_message = SimTime::zero();
    /// Extra model delay for a primary-backend response to re-enter the
    /// network model.
    SimTime response_latency = SimTime::zero();
    /// Run every backend on a dedicated worker thread.
    bool pipelined = false;
    /// Capacity of each backend's bounded SPSC channel pair.
    std::size_t channel_capacity = 256;
    /// Pipelined mode: pure-clock grants are elided until net time advanced
    /// this many clock periods past the previous grant (see coverify.hpp).
    /// With adaptive_stride this is the FLOOR the controller decays to.
    std::uint32_t clock_announce_stride = 100;
    /// Upper bound for the adaptive stride controller; 0 means 16x the
    /// floor.  Ignored when adaptive_stride is false.
    std::uint32_t max_clock_announce_stride = 0;
    /// Pipelined mode: close the loop on the announce stride — back off
    /// (towards the max) while the workers' command channels congest or
    /// grants stall, decay back to the floor while the workers keep up.
    bool adaptive_stride = true;
    /// Pipelined mode: flush the coalesced grant batch to the workers once
    /// this many gateway messages are pending (a stride boundary flushes
    /// regardless).  1 restores a push per message-carrying event.
    std::size_t fanout_batch_messages = 8;
    /// Clock period used for the announce-stride arithmetic (the HDL clock
    /// in a two-party setup; backends keep their own periods in their own
    /// sync params).
    SimTime clock_period = SimTime::from_ns(50);
    /// Which transport carries gateway -> session messages.  kInProcess is
    /// the plain queue (default, zero overhead change); kSocket routes every
    /// message through the wire serializer and an AF_UNIX socketpair while
    /// accounting identical modeled latency, so results are byte-identical.
    TransportKind transport = TransportKind::kInProcess;
  };

  /// The gateway is created inside `node` with `streams` bidirectional
  /// streams; connect network models to it like to any process.
  VerificationSession(netsim::Simulation& net, netsim::Node& node,
                      unsigned streams, Params params);
  ~VerificationSession();
  VerificationSession(const VerificationSession&) = delete;
  VerificationSession& operator=(const VerificationSession&) = delete;

  /// Attaches a backend (not owned; must outlive the session) and returns
  /// its index.  Attach every backend before the first run_until; index 0
  /// is the primary unless set_primary overrides.
  std::size_t attach(DutBackend& backend);
  /// Selects which backend's responses re-enter the network model and act
  /// as the comparator's golden stream.
  void set_primary(std::size_t index);
  std::size_t primary() const { return primary_; }
  std::size_t backend_count() const { return backends_.size(); }
  DutBackend& backend(std::size_t i) { return *backends_.at(i); }

  GatewayProcess& gateway() { return *gateway_; }
  const GatewayProcess& gateway() const { return *gateway_; }
  const Params& params() const { return params_; }

  /// Opt-in elaboration hook, installed process-wide (e.g. by
  /// lint::install_elaboration_hooks): invoked once per session at the
  /// first run_until, after backends are attached and the comparator is
  /// wired but before any network event executes.  A throwing hook aborts
  /// the run before anything advanced.
  using ElaborationHook = std::function<void(VerificationSession&)>;
  static void set_elaboration_hook(ElaborationHook hook);
  /// The gateway -> session transport (transport-overhead accounting).
  MessageTransport& gateway_transport() { return *from_gateway_; }
  /// The gateway -> session transport as the in-process channel.  Only
  /// valid with Params::transport == kInProcess (throws otherwise); kept
  /// for two-party-shim callers that predate the transport seam.
  MessageChannel& gateway_channel();

  /// Handles a primary-backend response; default (if unset): cell responses
  /// re-emitted by the gateway on the stream matching the message type.
  /// During a run the handler executes inside a network event at a time >=
  /// both the response time stamp and the network's current time; for
  /// responses emitted by finish() hooks (after the horizon) it runs
  /// directly.  Secondary backends' responses go to the comparator only.
  using ResponseHandler = std::function<void(const TimedMessage&)>;
  void set_response_handler(ResponseHandler h) { on_response_ = std::move(h); }

  /// Runs the coupled simulation until network time `limit`, then invokes
  /// every backend's finish() hook and drains the final responses.  In
  /// pipelined mode the workers live only inside this call.
  void run_until(SimTime limit);

  /// The session-level cross-backend checker.  Feed-complete after
  /// run_until; call comparator().finish() once, then inspect.
  SessionComparator& comparator() { return comparator_; }

  struct BackendStats {
    std::string name;
    std::uint64_t windows = 0;
    std::uint64_t causality_errors = 0;
    double max_lag_seconds = 0.0;
    std::uint64_t responses = 0;       ///< responses drained from the backend
    std::uint64_t worker_batches = 0;  ///< pipelined mode only
    std::uint64_t lookahead_stalls = 0;
    double mean_lag_seconds = 0.0;     ///< mean of the sync lag distribution
    std::uint64_t send_blocks = 0;     ///< SPSC back-pressure (pipelined)
    std::uint64_t nudge_wakeups = 0;   ///< SPSC nudges (pipelined)
  };
  struct Stats {
    std::uint64_t net_events = 0;
    std::uint64_t messages_to_hdl = 0;  ///< gateway -> backends (fanned out)
    std::uint64_t responses = 0;        ///< sum over backends
    std::uint64_t window_grant_stalls = 0;
    std::uint64_t max_channel_occupancy = 0;
    std::uint32_t effective_stride = 0;      ///< stride at end of last run
    std::uint32_t max_effective_stride = 0;  ///< controller high-water mark
    std::uint64_t fanout_batches = 0;        ///< coalesced batches flushed
    std::uint64_t fanout_messages = 0;       ///< messages inside them
    std::vector<BackendStats> backends;
  };
  Stats stats() const;

 private:
  /// One unit of work fanned out to every backend worker: messages to push
  /// into the conservative protocol, the originator's clock, a horizon.
  struct WorkerCmd {
    std::vector<TimedMessage> msgs;
    SimTime net_now;
    SimTime limit;
  };

  /// Per-backend pipelined plumbing.  While the worker lives, the backend
  /// belongs to the worker thread; the SPSC channels are the only shared
  /// state.  Counter discipline matches coverify.cpp's single-worker
  /// implementation (lock-free steady state, completion-edge wakeups on the
  /// session-wide done_mu_/done_cv_).
  struct Worker {
    DutBackend* backend = nullptr;
    std::unique_ptr<SpscChannel<WorkerCmd>> cmd;
    std::unique_ptr<SpscChannel<TimedMessage>> resp;
    std::thread thread;
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<bool> dead{false};
    bool exited = false;             // guarded by done_mu_
    std::exception_ptr error;        // guarded by done_mu_
    std::uint64_t max_occupancy = 0; // updated at shutdown
    /// Timeline row for worker-batch spans; assigned before the thread
    /// starts, read-only afterwards.
    telemetry::TrackId track = telemetry::kMainTrack;
  };

  void run_until_serial(SimTime limit);
  void run_until_pipelined(SimTime limit);
  void finish_backends(SimTime limit);

  // Telemetry (no-ops while the hub is disabled).
  void assign_tracks();
  void publish_metrics() const;

  // Shared response path.
  void schedule_response(TimedMessage m);
  void handle_response(std::size_t backend, TimedMessage m, bool in_run);
  void drain_backend(std::size_t backend, bool in_run);

  // Pipelined mode (session thread side).
  void start_workers();
  /// Fans the coalesced grant batch out to every worker (one bulk push per
  /// channel) and clears it.
  void send_commands(std::vector<WorkerCmd>& cmds);
  /// One adaptive-stride controller observation, taken at each batch flush.
  void update_stride(std::uint64_t stalls_before);
  void drain_worker_responses();
  void flush_workers();
  void shutdown_workers();
  bool any_worker_dead() const;

  // Pipelined mode (worker thread side).
  void worker_main(Worker& w);
  bool worker_catch_up(Worker& w, SimTime limit);

  netsim::Simulation& net_;
  std::unique_ptr<MessageTransport> from_gateway_;
  GatewayProcess* gateway_ = nullptr;
  Params params_;
  std::vector<DutBackend*> backends_;
  std::size_t primary_ = 0;
  SessionComparator comparator_;
  ResponseHandler on_response_;
  bool ran_ = false;
  std::uint64_t net_events_ = 0;
  std::vector<std::uint64_t> responses_drained_;
  std::vector<std::uint64_t> worker_batches_total_;
  std::vector<std::uint64_t> send_blocks_total_;
  std::vector<std::uint64_t> nudges_total_;
  std::size_t divergences_seen_ = 0;  ///< comparator count already traced

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::uint64_t window_grant_stalls_ = 0;    // session thread only
  std::uint64_t max_channel_occupancy_ = 0;  // updated at shutdown
  // Adaptive stride controller state (session thread only).
  std::uint32_t effective_stride_ = 0;
  std::uint32_t max_effective_stride_ = 0;
  std::uint32_t calm_streak_ = 0;
  // Fan-out batching state (session thread only).
  std::vector<WorkerCmd> pending_cmds_;
  std::size_t pending_msgs_ = 0;
  std::uint64_t fanout_batches_ = 0;
  std::uint64_t fanout_messages_ = 0;
  /// Hub-owned fan-out batch-size timing and effective-stride gauge, cached
  /// while tracing (the handles live until Hub::reset(); re-fetched by
  /// assign_tracks each run).
  telemetry::Timing* fanout_timing_ = nullptr;
  telemetry::Gauge* stride_gauge_ = nullptr;
  /// Wall-clock nanoseconds spent in SessionComparator::note_response —
  /// the distribution that proves the enqueue-time hashing amortization.
  telemetry::Timing* compare_timing_ = nullptr;
  std::vector<TimedMessage> msg_scratch_;    // session thread only
  std::vector<TimedMessage> resp_scratch_;   // session thread only
};

}  // namespace castanet::cosim

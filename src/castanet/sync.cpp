#include "src/castanet/sync.hpp"

#include <algorithm>

#include "src/core/error.hpp"
#include "src/core/telemetry.hpp"

namespace castanet::cosim {

void ConservativeSync::declare_input(MessageType type,
                                     std::uint64_t delta_cycles) {
  require(received_ == 0, "ConservativeSync: declare inputs before pushing");
  require(delta_cycles > 0, "ConservativeSync: delta must be >= 1 cycle");
  auto it = std::lower_bound(
      inputs_.begin(), inputs_.end(), type,
      [](const InputQueue& q, MessageType t) { return q.type < t; });
  if (it != inputs_.end() && it->type == type) {
    it->delta_cycles = delta_cycles;  // re-declaration updates delta
  } else {
    InputQueue q;
    q.type = type;
    q.delta_cycles = delta_cycles;
    inputs_.insert(it, std::move(q));
  }
  // min_j delta_j is fixed once inputs are declared; cache it so window()
  // (called once per grant iteration) stays O(#queues) instead of
  // recomputing the minimum.
  min_delta_cycles_ = std::min(min_delta_cycles_, delta_cycles);
}

std::vector<ConservativeSync::InputInfo> ConservativeSync::declared_inputs()
    const {
  std::vector<InputInfo> out;
  out.reserve(inputs_.size());
  for (const InputQueue& q : inputs_) out.push_back({q.type, q.delta_cycles});
  return out;
}

bool ConservativeSync::input_declared(MessageType type) const {
  return const_cast<ConservativeSync*>(this)->find(type) != nullptr;
}

ConservativeSync::InputQueue* ConservativeSync::find(MessageType type) {
  auto it = std::lower_bound(
      inputs_.begin(), inputs_.end(), type,
      [](const InputQueue& q, MessageType t) { return q.type < t; });
  if (it == inputs_.end() || it->type != type) return nullptr;
  return &*it;
}

SimTime ConservativeSync::min_delta_time() const {
  const std::uint64_t min_delta =
      min_delta_cycles_ == UINT64_MAX ? 1 : min_delta_cycles_;
  return p_.clock_period * static_cast<std::int64_t>(min_delta);
}

void ConservativeSync::push(const TimedMessage& m) {
  network_time_ = std::max(network_time_, m.timestamp);
  if (m.time_update_only) {
    // Pure clock announcements carry no event; the originator's clock may
    // legitimately lag a window that the δ rule extended beyond it.
    ++time_updates_;
    return;
  }
  // Time stamps from a sequential DE simulator arrive in nondecreasing
  // order; a data message stamped inside an already-granted window would be
  // a causality error (Fig. 3), which the protocol makes impossible under
  // its spacing assumption (per-queue message spacing >= δ_j).  We still
  // check, because the check is the verification.
  if (m.timestamp < granted_) {
    ++causality_errors_;
    throw ProtocolError(
        "ConservativeSync: message time stamp " + m.timestamp.to_string() +
        " precedes granted window " + granted_.to_string());
  }
  InputQueue* q = find(m.type);
  if (q == nullptr) {
    throw ProtocolError("ConservativeSync: undeclared message type " +
                        std::to_string(m.type));
  }
  q->queue.push_back(m);
  q->depth.set(network_time_.seconds(), static_cast<double>(q->queue.size()));
  ++received_;
}

std::vector<ConservativeSync::QueueDepth> ConservativeSync::queue_depths()
    const {
  std::vector<QueueDepth> out;
  out.reserve(inputs_.size());
  for (const InputQueue& q : inputs_) out.push_back({q.type, &q.depth});
  return out;
}

SimTime ConservativeSync::window() const {
  SimTime w = granted_;
  switch (p_.policy) {
    case SyncPolicy::kGlobalOrder: {
      // Single monotone originator: everything strictly before its
      // announced time is safe.
      w = std::max(w, network_time_);
      break;
    }
    case SyncPolicy::kLockstep: {
      // One clock period at a time, never beyond the originator's clock.
      const SimTime next = granted_ + p_.clock_period;
      w = std::min(next, network_time_);
      w = std::max(w, granted_);
      break;
    }
    case SyncPolicy::kTimeWindow: {
      // The paper's rule.  With every input queue holding a message, local
      // time may advance past the minimum head by min_j δ_j; otherwise the
      // newest announced originator time bounds the window.
      bool all_nonempty = !inputs_.empty();
      SimTime min_head = SimTime::max();
      for (const InputQueue& q : inputs_) {
        if (q.queue.empty()) {
          all_nonempty = false;
          break;
        }
        min_head = std::min(min_head, q.queue.front().timestamp);
      }
      if (all_nonempty) {
        w = std::max(w, min_head + min_delta_time());
        w = std::max(w, network_time_);
      } else {
        w = std::max(w, network_time_);
      }
      break;
    }
  }
  return w;
}

std::vector<TimedMessage> ConservativeSync::take_deliverable(SimTime up_to) {
  std::vector<TimedMessage> out;
  for (InputQueue& q : inputs_) {
    const std::size_t before = q.queue.size();
    while (!q.queue.empty() && q.queue.front().timestamp < up_to) {
      out.push_back(std::move(q.queue.front()));
      q.queue.pop_front();
    }
    if (q.queue.size() != before) {
      q.depth.set(network_time_.seconds(),
                  static_cast<double>(q.queue.size()));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TimedMessage& a, const TimedMessage& b) {
              return a.timestamp < b.timestamp;
            });
  if (up_to > granted_) {
    granted_ = up_to;
    ++windows_granted_;
  }
  return out;
}

void ConservativeSync::note_hdl_time(SimTime t) {
  // The invariant the protocol guarantees: the HDL simulator never runs
  // beyond what was granted, and grants never exceed the originator's
  // announced time by more than the processing window min_j δ_j.
  const SimTime bound = std::max(network_time_ + min_delta_time(), granted_);
  if (t > bound) {
    throw ProtocolError(
        "ConservativeSync: HDL time " + t.to_string() +
        " overtook the granted window " + bound.to_string() +
        " (lag invariant violated)");
  }
  const double lag_sec =
      network_time_ > t ? (network_time_ - t).seconds() : 0.0;
  lag_.record(lag_sec);
  max_lag_sec_ = std::max(max_lag_sec_, lag_sec);
  if (telemetry::enabled()) lag_hist_.record(lag_sec);
}

}  // namespace castanet::cosim

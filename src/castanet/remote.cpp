#include "src/castanet/remote.hpp"

#include "src/castanet/wire.hpp"
#include "src/core/error.hpp"

namespace castanet::cosim {

namespace {

/// How long the proxy waits for the host to answer one request before
/// declaring it dead.  A crashed host is detected much sooner (the kernel
/// closes its socket end); this bounds only a genuinely hung host.
constexpr int kReplyTimeoutMs = 60'000;

void send_op_time(transport::FramePipe& pipe, RemoteOp op, SimTime t,
                  const char* what) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.i64(t.ps());
  if (!pipe.send_frame(w.data())) {
    throw ProtocolError(std::string(what) + ": peer closed");
  }
}

}  // namespace

RemoteBackend::RemoteBackend(std::string name,
                             ConservativeSync::Params sync_params,
                             std::unique_ptr<transport::FramePipe> pipe)
    : DutBackend(std::move(name)), sync_(sync_params), pipe_(std::move(pipe)) {
  require(pipe_ != nullptr, "RemoteBackend: need a pipe");
}

RemoteBackend::~RemoteBackend() {
  try {
    shutdown();
  } catch (...) {
    // Destructor: the host being gone already is fine.
  }
}

void RemoteBackend::declare_input(MessageType type,
                                  std::uint64_t delta_cycles) {
  sync_.declare_input(type, delta_cycles);
}

void RemoteBackend::shutdown() {
  if (down_) return;
  down_ = true;
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(RemoteOp::kShutdown));
  pipe_->send_frame(w.data());  // best effort; the close below is definitive
  pipe_->close();
}

void RemoteBackend::push(const TimedMessage& m) {
  require(!down_, "RemoteBackend: push after shutdown");
  // The mirror sees the identical stream the host sees — same windows, same
  // causality checking, and the session's per-backend statistics stay local.
  sync_.push(m);
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(RemoteOp::kPush));
  wire::encode_message(w, m);
  if (!pipe_->send_frame(w.data())) {
    down_ = true;
    throw ProtocolError("RemoteBackend '" + name() + "': host closed (push)");
  }
}

void RemoteBackend::advance_to(SimTime target) {
  require(!down_, "RemoteBackend: advance after shutdown");
  // Mirror bookkeeping first (consume deliverables, advance local time) so
  // the window computation matches the host's after its catch-up.
  sync_.take_deliverable(target + SimTime::from_ps(1));
  now_ = target;
  sync_.note_hdl_time(now_);
  send_op_time(*pipe_, RemoteOp::kAdvance, target, "RemoteBackend advance");
  wait_done("advance");
}

void RemoteBackend::finish(SimTime at) {
  require(!down_, "RemoteBackend: finish after shutdown");
  send_op_time(*pipe_, RemoteOp::kFinish, at, "RemoteBackend finish");
  // wait_done() adopts the host's post-finish now() from the kDone frame —
  // no local bump to `at`, or the proxy would disagree with a backend whose
  // finish() leaves its clock where the last advance put it.
  wait_done("finish");
}

void RemoteBackend::drain_responses(std::vector<TimedMessage>& out) {
  out.insert(out.end(), std::make_move_iterator(responses_.begin()),
             std::make_move_iterator(responses_.end()));
  responses_.clear();
}

void RemoteBackend::wait_done(const char* what) {
  std::vector<std::uint8_t> frame;
  for (;;) {
    const transport::RecvStatus st = pipe_->recv_frame(frame, kReplyTimeoutMs);
    if (st != transport::RecvStatus::kFrame) {
      down_ = true;
      throw ProtocolError("RemoteBackend '" + name() + "': host " +
                          (st == transport::RecvStatus::kTimeout ? "hung"
                                                                 : "died") +
                          " during " + what);
    }
    wire::Reader r(frame);
    switch (static_cast<RemoteOp>(r.u8())) {
      case RemoteOp::kResponse:
        responses_.push_back(wire::decode_message(r));
        break;
      case RemoteOp::kDone: {
        const SimTime host_now = SimTime::from_ps(r.i64());
        if (host_now > now_) now_ = host_now;
        ++round_trips_;
        return;
      }
      case RemoteOp::kError:
        down_ = true;
        throw ProtocolError("RemoteBackend '" + name() + "': " + r.str());
      default:
        down_ = true;
        throw ProtocolError("RemoteBackend '" + name() +
                            "': unexpected opcode from host");
    }
  }
}

// ---------------------------------------------------------------------------
// Host side.

bool serve_backend(DutBackend& backend, transport::FramePipe& pipe) {
  std::vector<std::uint8_t> frame;
  std::vector<TimedMessage> responses;
  const auto ship_responses_and_done = [&] {
    responses.clear();
    backend.drain_responses(responses);
    for (const TimedMessage& m : responses) {
      wire::Writer w;
      w.u8(static_cast<std::uint8_t>(RemoteOp::kResponse));
      wire::encode_message(w, m);
      pipe.send_frame(w.data());
    }
    wire::Writer done;
    done.u8(static_cast<std::uint8_t>(RemoteOp::kDone));
    done.i64(backend.now().ps());
    pipe.send_frame(done.data());
  };
  for (;;) {
    if (pipe.recv_frame(frame, -1) != transport::RecvStatus::kFrame) {
      return false;  // proxy vanished without a shutdown
    }
    try {
      wire::Reader r(frame);
      switch (static_cast<RemoteOp>(r.u8())) {
        case RemoteOp::kPush:
          backend.push(wire::decode_message(r));
          break;
        case RemoteOp::kAdvance:
          backend.catch_up(SimTime::from_ps(r.i64()));
          ship_responses_and_done();
          break;
        case RemoteOp::kFinish:
          backend.finish(SimTime::from_ps(r.i64()));
          ship_responses_and_done();
          break;
        case RemoteOp::kShutdown:
          return true;
        default:
          throw ProtocolError("serve_backend: unexpected opcode from proxy");
      }
    } catch (const std::exception& e) {
      wire::Writer w;
      w.u8(static_cast<std::uint8_t>(RemoteOp::kError));
      w.str(e.what());
      pipe.send_frame(w.data());
      return false;
    }
  }
}

}  // namespace castanet::cosim

#include "src/castanet/message.hpp"

namespace castanet::cosim {

TimedMessage make_cell_message(MessageType type, SimTime ts,
                               const atm::Cell& c) {
  TimedMessage m;
  m.type = type;
  m.timestamp = ts;
  m.cell = c;
  return m;
}

TimedMessage make_word_message(MessageType type, SimTime ts,
                               std::vector<std::uint64_t> words) {
  TimedMessage m;
  m.type = type;
  m.timestamp = ts;
  m.words = std::move(words);
  return m;
}

TimedMessage make_time_update(SimTime ts) {
  TimedMessage m;
  m.timestamp = ts;
  m.time_update_only = true;
  return m;
}

void MessageChannel::send(TimedMessage m) {
  queue_.push_back(std::move(m));
  ++sent_;
  overhead_ += p_.per_message_overhead;
}

std::optional<TimedMessage> MessageChannel::receive() {
  if (queue_.empty()) return std::nullopt;
  TimedMessage m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

}  // namespace castanet::cosim

// Co-verification orchestrator — the whole of Fig. 2 in one object.
//
// Owns the message channels between a netsim::Simulation (the "OPNET") and
// an rtl::Simulator (the "VSS"), the OPNET-side gateway and the HDL-side
// co-simulation entity, and runs the coupled simulation: network events
// execute in time-stamp order; after each one the entity is pumped, the
// conservative protocol computes the safe window, the HDL simulator catches
// up, and DUT responses flow back into the network model as packets.
//
// Two execution modes:
//   * serial (default): both simulators interleave on the calling thread —
//     fully deterministic, the mode determinism-sensitive tests rely on;
//   * pipelined: the RTL simulator runs on its own worker thread, fed by a
//     bounded SPSC channel of window grants — the paper's actual
//     two-process OPNET<->VSS structure.  The §3.1 conservative windows are
//     the only synchronization points; the worker coalesces queued grants,
//     so the HDL side catches up in larger batches while the network side
//     runs ahead.
//
//     Determinism caveat: bit-identity with serial mode holds for
//     feed-forward topologies (sources -> DUT -> sinks), where DUT
//     responses do not influence what is later sent TO the DUT.  Messages
//     into the DUT apply at their own time stamps, so the DUT input stream
//     — and therefore every DUT output — is unchanged.  Responses, however,
//     are drained on the network thread after the network has run ahead,
//     and schedule_response clamps their re-entry to the network's current
//     time: response-triggered network events can execute at later times
//     than in serial mode.  In a topology where those events feed back into
//     DUT-input generation, the DUT input stream itself can legally differ
//     from serial mode.  Use serial mode when a feedback rig must be
//     reproduced exactly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/castanet/entity.hpp"
#include "src/castanet/gateway.hpp"
#include "src/netsim/simulation.hpp"

namespace castanet::cosim {

class CoVerification {
 public:
  struct Params {
    ConservativeSync::Params sync;
    /// Modeled IPC cost per message, charged to the channel statistics.
    SimTime ipc_overhead_per_message = SimTime::zero();
    /// Extra model delay for a DUT response to re-enter the network model.
    SimTime response_latency = SimTime::zero();
    /// Run the RTL simulator on a dedicated worker thread.  Off by default:
    /// serial mode keeps the exact interleaving determinism-sensitive tests
    /// expect.
    bool pipelined = false;
    /// Capacity of the bounded SPSC channels feeding the worker (window
    /// grants) and carrying DUT responses back.
    std::size_t channel_capacity = 256;
    /// Pipelined mode only: a pure-clock announcement (a grant carrying no
    /// messages) is shipped to the worker only once net time has advanced
    /// this many HDL clock periods past the previous grant.  Message-
    /// carrying grants are never elided and carry the current net time
    /// themselves, so this bounds only the catch-up granularity while the
    /// network is quiet — the worker coalesces grants into chunked
    /// catch-ups anyway, and shipping every small clock step is pure
    /// channel overhead.  1 restores an announcement per clock period.
    std::uint32_t clock_announce_stride = 100;
  };

  /// The gateway is created inside `node` with `streams` bidirectional
  /// streams; connect network models to it like to any process.
  CoVerification(netsim::Simulation& net, rtl::Simulator& hdl,
                 netsim::Node& node, unsigned streams, Params params);
  ~CoVerification();

  GatewayProcess& gateway() { return *gateway_; }
  CosimEntity& entity() { return *entity_; }
  MessageChannel& net_to_hdl() { return net_to_hdl_; }
  MessageChannel& hdl_to_net() { return hdl_to_net_; }

  /// Handles a DUT response message; default (if unset): cell responses are
  /// re-emitted by the gateway on the output stream matching the message
  /// type.  The handler runs inside a network-simulation event at a time
  /// >= both the HDL time stamp and the network's current time.
  using ResponseHandler = std::function<void(const TimedMessage&)>;
  void set_response_handler(ResponseHandler h) { on_response_ = std::move(h); }

  /// Runs the coupled simulation until network time `limit`.  In pipelined
  /// mode the worker thread lives only inside this call: it is spawned on
  /// entry and joined before returning, so stats() and the simulators are
  /// always safe to inspect between runs.
  void run_until(SimTime limit);

  struct Stats {
    std::uint64_t net_events = 0;
    std::uint64_t messages_to_hdl = 0;
    std::uint64_t messages_to_net = 0;
    std::uint64_t windows = 0;
    double max_lag_seconds = 0.0;
    std::uint64_t causality_errors = 0;
    // Pipelined-mode counters (zero in serial mode).
    std::uint64_t window_grant_stalls = 0;   ///< sends blocked on a full channel
    std::uint64_t max_channel_occupancy = 0; ///< high-water mark of either channel
    std::uint64_t worker_batches = 0;        ///< coalesced grant batches executed
  };
  Stats stats() const;

 private:
  /// One unit of work handed to the RTL worker: messages to push into the
  /// conservative protocol, the originator's clock (as a field rather than
  /// a TimedMessage so the common no-payload grant needs no allocation),
  /// then a catch-up horizon.
  struct WorkerCmd {
    std::vector<TimedMessage> msgs;
    SimTime net_now;
    SimTime limit;
  };

  void run_until_serial(SimTime limit);
  void run_until_pipelined(SimTime limit);

  // Shared response path: schedules a DUT response back into the network.
  void schedule_response(TimedMessage m);
  void pump_responses();          // serial mode: drains hdl_to_net_
  void catch_up_hdl(SimTime limit);

  // Pipelined mode (main thread side).
  void start_worker();
  void send_command(WorkerCmd cmd);
  void drain_worker_responses();  // drains resp_chan_
  void flush_worker();            // waits until every sent command executed
  void shutdown_worker();         // closes channels, joins, drains

  // Pipelined mode (worker thread side).
  void worker_main();
  void worker_catch_up(SimTime limit);

  netsim::Simulation& net_;
  rtl::Simulator& hdl_;
  MessageChannel net_to_hdl_;
  MessageChannel hdl_to_net_;
  GatewayProcess* gateway_ = nullptr;
  std::unique_ptr<CosimEntity> entity_;
  Params params_;
  ResponseHandler on_response_;
  std::uint64_t net_events_ = 0;

  // Worker plumbing.  While the worker lives, hdl_/entity_/hdl_to_net_
  // belong to the worker thread and net_/net_to_hdl_ to the caller; the
  // SPSC channels are the only shared state.
  std::unique_ptr<SpscChannel<WorkerCmd>> cmd_chan_;
  std::unique_ptr<SpscChannel<TimedMessage>> resp_chan_;
  std::thread worker_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  /// Written by the sender only; atomic so the worker's completion check
  /// needs no extra lock on the send path.
  std::atomic<std::uint64_t> cmds_sent_{0};
  // Progress counters.  Atomic rather than done_mu_-guarded so the worker's
  // steady state touches no lock at all: it bumps cmds_done_, and only on
  // the completion edge (done caught up with sent) does it synchronize with
  // done_mu_ to publish the wake-up.
  std::atomic<std::uint64_t> cmds_done_{0};
  std::atomic<std::uint64_t> worker_batches_{0};
  // True once the worker has failed; atomic so the per-event poll in the
  // net loop never touches done_mu_ (the worker takes that lock per chunk,
  // and on a shared core every contended acquire is a context switch).
  std::atomic<bool> worker_dead_{false};
  bool worker_exited_ = false;    // guarded by done_mu_; worker_main returned
  std::exception_ptr worker_error_;   // guarded by done_mu_
  std::uint64_t window_grant_stalls_ = 0;  // main thread only
  std::uint64_t max_channel_occupancy_ = 0;  // updated at shutdown
  std::vector<TimedMessage> resp_scratch_;   // main thread only
};

}  // namespace castanet::cosim

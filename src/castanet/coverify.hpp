// Two-party co-verification orchestrator — Fig. 2 as one object.
//
// Since the N-backend refactor this is a thin shim over VerificationSession
// with a single RtlBackend attached: the session owns the OPNET-side gateway
// and the run loop (serial and pipelined), the backend owns the HDL-side
// co-simulation entity and its conservative-sync instance.  The public API,
// parameters, statistics, and both execution modes' observable behavior are
// unchanged from the pre-refactor orchestrator:
//
//   * serial (default): both simulators interleave on the calling thread —
//     fully deterministic, the mode determinism-sensitive tests rely on;
//   * pipelined: the RTL simulator runs on its own worker thread, fed by a
//     bounded SPSC channel of window grants — the paper's actual
//     two-process OPNET<->VSS structure.  The §3.1 conservative windows are
//     the only synchronization points; the worker coalesces queued grants,
//     so the HDL side catches up in larger batches while the network side
//     runs ahead.
//
//     Determinism caveat: bit-identity with serial mode holds for
//     feed-forward topologies (sources -> DUT -> sinks), where DUT
//     responses do not influence what is later sent TO the DUT.  Messages
//     into the DUT apply at their own time stamps, so the DUT input stream
//     — and therefore every DUT output — is unchanged.  Responses, however,
//     are drained on the network thread after the network has run ahead,
//     and their re-entry is clamped to the network's current time:
//     response-triggered network events can execute at later times than in
//     serial mode.  In a topology where those events feed back into
//     DUT-input generation, the DUT input stream itself can legally differ
//     from serial mode.  Use serial mode when a feedback rig must be
//     reproduced exactly.
//
//     Either mode runs the HDL kernel with levelized two-phase evaluation
//     on by default (DESIGN.md §7.7).  That optimization's guarantee —
//     settled signal values at every time point bit-identical to the delta
//     loop — composes with the caveat above: the sync protocol and the
//     comparators only observe settled values at window boundaries, so
//     levelization changes neither the serial baseline nor the pipelined
//     equivalence class.
//
// Rigs that want more than one device under the same testbench (RTL +
// reference model + board) should use VerificationSession directly — see
// session.hpp.
#pragma once

#include <cstdint>
#include <functional>

#include "src/castanet/backend.hpp"
#include "src/castanet/session.hpp"

namespace castanet::cosim {

class CoVerification {
 public:
  struct Params {
    ConservativeSync::Params sync;
    /// Modeled IPC cost per message, charged to the channel statistics.
    SimTime ipc_overhead_per_message = SimTime::zero();
    /// Extra model delay for a DUT response to re-enter the network model.
    SimTime response_latency = SimTime::zero();
    /// Run the RTL simulator on a dedicated worker thread.  Off by default:
    /// serial mode keeps the exact interleaving determinism-sensitive tests
    /// expect.
    bool pipelined = false;
    /// Capacity of the bounded SPSC channels feeding the worker (window
    /// grants) and carrying DUT responses back.
    std::size_t channel_capacity = 256;
    /// Pipelined mode only: a pure-clock announcement (a grant carrying no
    /// messages) is shipped to the worker only once net time has advanced
    /// this many HDL clock periods past the previous grant.  Message-
    /// carrying grants are never elided and carry the current net time
    /// themselves, so this bounds only the catch-up granularity while the
    /// network is quiet — the worker coalesces grants into chunked
    /// catch-ups anyway, and shipping every small clock step is pure
    /// channel overhead.  1 restores an announcement per clock period.
    /// With adaptive_stride this is the controller's FLOOR.
    std::uint32_t clock_announce_stride = 100;
    /// Upper bound for the adaptive stride controller; 0 means 16x the
    /// floor.  Ignored when adaptive_stride is false.
    std::uint32_t max_clock_announce_stride = 0;
    /// Pipelined mode: adapt the announce stride to the worker — back off
    /// towards the max while the command channel congests or grants stall,
    /// decay back to the floor while the worker keeps up.
    bool adaptive_stride = true;
    /// Pipelined mode: flush the coalesced grant batch to the worker once
    /// this many gateway messages are pending (a stride boundary flushes
    /// regardless).  1 restores a push per message-carrying event.
    std::size_t fanout_batch_messages = 8;
  };

  /// The gateway is created inside `node` with `streams` bidirectional
  /// streams; connect network models to it like to any process.
  CoVerification(netsim::Simulation& net, rtl::Simulator& hdl,
                 netsim::Node& node, unsigned streams, Params params);

  GatewayProcess& gateway() { return session_.gateway(); }
  CosimEntity& entity() { return backend_.entity(); }
  /// Gateway -> HDL channel (transport-overhead accounting).
  MessageChannel& net_to_hdl() { return session_.gateway_channel(); }
  /// HDL -> net response channel (transport-overhead accounting).
  MessageChannel& hdl_to_net() { return backend_.response_channel(); }

  /// Handles a DUT response message; default (if unset): cell responses are
  /// re-emitted by the gateway on the output stream matching the message
  /// type.  The handler runs inside a network-simulation event at a time
  /// >= both the HDL time stamp and the network's current time.
  using ResponseHandler = std::function<void(const TimedMessage&)>;
  void set_response_handler(ResponseHandler h) {
    session_.set_response_handler(std::move(h));
  }

  /// Runs the coupled simulation until network time `limit`.  In pipelined
  /// mode the worker thread lives only inside this call: it is spawned on
  /// entry and joined before returning, so stats() and the simulators are
  /// always safe to inspect between runs.
  void run_until(SimTime limit) { session_.run_until(limit); }

  struct Stats {
    std::uint64_t net_events = 0;
    std::uint64_t messages_to_hdl = 0;
    std::uint64_t messages_to_net = 0;
    std::uint64_t windows = 0;
    double max_lag_seconds = 0.0;
    std::uint64_t causality_errors = 0;
    // Pipelined-mode counters (zero in serial mode).
    std::uint64_t window_grant_stalls = 0;   ///< sends blocked on a full channel
    std::uint64_t max_channel_occupancy = 0; ///< high-water mark of either channel
    std::uint64_t worker_batches = 0;        ///< coalesced grant batches executed
    std::uint32_t effective_stride = 0;      ///< stride at end of last run
    std::uint32_t max_effective_stride = 0;  ///< adaptive controller high-water
    std::uint64_t fanout_batches = 0;        ///< coalesced fan-out batches
    std::uint64_t fanout_messages = 0;       ///< messages inside them
  };
  Stats stats() const;

  /// The underlying N-backend session (e.g. to attach a second backend
  /// before the first run, or to read the cross-backend comparator).
  VerificationSession& session() { return session_; }

 private:
  // Declaration order matters: session_ is destroyed FIRST (it joins any
  // still-live worker threads, which reference backend_).
  RtlBackend backend_;
  VerificationSession session_;
};

}  // namespace castanet::cosim

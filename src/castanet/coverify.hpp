// Co-verification orchestrator — the whole of Fig. 2 in one object.
//
// Owns the message channels between a netsim::Simulation (the "OPNET") and
// an rtl::Simulator (the "VSS"), the OPNET-side gateway and the HDL-side
// co-simulation entity, and runs the coupled simulation: network events
// execute in time-stamp order; after each one the entity is pumped, the
// conservative protocol computes the safe window, the HDL simulator catches
// up, and DUT responses flow back into the network model as packets.
#pragma once

#include <functional>
#include <memory>

#include "src/castanet/entity.hpp"
#include "src/castanet/gateway.hpp"
#include "src/netsim/simulation.hpp"

namespace castanet::cosim {

class CoVerification {
 public:
  struct Params {
    ConservativeSync::Params sync;
    /// Modeled IPC cost per message, charged to the channel statistics.
    SimTime ipc_overhead_per_message = SimTime::zero();
    /// Extra model delay for a DUT response to re-enter the network model.
    SimTime response_latency = SimTime::zero();
  };

  /// The gateway is created inside `node` with `streams` bidirectional
  /// streams; connect network models to it like to any process.
  CoVerification(netsim::Simulation& net, rtl::Simulator& hdl,
                 netsim::Node& node, unsigned streams, Params params);

  GatewayProcess& gateway() { return *gateway_; }
  CosimEntity& entity() { return *entity_; }
  MessageChannel& net_to_hdl() { return net_to_hdl_; }
  MessageChannel& hdl_to_net() { return hdl_to_net_; }

  /// Handles a DUT response message; default (if unset): cell responses are
  /// re-emitted by the gateway on the output stream matching the message
  /// type.  The handler runs inside a network-simulation event at a time
  /// >= both the HDL time stamp and the network's current time.
  using ResponseHandler = std::function<void(const TimedMessage&)>;
  void set_response_handler(ResponseHandler h) { on_response_ = std::move(h); }

  /// Runs the coupled simulation until network time `limit`.
  void run_until(SimTime limit);

  struct Stats {
    std::uint64_t net_events = 0;
    std::uint64_t messages_to_hdl = 0;
    std::uint64_t messages_to_net = 0;
    std::uint64_t windows = 0;
    double max_lag_seconds = 0.0;
    std::uint64_t causality_errors = 0;
  };
  Stats stats() const;

 private:
  void pump_responses();
  void catch_up_hdl(SimTime limit);

  netsim::Simulation& net_;
  rtl::Simulator& hdl_;
  MessageChannel net_to_hdl_;
  MessageChannel hdl_to_net_;
  GatewayProcess* gateway_ = nullptr;
  std::unique_ptr<CosimEntity> entity_;
  Params params_;
  ResponseHandler on_response_;
  std::uint64_t net_events_ = 0;
};

}  // namespace castanet::cosim

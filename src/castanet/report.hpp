// Run-level report consolidation (PR 8).
//
// A farm run leaves N per-shard artifacts behind: metrics JSON snapshots
// (one per session, retagged by tagged_path) and Chrome trace files.  This
// module folds them back into ONE run-level view — the table a soak run is
// judged by: merged aggregates (counters summed, histograms merged exactly),
// a per-flow latency quantile table, and the top-N spans by total wall time
// across every shard's trace.
//
// Used by tools/castanet_report (standalone consolidator over files on disk)
// and by castanet_farm --report (in-process, straight from the FarmReport).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/json.hpp"
#include "src/core/telemetry.hpp"

namespace castanet::cosim::report {

/// One input shard: a metrics snapshot plus where it came from.
struct ShardMetrics {
  std::string path;  ///< source file ("<memory>" for in-process shards)
  telemetry::MetricsSnapshot snapshot;
};

/// One row of the per-flow quantile table, extracted from the merged
/// snapshot's "flow.<key>.*" rows.
struct FlowRow {
  std::string flow;  ///< "vpi/vci@stream"
  std::uint64_t cells_in = 0;
  std::uint64_t cells_out = 0;
  std::uint64_t drops = 0;
  std::uint64_t samples = 0;  ///< latency histogram count
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0;
};

/// One aggregated span family across every shard trace.
struct SpanAgg {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

struct RunReport {
  std::vector<ShardMetrics> shards;
  telemetry::MetricsSnapshot merged;
  std::vector<SpanAgg> top_spans;

  /// Extracted from `merged`; sorted by flow key string.
  std::vector<FlowRow> flow_table() const;

  /// {"shards": [...], "metrics": {...}, "flows": [...], "top_spans": [...]}
  json::Value to_json() const;
  /// Human-readable: shard rows, the per-flow quantile table, top spans.
  std::string to_table() const;
};

/// Loads per-shard metrics JSON files and (optionally) Chrome traces, merges
/// everything.  `top_n` bounds the span table.  Throws IoError on unreadable
/// files, LogicError on documents that are not metrics snapshots.
RunReport consolidate(const std::vector<std::string>& metrics_paths,
                      const std::vector<std::string>& trace_paths,
                      std::size_t top_n = 10);

/// Aggregates complete ("X") events of one parsed Chrome trace into `spans`
/// (name-keyed; call per trace, then finalize_spans to rank).
void accumulate_trace_spans(const json::Value& trace,
                            std::vector<SpanAgg>& spans);
/// Sorts by total duration descending and truncates to `top_n`.
void finalize_spans(std::vector<SpanAgg>& spans, std::size_t top_n);

/// Schema check used by `scripts/check.sh` (metrics-schema gate): the
/// document must be a metrics snapshot (or a farm/run report embedding one
/// under "metrics") that survives a from_json -> to_json_value -> from_json
/// round-trip structurally intact.  Returns an empty string on success, the
/// failure reason otherwise.
std::string validate_metrics_json(const std::string& text);

}  // namespace castanet::cosim::report

#include "src/castanet/transport.hpp"

#include "src/castanet/wire.hpp"
#include "src/core/error.hpp"

namespace castanet::cosim {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess: return "in-process";
    case TransportKind::kSocket: return "socket";
  }
  return "?";
}

TransportKind transport_kind_from_string(const std::string& s) {
  if (s == "in-process" || s == "inprocess" || s == "in_process") {
    return TransportKind::kInProcess;
  }
  if (s == "socket") return TransportKind::kSocket;
  throw ConfigError("unknown transport kind '" + s +
                    "' (expected \"in-process\" or \"socket\")");
}

SocketMessageTransport::SocketMessageTransport(Params p) : p_(p) {
  auto [a, b] = transport::make_socket_pipe();
  tx_ = std::move(a);
  rx_ = std::move(b);
}

SocketMessageTransport::SocketMessageTransport(
    Params p, std::unique_ptr<transport::FramePipe> tx,
    std::unique_ptr<transport::FramePipe> rx)
    : p_(p), tx_(std::move(tx)), rx_(std::move(rx)) {
  require(tx_ != nullptr || rx_ != nullptr,
          "SocketMessageTransport: need at least one pipe endpoint");
}

SocketMessageTransport::~SocketMessageTransport() {
  if (tx_) tx_->close();
  if (rx_) rx_->close();
}

void SocketMessageTransport::send(TimedMessage m) {
  require(tx_ != nullptr, "SocketMessageTransport: send on a receive-only end");
  const std::vector<std::uint8_t> frame = wire::encode_message(m);
  if (!tx_->send_frame(frame)) {
    throw ProtocolError("socket transport: peer closed while sending");
  }
  ++sent_;
  overhead_ = overhead_ + p_.per_message_overhead;
  // Keep the kernel buffer drained so a long send burst can never fill it
  // and block the (single) simulation thread against itself.
  pump();
}

void SocketMessageTransport::pump() const {
  if (!rx_) return;
  std::vector<std::uint8_t> frame;
  while (rx_->recv_frame(frame, 0) == transport::RecvStatus::kFrame) {
    inbox_.push_back(wire::decode_message(frame));
  }
}

std::optional<TimedMessage> SocketMessageTransport::receive() {
  require(rx_ != nullptr, "SocketMessageTransport: receive on a send-only end");
  if (inbox_.empty()) pump();
  if (inbox_.empty()) return std::nullopt;
  TimedMessage m = std::move(inbox_.front());
  inbox_.pop_front();
  return m;
}

bool SocketMessageTransport::empty() const {
  pump();
  return inbox_.empty();
}

std::size_t SocketMessageTransport::pending() const {
  pump();
  return inbox_.size();
}

std::uint64_t SocketMessageTransport::bytes_sent() const {
  return tx_ ? tx_->bytes_sent() : 0;
}

std::unique_ptr<MessageTransport> make_transport(TransportKind kind,
                                                 SimTime per_message_overhead) {
  switch (kind) {
    case TransportKind::kInProcess:
      return std::make_unique<MessageChannel>(
          MessageChannel::Params{per_message_overhead});
    case TransportKind::kSocket:
      return std::make_unique<SocketMessageTransport>(
          SocketMessageTransport::Params{per_message_overhead});
  }
  throw LogicError("make_transport: bad TransportKind");
}

}  // namespace castanet::cosim

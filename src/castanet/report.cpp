#include "src/castanet/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/core/error.hpp"

namespace castanet::cosim::report {

namespace {

/// Headline counters surfaced per shard in the report.
std::uint64_t row_count(const telemetry::MetricsSnapshot& s,
                        const std::string& name) {
  const telemetry::MetricRow* r = s.find(name);
  return r != nullptr ? r->count : 0;
}

bool same_double(double a, double b, double tol) {
  if (std::isnan(a) && std::isnan(b)) return true;
  if (std::isnan(a) != std::isnan(b)) return false;
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= tol * std::max(1.0, scale);
}

}  // namespace

std::vector<FlowRow> RunReport::flow_table() const {
  // Flow rows are published as flow.<key>.latency_seconds (histogram) plus
  // flow.<key>.cells_in/cells_out/drops counters; the histogram row anchors
  // the table and the counters are looked up by name.
  std::vector<FlowRow> out;
  constexpr const char* kPrefix = "flow.";
  constexpr const char* kSuffix = ".latency_seconds";
  for (const telemetry::MetricRow& r : merged.rows) {
    if (r.kind != telemetry::MetricRow::Kind::kHistogram) continue;
    if (r.name.rfind(kPrefix, 0) != 0) continue;
    const std::size_t suffix_at = r.name.size() - std::char_traits<char>::length(kSuffix);
    if (r.name.size() <= std::char_traits<char>::length(kSuffix) ||
        r.name.compare(suffix_at, std::string::npos, kSuffix) != 0) {
      continue;
    }
    FlowRow row;
    row.flow = r.name.substr(std::char_traits<char>::length(kPrefix),
                             suffix_at - std::char_traits<char>::length(kPrefix));
    const std::string base = std::string(kPrefix) + row.flow + ".";
    row.cells_in = row_count(merged, base + "cells_in");
    row.cells_out = row_count(merged, base + "cells_out");
    row.drops = row_count(merged, base + "drops");
    row.samples = r.hist.count();
    if (row.samples > 0) {
      row.p50 = r.hist.quantile(0.50);
      row.p90 = r.hist.quantile(0.90);
      row.p99 = r.hist.quantile(0.99);
      row.p999 = r.hist.quantile(0.999);
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const FlowRow& a, const FlowRow& b) { return a.flow < b.flow; });
  return out;
}

json::Value RunReport::to_json() const {
  json::Value doc{json::Object{}};
  json::Value shard_rows{json::Array{}};
  for (const ShardMetrics& s : shards) {
    json::Value row{json::Object{}};
    row.set("path", s.path);
    row.set("rows", static_cast<std::int64_t>(s.snapshot.rows.size()));
    row.set("responses",
            static_cast<std::int64_t>(row_count(s.snapshot, "session.responses")));
    row.set("divergences",
            static_cast<std::int64_t>(
                row_count(s.snapshot, "session.divergences")));
    row.set("trace_events",
            static_cast<std::int64_t>(s.snapshot.trace_events));
    shard_rows.push_back(std::move(row));
  }
  doc.set("shards", std::move(shard_rows));
  doc.set("metrics", merged.to_json_value());
  json::Value flows{json::Array{}};
  for (const FlowRow& f : flow_table()) {
    json::Value row{json::Object{}};
    row.set("flow", f.flow);
    row.set("cells_in", static_cast<std::int64_t>(f.cells_in));
    row.set("cells_out", static_cast<std::int64_t>(f.cells_out));
    row.set("drops", static_cast<std::int64_t>(f.drops));
    row.set("samples", static_cast<std::int64_t>(f.samples));
    row.set("p50", f.p50);
    row.set("p90", f.p90);
    row.set("p99", f.p99);
    row.set("p999", f.p999);
    flows.push_back(std::move(row));
  }
  doc.set("flows", std::move(flows));
  json::Value spans{json::Array{}};
  for (const SpanAgg& s : top_spans) {
    json::Value row{json::Object{}};
    row.set("name", s.name);
    row.set("count", static_cast<std::int64_t>(s.count));
    row.set("total_us", s.total_us);
    row.set("max_us", s.max_us);
    spans.push_back(std::move(row));
  }
  doc.set("top_spans", std::move(spans));
  return doc;
}

std::string RunReport::to_table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "run report: %zu shard(s), %zu metric row(s)\n",
                shards.size(), merged.rows.size());
  out += line;
  for (const ShardMetrics& s : shards) {
    std::snprintf(line, sizeof line,
                  "  shard %-40s rows=%-5zu responses=%llu divergences=%llu\n",
                  s.path.c_str(), s.snapshot.rows.size(),
                  static_cast<unsigned long long>(
                      row_count(s.snapshot, "session.responses")),
                  static_cast<unsigned long long>(
                      row_count(s.snapshot, "session.divergences")));
    out += line;
  }
  const std::vector<FlowRow> flows = flow_table();
  if (!flows.empty()) {
    out += "\nper-flow cell latency (seconds)\n";
    std::snprintf(line, sizeof line, "%-16s %8s %8s %6s %11s %11s %11s %11s\n",
                  "flow", "in", "out", "drops", "p50", "p90", "p99", "p99.9");
    out += line;
    out.append(88, '-');
    out += "\n";
    for (const FlowRow& f : flows) {
      std::snprintf(line, sizeof line,
                    "%-16s %8llu %8llu %6llu %11.3g %11.3g %11.3g %11.3g\n",
                    f.flow.c_str(),
                    static_cast<unsigned long long>(f.cells_in),
                    static_cast<unsigned long long>(f.cells_out),
                    static_cast<unsigned long long>(f.drops), f.p50, f.p90,
                    f.p99, f.p999);
      out += line;
    }
  }
  if (!top_spans.empty()) {
    out += "\ntop spans by total duration\n";
    std::snprintf(line, sizeof line, "%-32s %10s %14s %12s\n", "span", "count",
                  "total_us", "max_us");
    out += line;
    out.append(72, '-');
    out += "\n";
    for (const SpanAgg& s : top_spans) {
      std::snprintf(line, sizeof line, "%-32s %10llu %14.1f %12.1f\n",
                    s.name.c_str(), static_cast<unsigned long long>(s.count),
                    s.total_us, s.max_us);
      out += line;
    }
  }
  return out;
}

void accumulate_trace_spans(const json::Value& trace,
                            std::vector<SpanAgg>& spans) {
  const json::Value* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) return;
  for (const json::Value& e : events->as_array()) {
    if (!e.is_object()) continue;
    if (e.string_or("ph", "") != "X") continue;  // complete events only
    const json::Value* name = e.find("name");
    const json::Value* dur = e.find("dur");
    if (name == nullptr || !name->is_string() || dur == nullptr ||
        !dur->is_number()) {
      continue;
    }
    const double d = dur->as_double();
    SpanAgg* slot = nullptr;
    for (SpanAgg& s : spans) {
      if (s.name == name->as_string()) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) {
      spans.push_back(SpanAgg{name->as_string(), 0, 0.0, 0.0});
      slot = &spans.back();
    }
    ++slot->count;
    slot->total_us += d;
    slot->max_us = std::max(slot->max_us, d);
  }
}

void finalize_spans(std::vector<SpanAgg>& spans, std::size_t top_n) {
  std::sort(spans.begin(), spans.end(), [](const SpanAgg& a, const SpanAgg& b) {
    return a.total_us > b.total_us;
  });
  if (spans.size() > top_n) spans.resize(top_n);
}

RunReport consolidate(const std::vector<std::string>& metrics_paths,
                      const std::vector<std::string>& trace_paths,
                      std::size_t top_n) {
  RunReport rep;
  for (const std::string& path : metrics_paths) {
    ShardMetrics shard;
    shard.path = path;
    shard.snapshot = telemetry::MetricsSnapshot::from_json(
        json::parse_file(path));
    rep.merged.merge_from(shard.snapshot);
    rep.shards.push_back(std::move(shard));
  }
  std::vector<SpanAgg> spans;
  for (const std::string& path : trace_paths) {
    accumulate_trace_spans(json::parse_file(path), spans);
  }
  finalize_spans(spans, top_n);
  rep.top_spans = std::move(spans);
  return rep;
}

std::string validate_metrics_json(const std::string& text) {
  using telemetry::MetricsSnapshot;
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    return std::string("not valid JSON: ") + e.what();
  }
  // A farm/run report embeds the snapshot under "metrics" (object form); a
  // bare snapshot has "metrics" as the row array directly.
  const json::Value* snap_doc = &doc;
  if (const json::Value* m = doc.find("metrics");
      m != nullptr && m->is_object()) {
    snap_doc = m;
  }
  MetricsSnapshot first;
  try {
    first = MetricsSnapshot::from_json(*snap_doc);
  } catch (const std::exception& e) {
    return std::string("not a metrics snapshot: ") + e.what();
  }
  MetricsSnapshot second;
  try {
    second = MetricsSnapshot::from_json(first.to_json_value());
  } catch (const std::exception& e) {
    return std::string("re-parse of exported snapshot failed: ") + e.what();
  }
  if (first.rows.size() != second.rows.size()) {
    return "round-trip changed the row count";
  }
  for (std::size_t i = 0; i < first.rows.size(); ++i) {
    const telemetry::MetricRow& a = first.rows[i];
    const telemetry::MetricRow& b = second.rows[i];
    if (a.name != b.name || a.kind != b.kind || a.count != b.count) {
      return "round-trip changed row \"" + a.name + "\"";
    }
    // %.9g rendering keeps ~9 significant digits; allow that much drift.
    constexpr double kTol = 1e-8;
    if (!same_double(a.sum, b.sum, kTol) || !same_double(a.min, b.min, kTol) ||
        !same_double(a.max, b.max, kTol) ||
        !same_double(a.last, b.last, kTol)) {
      return "round-trip changed the values of row \"" + a.name + "\"";
    }
    if (a.kind == telemetry::MetricRow::Kind::kHistogram) {
      // Bucket counts are integers: the round-trip must be EXACT.
      if (a.hist.zero_count() != b.hist.zero_count() ||
          a.hist.nonzero_buckets() != b.hist.nonzero_buckets()) {
        return "round-trip changed the histogram buckets of row \"" + a.name +
               "\"";
      }
    }
  }
  if (first.trace_events != second.trace_events ||
      first.trace_dropped != second.trace_dropped) {
    return "round-trip changed the trace totals";
  }
  return "";
}

}  // namespace castanet::cosim::report

// Hosting a DutBackend in another process.
//
// The paper's Fig. 2 runs the HDL simulator as a SEPARATE UNIX process the
// CASTANET interface talks to over IPC.  RemoteBackend restores that split
// for any backend: the session side holds a RemoteBackend proxy, the hosting
// process runs serve_backend() around the real backend, and the two speak a
// small framed protocol over a FramePipe (typically an AF_UNIX socketpair
// carried across fork()).
//
// The proxy keeps a local MIRROR ConservativeSync fed with the identical
// push stream the hosted backend receives.  Conservative windows are a
// deterministic function of that stream, so proxy and host always agree on
// how far the backend may advance — the proxy can run the standard
// catch_up() loop against its mirror and ship only the resulting advance
// targets, one round-trip per granted window instead of one per message.
//
// Failure semantics: a dead host (closed pipe, crashed process) surfaces as
// ProtocolError from the next proxy call; the session farm maps that to a
// failed shard without disturbing sibling workers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/castanet/backend.hpp"
#include "src/core/transport.hpp"

namespace castanet::cosim {

/// Protocol opcodes (first byte of every frame).
enum class RemoteOp : std::uint8_t {
  kPush = 1,      ///< proxy -> host: one encoded TimedMessage follows
  kAdvance = 2,   ///< proxy -> host: advance to target (i64 ps)
  kFinish = 3,    ///< proxy -> host: run finish(at) (i64 ps)
  kShutdown = 4,  ///< proxy -> host: stop serving
  kResponse = 5,  ///< host -> proxy: one encoded response TimedMessage
  kDone = 6,      ///< host -> proxy: request complete; now() (i64 ps) follows
  kError = 7,     ///< host -> proxy: request failed; what() string follows
};

/// Session-side proxy for a backend hosted behind `pipe`.  Declare the same
/// inputs (type, δ) the hosted backend declares — the mirror sync must see
/// the protocol the host sees.
class RemoteBackend final : public DutBackend {
 public:
  RemoteBackend(std::string name, ConservativeSync::Params sync_params,
                std::unique_ptr<transport::FramePipe> pipe);
  ~RemoteBackend() override;

  /// Mirrors the hosted backend's declare_input/register_input calls.
  void declare_input(MessageType type, std::uint64_t delta_cycles);

  /// Sends kShutdown and closes the pipe (idempotent; also run by the
  /// destructor).  After this every protocol call throws.
  void shutdown();

  ConservativeSync& sync() override { return sync_; }
  SimTime now() const override { return now_; }
  void push(const TimedMessage& m) override;
  void finish(SimTime at) override;
  void drain_responses(std::vector<TimedMessage>& out) override;

  std::uint64_t round_trips() const { return round_trips_; }

 protected:
  void advance_to(SimTime target) override;

 private:
  /// Reads host frames until kDone, buffering kResponse payloads.  Throws
  /// ProtocolError on kError or a dead pipe.
  void wait_done(const char* what);

  ConservativeSync sync_;
  std::unique_ptr<transport::FramePipe> pipe_;
  std::vector<TimedMessage> responses_;
  SimTime now_;
  std::uint64_t round_trips_ = 0;
  bool down_ = false;
};

/// Hosts `backend` behind `pipe`: services proxy requests until kShutdown
/// arrives or the peer disappears.  Returns true on orderly shutdown, false
/// when the pipe closed unexpectedly.  Exceptions from the backend are
/// reported to the proxy as kError frames and terminate the loop.
bool serve_backend(DutBackend& backend, transport::FramePipe& pipe);

}  // namespace castanet::cosim

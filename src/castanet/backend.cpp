#include "src/castanet/backend.hpp"

#include <algorithm>
#include <optional>
#include <thread>

#include "src/core/error.hpp"

namespace castanet::cosim {

void DutBackend::catch_up(SimTime limit) {
  catch_up(limit, nullptr);
}

bool DutBackend::catch_up(SimTime limit,
                          const std::function<bool()>& after_step) {
  // First window probe before any span: a catch-up that cannot advance at
  // all is a lookahead stall (the protocol granted nothing new), counted
  // but not traced — stalls are visible as gaps between grant spans.
  {
    const SimTime target = std::min(window() - SimTime::from_ps(1), limit);
    if (target <= now()) {
      sync().note_lookahead_stall();
      return true;
    }
  }
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("grant", telemetry_track());
    span->arg("from_us", now().seconds() * 1e6);
  }
  for (;;) {
    const SimTime w = window();
    const SimTime target = std::min(w - SimTime::from_ps(1), limit);
    if (target <= now()) break;
    advance_to(target);
    if (after_step && !after_step()) return false;
  }
  if (span) {
    span->arg("to_us", now().seconds() * 1e6);
    span->arg("lag_us",
              std::max(0.0, (sync().network_time() - now()).seconds() * 1e6));
  }
  return true;
}

// ---------------------------------------------------------------------------
// RtlBackend

RtlBackend::RtlBackend(std::string name, rtl::Simulator& hdl,
                       ConservativeSync::Params sync_params,
                       MessageChannel::Params channel_params)
    : DutBackend(std::move(name)),
      hdl_(hdl),
      from_net_(channel_params),
      to_net_(channel_params),
      entity_(std::make_unique<CosimEntity>(hdl, from_net_, to_net_,
                                            sync_params)) {}

SimTime RtlBackend::now() const { return hdl_.now(); }

void RtlBackend::set_telemetry_track(telemetry::TrackId track) {
  DutBackend::set_telemetry_track(track);
  hdl_.set_telemetry_track(track);
}

void RtlBackend::advance_to(SimTime target) {
  entity_->advance_hdl_to(target);
}

void RtlBackend::finish(SimTime at) {
  if (finish_hook_) finish_hook_(*this, at);
}

void RtlBackend::drain_responses(std::vector<TimedMessage>& out) {
  while (auto m = to_net_.receive()) out.push_back(std::move(*m));
}

// ---------------------------------------------------------------------------
// ReferenceBackend

ReferenceBackend::ReferenceBackend(std::string name,
                                   ConservativeSync::Params sync_params)
    : DutBackend(std::move(name)), sync_(sync_params) {}

void ReferenceBackend::register_input(MessageType type,
                                      std::uint64_t delta_cycles,
                                      ApplyFn apply) {
  sync_.declare_input(type, delta_cycles);
  apply_[type] = std::move(apply);
}

void ReferenceBackend::respond(MessageType stream, SimTime ts,
                               const atm::Cell& c) {
  responses_.push_back(make_cell_message(stream, ts, c));
}

void ReferenceBackend::respond_words(MessageType stream, SimTime ts,
                                     std::vector<std::uint64_t> words) {
  responses_.push_back(make_word_message(stream, ts, std::move(words)));
}

void ReferenceBackend::advance_to(SimTime target) {
  // Instantaneous δ: each deliverable message is one function call at its
  // own time stamp (take_deliverable returns them sorted by time).
  auto messages = sync_.take_deliverable(target + SimTime::from_ps(1));
  for (TimedMessage& m : messages) {
    auto it = apply_.find(m.type);
    require(it != apply_.end(),
            "ReferenceBackend: no apply fn for message type");
    it->second(m);
    ++applied_;
  }
  now_ = target;
  sync_.note_hdl_time(now_);
}

void ReferenceBackend::finish(SimTime at) {
  if (finish_hook_) finish_hook_(*this, at);
}

void ReferenceBackend::drain_responses(std::vector<TimedMessage>& out) {
  out.insert(out.end(), std::make_move_iterator(responses_.begin()),
             std::make_move_iterator(responses_.end()));
  responses_.clear();
}

// ---------------------------------------------------------------------------
// BoardBackend

BoardBackend::BoardBackend(std::string name, board::HardwareTestBoard& board,
                           board::BehavioralDut& dut, Params p)
    : DutBackend(std::move(name)),
      sync_(p.sync),
      board_(board),
      dut_(dut),
      stream_(board, p.stream),
      p_(p) {
  require(p_.cells_per_batch > 0, "BoardBackend: cells_per_batch must be > 0");
}

void BoardBackend::register_cell_input(MessageType type,
                                       std::uint64_t delta_cycles) {
  sync_.declare_input(type, delta_cycles);
  cell_stream_ = type;
}

void BoardBackend::respond_words(MessageType stream, SimTime ts,
                                 std::vector<std::uint64_t> words) {
  responses_.push_back(make_word_message(stream, ts, std::move(words)));
}

void BoardBackend::advance_to(SimTime target) {
  auto messages = sync_.take_deliverable(target + SimTime::from_ps(1));
  for (TimedMessage& m : messages) {
    if (!m.cell) continue;  // the board cell stream carries cells only
    pending_.push_back({m.timestamp, *m.cell});
  }
  if (pending_.size() >= p_.cells_per_batch) run_pending();
  now_ = target;
  sync_.note_hdl_time(now_);
}

void BoardBackend::run_pending() {
  if (pending_.empty()) return;
  // Rebase the batch to its first cell: vector memories then hold only the
  // batch's span instead of growing with absolute simulated time.
  const SimTime origin = pending_.front().time;
  std::vector<traffic::CellArrival> rebased;
  rebased.reserve(pending_.size());
  for (const traffic::CellArrival& a : pending_)
    rebased.push_back({a.time - origin, a.cell});
  const BoardCellStream::Result r = stream_.run(dut_, rebased);
  if (p_.real_time_per_test_cycle.count() > 0 && r.test_cycles > 0) {
    // The physical board replays the batch in real time; the driving
    // process waits for it (the paper's SCSI request blocks).  This wait is
    // wall-clock only — simulated time stays defined by the sync protocol.
    std::this_thread::sleep_for(r.test_cycles * p_.real_time_per_test_cycle);
  }
  totals_.totals.cycles += r.totals.cycles;
  totals_.totals.sw_time += r.totals.sw_time;
  totals_.totals.hw_time += r.totals.hw_time;
  totals_.test_cycles += r.test_cycles;
  // The adapter's violation counter is cumulative across runs; mirror it
  // rather than summing per-batch snapshots.
  totals_.timing_violations = r.timing_violations;
  for (const atm::Cell& c : r.responses)
    responses_.push_back(make_cell_message(cell_stream_, origin, c));
  pending_.clear();
}

void BoardBackend::finish(SimTime at) {
  run_pending();
  if (finish_hook_) finish_hook_(*this, at);
  now_ = std::max(now_, at);
}

void BoardBackend::drain_responses(std::vector<TimedMessage>& out) {
  out.insert(out.end(), std::make_move_iterator(responses_.begin()),
             std::make_move_iterator(responses_.end()));
  responses_.clear();
}

}  // namespace castanet::cosim

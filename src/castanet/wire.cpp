#include "src/castanet/wire.hpp"

#include <cstring>

#include "src/core/error.hpp"

namespace castanet::cosim::wire {

void Writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  // Canonicalize NaN payloads: any NaN becomes the quiet NaN, so encoding a
  // decoded frame (or two shards that both computed "empty") is byte-equal.
  if (v != v) bits = 0x7ff8000000000000ull;
  u64(bits);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

void Writer::bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

std::uint8_t Reader::u8() {
  if (remaining() < 1) throw ProtocolError("wire: truncated frame (u8)");
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  if (remaining() < 4) throw ProtocolError("wire: truncated frame (u32)");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t Reader::u64() {
  if (remaining() < 8) throw ProtocolError("wire: truncated frame (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (remaining() < n) throw ProtocolError("wire: truncated frame (str)");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void Reader::bytes(void* out, std::size_t len) {
  if (remaining() < len) throw ProtocolError("wire: truncated frame (bytes)");
  if (len) std::memcpy(out, data_ + pos_, len);
  pos_ += len;
}

namespace {

// Presence flags packed into the message's tag byte.
constexpr std::uint8_t kHasCell = 0x01;
constexpr std::uint8_t kTimeUpdateOnly = 0x02;

}  // namespace

void encode_message(Writer& w, const TimedMessage& m) {
  w.u32(m.type);
  w.i64(m.timestamp.ps());
  std::uint8_t tag = 0;
  if (m.cell) tag |= kHasCell;
  if (m.time_update_only) tag |= kTimeUpdateOnly;
  w.u8(tag);
  if (m.cell) {
    const atm::Cell& c = *m.cell;
    w.u8(c.header.gfc);
    w.u32(c.header.vpi);
    w.u32(c.header.vci);
    w.u8(c.header.pti);
    w.u8(c.header.clp ? 1 : 0);
    w.bytes(c.payload.data(), c.payload.size());
  }
  w.u32(static_cast<std::uint32_t>(m.words.size()));
  for (std::uint64_t word : m.words) w.u64(word);
}

std::vector<std::uint8_t> encode_message(const TimedMessage& m) {
  Writer w;
  encode_message(w, m);
  return w.take();
}

TimedMessage decode_message(Reader& r) {
  TimedMessage m;
  m.type = r.u32();
  m.timestamp = SimTime::from_ps(r.i64());
  const std::uint8_t tag = r.u8();
  if (tag & ~(kHasCell | kTimeUpdateOnly)) {
    throw ProtocolError("wire: unknown message tag bits");
  }
  m.time_update_only = (tag & kTimeUpdateOnly) != 0;
  if (tag & kHasCell) {
    atm::Cell c;
    c.header.gfc = r.u8();
    c.header.vpi = static_cast<std::uint16_t>(r.u32());
    c.header.vci = static_cast<std::uint16_t>(r.u32());
    c.header.pti = r.u8();
    c.header.clp = r.u8() != 0;
    r.bytes(c.payload.data(), c.payload.size());
    m.cell = c;
  }
  const std::uint32_t nwords = r.u32();
  m.words.reserve(nwords);
  for (std::uint32_t i = 0; i < nwords; ++i) m.words.push_back(r.u64());
  return m;
}

TimedMessage decode_message(const std::vector<std::uint8_t>& frame) {
  Reader r(frame);
  TimedMessage m = decode_message(r);
  if (!r.done()) throw ProtocolError("wire: trailing bytes after message");
  return m;
}

namespace {
constexpr std::uint8_t kSnapshotVersion = 1;
}  // namespace

void encode_snapshot(Writer& w, const telemetry::MetricsSnapshot& snap) {
  w.u8(kSnapshotVersion);
  w.u32(static_cast<std::uint32_t>(snap.rows.size()));
  for (const telemetry::MetricRow& r : snap.rows) {
    w.str(r.name);
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.u64(r.count);
    w.f64(r.sum);
    w.f64(r.min);
    w.f64(r.max);
    w.f64(r.last);
    if (r.kind == telemetry::MetricRow::Kind::kHistogram) {
      w.u64(r.hist.zero_count());
      const auto buckets = r.hist.nonzero_buckets();
      w.u32(static_cast<std::uint32_t>(buckets.size()));
      for (const auto& [i, c] : buckets) {
        w.u32(static_cast<std::uint32_t>(i));
        w.u64(c);
      }
    }
  }
  w.u64(snap.trace_events);
  w.u64(snap.trace_dropped);
}

std::vector<std::uint8_t> encode_snapshot(
    const telemetry::MetricsSnapshot& snap) {
  Writer w;
  encode_snapshot(w, snap);
  return w.take();
}

telemetry::MetricsSnapshot decode_snapshot(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version != kSnapshotVersion) {
    throw ProtocolError("wire: unknown snapshot frame version");
  }
  telemetry::MetricsSnapshot snap;
  const std::uint32_t nrows = r.u32();
  snap.rows.reserve(nrows);
  for (std::uint32_t i = 0; i < nrows; ++i) {
    telemetry::MetricRow row;
    row.name = r.str();
    const std::uint8_t kind = r.u8();
    if (kind >
        static_cast<std::uint8_t>(telemetry::MetricRow::Kind::kHistogram)) {
      throw ProtocolError("wire: unknown metric kind in snapshot frame");
    }
    row.kind = static_cast<telemetry::MetricRow::Kind>(kind);
    row.count = r.u64();
    row.sum = r.f64();
    row.min = r.f64();
    row.max = r.f64();
    row.last = r.f64();
    if (row.kind == telemetry::MetricRow::Kind::kHistogram) {
      const std::uint64_t zero = r.u64();
      const std::uint32_t nbuckets = r.u32();
      std::vector<std::pair<int, std::uint64_t>> buckets;
      buckets.reserve(nbuckets);
      for (std::uint32_t b = 0; b < nbuckets; ++b) {
        const std::uint32_t idx = r.u32();
        buckets.emplace_back(static_cast<int>(idx), r.u64());
      }
      row.hist = Log2Histogram::from_parts(row.count, row.sum, row.min,
                                           row.max, zero, buckets);
    }
    snap.rows.push_back(std::move(row));
  }
  snap.trace_events = r.u64();
  snap.trace_dropped = r.u64();
  return snap;
}

telemetry::MetricsSnapshot decode_snapshot(
    const std::vector<std::uint8_t>& frame) {
  Reader r(frame);
  telemetry::MetricsSnapshot snap = decode_snapshot(r);
  if (!r.done()) throw ProtocolError("wire: trailing bytes after snapshot");
  return snap;
}

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = seed;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

std::uint64_t content_hash(const TimedMessage& m) {
  std::uint64_t h = fnv1a(&m.type, sizeof m.type);
  const std::uint8_t has_cell = m.cell ? 1 : 0;
  h = fnv1a(&has_cell, 1, h);
  if (m.cell) {
    const atm::Cell& c = *m.cell;
    // Hash the decoded header fields, not a re-encoding: what the comparator
    // diffs on mismatch is these fields, so hash equality must mirror
    // diff_payload equality exactly.
    const std::uint8_t hdr[7] = {
        c.header.gfc,
        static_cast<std::uint8_t>(c.header.vpi),
        static_cast<std::uint8_t>(c.header.vpi >> 8),
        static_cast<std::uint8_t>(c.header.vci),
        static_cast<std::uint8_t>(c.header.vci >> 8),
        c.header.pti,
        static_cast<std::uint8_t>(c.header.clp ? 1 : 0),
    };
    h = fnv1a(hdr, sizeof hdr, h);
    h = fnv1a(c.payload.data(), c.payload.size(), h);
  }
  const std::uint64_t nwords = m.words.size();
  h = fnv1a(&nwords, sizeof nwords, h);
  if (!m.words.empty()) {
    h = fnv1a(m.words.data(), m.words.size() * sizeof(std::uint64_t), h);
  }
  return h;
}

}  // namespace castanet::cosim::wire

#include "src/castanet/coverify.hpp"

namespace castanet::cosim {

namespace {

VerificationSession::Params session_params(const CoVerification::Params& p) {
  VerificationSession::Params sp;
  sp.ipc_overhead_per_message = p.ipc_overhead_per_message;
  sp.response_latency = p.response_latency;
  sp.pipelined = p.pipelined;
  sp.channel_capacity = p.channel_capacity;
  sp.clock_announce_stride = p.clock_announce_stride;
  sp.max_clock_announce_stride = p.max_clock_announce_stride;
  sp.adaptive_stride = p.adaptive_stride;
  sp.fanout_batch_messages = p.fanout_batch_messages;
  sp.clock_period = p.sync.clock_period;
  return sp;
}

}  // namespace

CoVerification::CoVerification(netsim::Simulation& net, rtl::Simulator& hdl,
                               netsim::Node& node, unsigned streams,
                               Params params)
    : backend_("rtl", hdl, params.sync,
               MessageChannel::Params{params.ipc_overhead_per_message}),
      session_(net, node, streams, session_params(params)) {
  session_.attach(backend_);
}

CoVerification::Stats CoVerification::stats() const {
  const VerificationSession::Stats ss = session_.stats();
  Stats s;
  s.net_events = ss.net_events;
  s.messages_to_hdl = ss.messages_to_hdl;
  s.messages_to_net = backend_.response_channel().messages_sent();
  s.windows = ss.backends[0].windows;
  s.max_lag_seconds = ss.backends[0].max_lag_seconds;
  s.causality_errors = ss.backends[0].causality_errors;
  s.window_grant_stalls = ss.window_grant_stalls;
  s.max_channel_occupancy = ss.max_channel_occupancy;
  s.worker_batches = ss.backends[0].worker_batches;
  s.effective_stride = ss.effective_stride;
  s.max_effective_stride = ss.max_effective_stride;
  s.fanout_batches = ss.fanout_batches;
  s.fanout_messages = ss.fanout_messages;
  return s;
}

}  // namespace castanet::cosim

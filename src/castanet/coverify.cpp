#include "src/castanet/coverify.hpp"

#include "src/core/error.hpp"

namespace castanet::cosim {

CoVerification::CoVerification(netsim::Simulation& net, rtl::Simulator& hdl,
                               netsim::Node& node, unsigned streams,
                               Params params)
    : net_(net), hdl_(hdl),
      net_to_hdl_(MessageChannel::Params{params.ipc_overhead_per_message}),
      hdl_to_net_(MessageChannel::Params{params.ipc_overhead_per_message}),
      params_(params) {
  gateway_ = &node.add_process<GatewayProcess>("castanet_if", net_to_hdl_,
                                               streams);
  entity_ = std::make_unique<CosimEntity>(hdl, net_to_hdl_, hdl_to_net_,
                                          params.sync);
}

void CoVerification::pump_responses() {
  while (auto m = hdl_to_net_.receive()) {
    // A response computed at HDL time t re-enters the network model no
    // earlier than t (plus the configured latency) and never in the
    // network's past.
    SimTime when = m->timestamp + params_.response_latency;
    if (when < net_.now()) when = net_.now();
    net_.scheduler().schedule_at(when, [this, msg = std::move(*m)] {
      if (on_response_) {
        on_response_(msg);
        return;
      }
      if (msg.cell) {
        netsim::Packet p;
        p.set_id(net_.next_packet_id());
        p.set_creation_time(net_.now());
        p.set_cell(*msg.cell);
        gateway_->emit_response(msg.type, std::move(p));
      }
    });
  }
}

void CoVerification::catch_up_hdl(SimTime limit) {
  // Keep granting windows until the protocol stops making progress.  The
  // message-driven policies converge in one iteration; lockstep needs one
  // iteration per clock period.
  for (;;) {
    const SimTime w = entity_->window();
    const SimTime target = std::min(w - SimTime::from_ps(1), limit);
    if (target <= hdl_.now()) break;
    entity_->advance_hdl_to(target);
    pump_responses();
  }
}

void CoVerification::run_until(SimTime limit) {
  net_.start();
  while (true) {
    const SimTime next = net_.scheduler().next_event_time();
    if (next > limit) break;
    net_.scheduler().step();
    ++net_events_;

    // Announce the originator's clock, then let the HDL side catch up.
    entity_->pump();
    entity_->sync().push(make_time_update(net_.now()));
    catch_up_hdl(limit);
    pump_responses();
  }
  // Final catch-up: grant the HDL side the rest of the horizon.  Responses
  // scheduled back into the network may create new events, so iterate until
  // both sides are quiescent up to the limit.
  for (;;) {
    net_.scheduler().advance_to(
        std::min(limit, net_.scheduler().next_event_time()));
    entity_->pump();
    entity_->sync().push(make_time_update(limit));
    catch_up_hdl(limit);
    pump_responses();
    if (net_.scheduler().next_event_time() > limit) break;
    net_.run_until(limit);
  }
}

CoVerification::Stats CoVerification::stats() const {
  Stats s;
  s.net_events = net_events_;
  s.messages_to_hdl = net_to_hdl_.messages_sent();
  s.messages_to_net = hdl_to_net_.messages_sent();
  s.windows = entity_->sync().windows_granted();
  s.max_lag_seconds = entity_->sync().max_lag_seconds();
  s.causality_errors = entity_->sync().causality_errors();
  return s;
}

}  // namespace castanet::cosim

#include "src/castanet/coverify.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "src/core/error.hpp"

namespace castanet::cosim {

CoVerification::CoVerification(netsim::Simulation& net, rtl::Simulator& hdl,
                               netsim::Node& node, unsigned streams,
                               Params params)
    : net_(net), hdl_(hdl),
      net_to_hdl_(MessageChannel::Params{params.ipc_overhead_per_message}),
      hdl_to_net_(MessageChannel::Params{params.ipc_overhead_per_message}),
      params_(params) {
  gateway_ = &node.add_process<GatewayProcess>("castanet_if", net_to_hdl_,
                                               streams);
  entity_ = std::make_unique<CosimEntity>(hdl, net_to_hdl_, hdl_to_net_,
                                          params.sync);
}

CoVerification::~CoVerification() {
  // run_until always joins before returning, so a live worker here means an
  // unwind tore through the orchestrator; make sure the thread cannot
  // outlive the members it touches.
  if (worker_.joinable()) {
    if (cmd_chan_) cmd_chan_->close();
    if (resp_chan_) resp_chan_->close();
    worker_.join();
  }
}

void CoVerification::schedule_response(TimedMessage m) {
  // A response computed at HDL time t re-enters the network model no
  // earlier than t (plus the configured latency) and never in the
  // network's past.
  SimTime when = m.timestamp + params_.response_latency;
  if (when < net_.now()) when = net_.now();
  net_.scheduler().schedule_at(when, [this, msg = std::move(m)] {
    if (on_response_) {
      on_response_(msg);
      return;
    }
    if (msg.cell) {
      netsim::Packet p;
      p.set_id(net_.next_packet_id());
      p.set_creation_time(net_.now());
      p.set_cell(*msg.cell);
      gateway_->emit_response(msg.type, std::move(p));
    }
  });
}

void CoVerification::pump_responses() {
  while (auto m = hdl_to_net_.receive()) schedule_response(std::move(*m));
}

void CoVerification::catch_up_hdl(SimTime limit) {
  // Keep granting windows until the protocol stops making progress.  The
  // message-driven policies converge in one iteration; lockstep needs one
  // iteration per clock period.
  for (;;) {
    const SimTime w = entity_->window();
    const SimTime target = std::min(w - SimTime::from_ps(1), limit);
    if (target <= hdl_.now()) break;
    entity_->advance_hdl_to(target);
    pump_responses();
  }
}

void CoVerification::run_until(SimTime limit) {
  if (params_.pipelined) {
    run_until_pipelined(limit);
  } else {
    run_until_serial(limit);
  }
}

void CoVerification::run_until_serial(SimTime limit) {
  net_.start();
  while (true) {
    const SimTime next = net_.scheduler().next_event_time();
    if (next > limit) break;
    net_.scheduler().step();
    ++net_events_;

    // Announce the originator's clock, then let the HDL side catch up.
    entity_->pump();
    entity_->sync().push(make_time_update(net_.now()));
    catch_up_hdl(limit);
    pump_responses();
  }
  // Final catch-up: grant the HDL side the rest of the horizon.  Responses
  // scheduled back into the network may create new events, so iterate until
  // both sides are quiescent up to the limit.
  for (;;) {
    net_.scheduler().advance_to(
        std::min(limit, net_.scheduler().next_event_time()));
    entity_->pump();
    entity_->sync().push(make_time_update(limit));
    catch_up_hdl(limit);
    pump_responses();
    if (net_.scheduler().next_event_time() > limit) break;
    net_.run_until(limit);
  }
}

// ---------------------------------------------------------------------------
// Pipelined mode.
//
// The grant stream the worker sees is the same stream of (messages, time
// update) pairs the serial loop would feed the protocol, in the same order —
// so for a given DUT input stream the HDL side computes bit-identical
// behavior.  Coalescing consecutive grants into one catch-up is safe because
// windows are monotone and deliverable messages still apply at their own
// time stamps; it only merges catch-up iterations, it never reorders or
// drops protocol input.  Responses re-enter the network later than in serial
// mode (clamped to the network's run-ahead now()), so the input stream
// itself is only guaranteed unchanged in feed-forward topologies — see the
// determinism caveat in coverify.hpp.

void CoVerification::start_worker() {
  cmd_chan_ =
      std::make_unique<SpscChannel<WorkerCmd>>(params_.channel_capacity);
  resp_chan_ =
      std::make_unique<SpscChannel<TimedMessage>>(params_.channel_capacity);
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    cmds_sent_ = 0;
    cmds_done_ = 0;
    worker_dead_ = false;
    worker_exited_ = false;
    worker_error_ = nullptr;
  }
  worker_ = std::thread([this] { worker_main(); });
}

void CoVerification::worker_main() {
  try {
    // Coalesce grants into large catch-up batches — this is where the
    // pipeline wins: one window computation and one kernel run per batch
    // instead of per net event.  The hysteresis in receive_some keeps this
    // thread parked until a real backlog exists, so on a shared core the
    // network side gets long uninterrupted runs between batches.
    // Cap the hint well below the channel capacity: letting thousands of
    // commands pile up in the deque before draining streams hundreds of KB
    // through the cache and evicts the kernel's working set, which costs
    // more than the extra wake-ups save.
    const std::size_t backlog_hint = std::min<std::size_t>(
        std::size_t{64},
        std::max<std::size_t>(std::size_t{1}, params_.channel_capacity / 4));
    // Per-advance grant chunk.  Coalescing amortizes window computation and
    // wake-ups, but an unbounded chunk pre-schedules so many far-future
    // deliverables that the kernel's working set falls out of cache; a
    // moderate chunk keeps both effects in check (16 measured best on
    // E1-B; override with CASTANET_COSIM_CHUNK to re-tune).
    std::size_t chunk = 16;
    if (const char* env = std::getenv("CASTANET_COSIM_CHUNK")) {
      chunk = std::strtoull(env, nullptr, 10);
      if (chunk == 0) chunk = 1;
    }
    std::vector<WorkerCmd> cmds;
    for (;;) {
      // Park until a real backlog exists; flush_worker() nudges us awake
      // when the producer has nothing further to send, so the long timeout
      // is only a fallback and the idle worker does not preempt the
      // network thread at a polling cadence.
      if (!cmd_chan_->receive_some(cmds, backlog_hint,
                                   std::chrono::milliseconds(10))) {
        break;
      }
      if (cmds.empty()) continue;  // timed out waiting for a backlog
      for (std::size_t i = 0; i < cmds.size(); i += chunk) {
        const std::size_t end = std::min(cmds.size(), i + chunk);
        SimTime horizon = SimTime::zero();
        for (std::size_t c = i; c < end; ++c) {
          for (TimedMessage& m : cmds[c].msgs) entity_->sync().push(m);
          horizon = std::max(horizon, cmds[c].limit);
        }
        // One clock update per chunk: net_now is monotone in send order, so
        // the last command's clock subsumes the earlier ones (the messages
        // carry their own time stamps and are unaffected).
        entity_->sync().push(make_time_update(cmds[end - 1].net_now));
        worker_catch_up(horizon);
        worker_batches_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t done =
            cmds_done_.fetch_add(end - i, std::memory_order_release) +
            (end - i);
        // Only wake the flushing thread when everything it sent has run;
        // mid-run notifications would preempt this thread once per chunk.
        // The empty lock/unlock pairs the counter update with a flusher
        // that has checked the predicate but not yet parked on done_cv_.
        if (done >= cmds_sent_.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(done_mu_); }
          done_cv_.notify_one();
        }
      }
      cmds.clear();
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      worker_error_ = std::current_exception();
      worker_dead_ = true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    worker_exited_ = true;
  }
  done_cv_.notify_all();
}

void CoVerification::worker_catch_up(SimTime limit) {
  // Same convergence loop as catch_up_hdl, but DUT responses are forwarded
  // over the SPSC channel for the network-side thread to schedule.  The
  // responses of one advance are shipped as a batch: one lock acquisition
  // instead of one per message.
  std::vector<TimedMessage> out;
  for (;;) {
    const SimTime w = entity_->window();
    const SimTime target = std::min(w - SimTime::from_ps(1), limit);
    if (target <= hdl_.now()) break;
    entity_->advance_hdl_to(target);
    while (auto m = hdl_to_net_.receive()) out.push_back(std::move(*m));
    if (!out.empty()) {
      const std::size_t n = out.size();
      if (resp_chan_->send_all(out) < n) return;  // closed: shutting down
    }
  }
}

void CoVerification::send_command(WorkerCmd cmd) {
  while (!cmd_chan_->try_send(cmd)) {
    // Full channel: the HDL side is the bottleneck right now.  Drain
    // responses while stalled so the worker can never deadlock blocked on a
    // full response channel while we block on a full command channel.
    ++window_grant_stalls_;
    drain_worker_responses();
    cmd_chan_->wait_space();
    if (worker_dead_.load(std::memory_order_acquire))
      return;  // error is rethrown by shutdown_worker()
  }
  cmds_sent_.fetch_add(1, std::memory_order_release);
}

void CoVerification::drain_worker_responses() {
  // Batch drain: one lock acquisition for everything queued (and none at
  // all while the channel is empty, which is the common case for the
  // per-event poll in the net loop).
  resp_scratch_.clear();
  if (resp_chan_->try_receive_all(resp_scratch_) == 0) return;
  for (TimedMessage& m : resp_scratch_) schedule_response(std::move(m));
  resp_scratch_.clear();
}

void CoVerification::flush_worker() {
  // The worker notifies done_cv_ once everything sent has executed, so the
  // wait is notification-driven; the timeout is only a fallback that lets
  // us drain the response channel if the worker ever blocks on it full.
  // Keep it long: every spurious wake-up here preempts the worker on a
  // shared core and evicts part of its working set.
  cmd_chan_->nudge();  // the backlog may be below the worker's wake threshold
  for (;;) {
    drain_worker_responses();
    std::unique_lock<std::mutex> lk(done_mu_);
    if (worker_dead_.load(std::memory_order_acquire) ||
        cmds_done_.load(std::memory_order_acquire) >=
            cmds_sent_.load(std::memory_order_acquire))
      break;
    done_cv_.wait_for(lk, std::chrono::milliseconds(20));
  }
  // The last batch may have produced responses after our final drain above.
  drain_worker_responses();
}

void CoVerification::shutdown_worker() {
  cmd_chan_->close();
  // Keep draining responses until the worker returns, so it cannot sit
  // blocked on a full response channel while we wait to join.
  for (;;) {
    drain_worker_responses();
    std::unique_lock<std::mutex> lk(done_mu_);
    if (worker_exited_) break;
    done_cv_.wait_for(lk, std::chrono::milliseconds(5));
  }
  resp_chan_->close();
  worker_.join();
  drain_worker_responses();
  max_channel_occupancy_ = std::max(
      {max_channel_occupancy_,
       static_cast<std::uint64_t>(cmd_chan_->max_occupancy()),
       static_cast<std::uint64_t>(resp_chan_->max_occupancy())});
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    err = worker_error_;
    worker_error_ = nullptr;
  }
  cmd_chan_.reset();
  resp_chan_.reset();
  if (err) std::rethrow_exception(err);
}

void CoVerification::run_until_pipelined(SimTime limit) {
  net_.start();
  start_worker();
  SimTime announced = SimTime::zero();
  try {
    while (true) {
      const SimTime next = net_.scheduler().next_event_time();
      if (next > limit) break;
      net_.scheduler().step();
      ++net_events_;

      // Same protocol input the serial loop would push — gateway output
      // first, then the originator's clock — shipped as one grant.  The
      // network side immediately moves on to its next event.  Pure clock
      // announcements that advanced less than clock_announce_stride HDL
      // clock periods since the last grant are elided: they only refine
      // the catch-up granularity (message-carrying grants and the final
      // horizon grant carry net time themselves), so shipping each tiny
      // step is channel overhead with no protocol effect.
      WorkerCmd cmd;
      while (auto m = net_to_hdl_.receive()) cmd.msgs.push_back(std::move(*m));
      cmd.net_now = net_.now();
      cmd.limit = limit;
      if (!cmd.msgs.empty() ||
          cmd.net_now - announced >=
              params_.sync.clock_period *
                  std::max<std::uint32_t>(1, params_.clock_announce_stride)) {
        announced = cmd.net_now;
        send_command(std::move(cmd));
      }
      drain_worker_responses();
      if (worker_dead_.load(std::memory_order_acquire)) break;
    }
    // Final catch-up, mirroring the serial epilogue: grant the rest of the
    // horizon, wait for the worker to finish it, and iterate because
    // responses re-entering the network can create new events below the
    // limit.
    for (;;) {
      net_.scheduler().advance_to(
          std::min(limit, net_.scheduler().next_event_time()));
      WorkerCmd cmd;
      while (auto m = net_to_hdl_.receive()) cmd.msgs.push_back(std::move(*m));
      cmd.net_now = limit;
      cmd.limit = limit;
      send_command(std::move(cmd));
      flush_worker();
      if (worker_dead_.load(std::memory_order_acquire)) break;
      if (net_.scheduler().next_event_time() > limit) break;
      net_.run_until(limit);
    }
  } catch (...) {
    try {
      shutdown_worker();
    } catch (...) {
      // Prefer the original exception over a secondary worker failure.
    }
    throw;
  }
  shutdown_worker();
}

CoVerification::Stats CoVerification::stats() const {
  // Only meaningful between run_until calls; the join in shutdown_worker()
  // orders every worker-side write before this read.
  Stats s;
  s.net_events = net_events_;
  s.messages_to_hdl = net_to_hdl_.messages_sent();
  s.messages_to_net = hdl_to_net_.messages_sent();
  s.windows = entity_->sync().windows_granted();
  s.max_lag_seconds = entity_->sync().max_lag_seconds();
  s.causality_errors = entity_->sync().causality_errors();
  s.window_grant_stalls = window_grant_stalls_;
  s.max_channel_occupancy = max_channel_occupancy_;
  s.worker_batches = worker_batches_;
  return s;
}

}  // namespace castanet::cosim

#include "src/castanet/farm.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/castanet/wire.hpp"
#include "src/core/error.hpp"

namespace castanet::cosim::farm {

namespace {

// Pool protocol opcodes (first byte of every frame).
constexpr std::uint8_t kJob = 1;   // parent -> worker: u32 item index
constexpr std::uint8_t kExit = 2;  // parent -> worker: done, exit cleanly
constexpr std::uint8_t kOk = 3;    // worker -> parent: u32 item, result bytes
constexpr std::uint8_t kFail = 4;  // worker -> parent: u32 item, str detail
constexpr std::uint8_t kBeat = 5;  // worker -> parent: u32 item, f64 progress

constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

// Worker-side heartbeat plumbing: worker_loop points these at its pipe and
// in-flight item for the duration of each run() call, so instrumented
// runners can ship progress without threading a handle through every layer.
// Single-threaded by construction (fork_map requires a single-threaded
// parent; the worker loop never spawns threads).
transport::FramePipe* g_beat_pipe = nullptr;
std::uint32_t g_beat_item = 0;

struct WorkerProc {
  pid_t pid = -1;
  std::unique_ptr<transport::FramePipe> pipe;
  int fd = -1;
  std::size_t item = kNoItem;  ///< in-flight item, kNoItem when idle
  bool alive = false;
};

/// Child-side service loop: execute jobs until kExit (or a vanished
/// parent).  Never returns — the child must not fall back into the
/// parent's code path (destructors, atexit, test harness teardown).
[[noreturn]] void worker_loop(
    transport::FramePipe& pipe, int worker,
    const std::function<std::vector<std::uint8_t>(std::size_t, int)>& run) {
  std::vector<std::uint8_t> frame;
  for (;;) {
    if (pipe.recv_frame(frame, -1) != transport::RecvStatus::kFrame) {
      std::_Exit(1);  // parent vanished
    }
    wire::Reader r(frame);
    const std::uint8_t op = r.u8();
    if (op == kExit) std::_Exit(0);
    if (op != kJob) std::_Exit(2);
    const std::uint32_t item = r.u32();
    wire::Writer w;
    try {
      g_beat_pipe = &pipe;
      g_beat_item = item;
      const std::vector<std::uint8_t> bytes =
          run(static_cast<std::size_t>(item), worker);
      g_beat_pipe = nullptr;
      w.u8(kOk);
      w.u32(item);
      w.bytes(bytes.data(), bytes.size());
    } catch (const std::exception& e) {
      g_beat_pipe = nullptr;
      w = wire::Writer();
      w.u8(kFail);
      w.u32(item);
      w.str(e.what());
    } catch (...) {
      g_beat_pipe = nullptr;
      w = wire::Writer();
      w.u8(kFail);
      w.u32(item);
      w.str("unknown exception");
    }
    if (!pipe.send_frame(w.data())) std::_Exit(1);
  }
}

}  // namespace

bool worker_heartbeat(double value) {
  if (g_beat_pipe == nullptr) return false;
  wire::Writer w;
  w.u8(kBeat);
  w.u32(g_beat_item);
  w.f64(value);
  return g_beat_pipe->send_frame(w.data());
}

PoolStats fork_map(
    std::size_t n, int jobs,
    const std::function<std::vector<std::uint8_t>(std::size_t, int)>& run,
    const std::function<void(std::size_t, const std::vector<std::uint8_t>&)>&
        on_result,
    const std::function<void(std::size_t, const std::string&)>& on_failed,
    const std::function<void(std::size_t, int, double)>& on_beat) {
  PoolStats stats;
  if (n == 0) return stats;
  const int workers = static_cast<int>(
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   n, static_cast<std::size_t>(
                                          std::max(1, jobs)))));
  std::vector<WorkerProc> procs(static_cast<std::size_t>(workers));

  for (int w = 0; w < workers; ++w) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw IoError(std::string("farm: socketpair failed: ") +
                    std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      break;  // run with the workers we have
    }
    if (pid == 0) {
      // Child: raw-close every parent-side fd (ours and the siblings').
      // Plain close, never shutdown(): these sockets stay live between the
      // parent and the siblings, and shutdown() would sever them globally.
      ::close(fds[0]);
      for (const WorkerProc& sibling : procs) {
        if (sibling.fd >= 0) ::close(sibling.fd);
      }
      auto pipe = transport::wrap_socket(fds[1]);
      worker_loop(*pipe, w, run);  // never returns
    }
    ::close(fds[1]);
    WorkerProc& p = procs[static_cast<std::size_t>(w)];
    p.pid = pid;
    p.pipe = transport::wrap_socket(fds[0]);
    p.fd = fds[0];
    p.alive = true;
    ++stats.workers_spawned;
  }
  if (stats.workers_spawned == 0) {
    throw IoError("farm: could not fork any worker");
  }

  std::size_t next = 0;
  std::size_t done = 0;

  const auto retire = [&](WorkerProc& p) {
    // No more work for this worker: ask it to exit and stop polling it.
    wire::Writer w;
    w.u8(kExit);
    p.pipe->send_frame(w.data());
    p.alive = false;
  };
  const auto assign = [&](WorkerProc& p) {
    if (next >= n) {
      retire(p);
      return;
    }
    wire::Writer w;
    w.u8(kJob);
    w.u32(static_cast<std::uint32_t>(next));
    if (p.pipe->send_frame(w.data())) {
      p.item = next++;
    }
    // A failed send means the worker died; the poll loop will see the EOF
    // and handle the (unassigned) state.
  };
  const auto worker_died = [&](WorkerProc& p) {
    p.alive = false;
    ++stats.workers_failed;
    int status = 0;
    ::waitpid(p.pid, &status, 0);
    p.pid = -1;
    if (p.item != kNoItem) {
      on_failed(p.item, "worker process died mid-session");
      p.item = kNoItem;
      ++done;
    }
  };

  for (WorkerProc& p : procs) {
    if (p.alive) assign(p);
  }

  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> pidx;
  std::vector<std::uint8_t> frame;
  while (done < n) {
    pfds.clear();
    pidx.clear();
    for (std::size_t i = 0; i < procs.size(); ++i) {
      if (!procs[i].alive) continue;
      pfds.push_back({procs[i].fd, POLLIN, 0});
      pidx.push_back(i);
    }
    if (pfds.empty()) {
      // Every worker is gone; fail whatever never got dispatched.
      for (; next < n; ++next, ++done) {
        on_failed(next, "no surviving farm workers");
      }
      break;
    }
    const int pr = ::poll(pfds.data(), pfds.size(), 1000);
    if (pr < 0 && errno != EINTR) {
      throw IoError(std::string("farm: poll failed: ") + std::strerror(errno));
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents == 0) continue;
      WorkerProc& p = procs[pidx[k]];
      // Drain EVERY buffered frame, not just one: a single POLLIN wakeup can
      // carry several frames (heartbeats followed by the result), and
      // whatever the pipe's reassembly buffer holds beyond the first frame
      // is invisible to the top-level poll().
      while (p.alive) {
        const transport::RecvStatus st = p.pipe->recv_frame(frame, 0);
        if (st == transport::RecvStatus::kTimeout) break;  // drained
        if (st == transport::RecvStatus::kClosed) {
          worker_died(p);
          break;
        }
        wire::Reader r(frame);
        const std::uint8_t op = r.u8();
        const std::size_t item = r.u32();
        if (op == kBeat) {
          // Progress frame: liveness, not completion — the item stays in
          // flight and the worker keeps running.
          const double value = r.f64();
          if (on_beat) on_beat(item, static_cast<int>(pidx[k]), value);
          continue;
        }
        if (op == kOk) {
          std::vector<std::uint8_t> bytes(r.remaining());
          r.bytes(bytes.data(), bytes.size());
          on_result(item, bytes);
        } else if (op == kFail) {
          on_failed(item, r.str());
        } else {
          worker_died(p);
          break;
        }
        ++done;
        p.item = kNoItem;
        assign(p);  // may retire the worker (alive = false ends the drain)
      }
    }
  }

  for (WorkerProc& p : procs) {
    if (p.alive) retire(p);
  }
  for (WorkerProc& p : procs) {
    if (p.pid > 0) {
      int status = 0;
      ::waitpid(p.pid, &status, 0);
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Session farm on top of fork_map.

namespace {

std::vector<std::uint8_t> encode_result(const SessionResult& r) {
  wire::Writer w;
  w.str(r.id);
  w.u8(r.ok ? 1 : 0);
  w.str(r.error);
  w.u64(r.responses);
  w.u64(r.divergences);
  w.u64(r.digest);
  w.u64(static_cast<std::uint64_t>(r.wall_seconds * 1e9));
  w.str(r.detail);
  w.u8(r.has_metrics ? 1 : 0);
  if (r.has_metrics) wire::encode_snapshot(w, r.metrics);
  return w.take();
}

SessionResult decode_result(const std::vector<std::uint8_t>& bytes) {
  wire::Reader r(bytes);
  SessionResult out;
  out.id = r.str();
  out.ok = r.u8() != 0;
  out.error = r.str();
  out.responses = r.u64();
  out.divergences = r.u64();
  out.digest = r.u64();
  out.wall_seconds = static_cast<double>(r.u64()) * 1e-9;
  out.detail = r.str();
  out.has_metrics = r.u8() != 0;
  if (out.has_metrics) out.metrics = wire::decode_snapshot(r);
  return out;
}

/// Rewrites the spec's per-session output paths (trace_out, metrics_out) so
/// concurrent sessions never share a file (the satellite fix for
/// --trace-out collisions, extended to the metrics exports).
SessionSpec retag_traces(const SessionSpec& spec, int worker) {
  SessionSpec out = spec;
  for (const char* key : {"trace_out", "metrics_out"}) {
    if (const json::Value* t = out.params.find(key);
        t != nullptr && t->is_string()) {
      out.params.set(key, tagged_path(t->as_string(), worker, out.id));
    }
  }
  return out;
}

SessionResult run_one(const SessionSpec& spec, const SessionRunner& runner) {
  const auto t0 = std::chrono::steady_clock::now();
  SessionResult r;
  try {
    r = runner(spec);
    if (!r.error.empty()) r.ok = false;
  } catch (const std::exception& e) {
    r = SessionResult{};
    r.ok = false;
    r.error = e.what();
  }
  r.id = spec.id;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace

bool FarmReport::all_ok() const {
  for (const SessionResult& r : results) {
    if (!r.ok) return false;
  }
  return !results.empty();
}

json::Value FarmReport::to_json() const {
  json::Value v{json::Object{}};
  v.set("jobs", static_cast<std::int64_t>(jobs));
  v.set("workers_spawned", static_cast<std::int64_t>(workers_spawned));
  v.set("workers_failed", static_cast<std::int64_t>(workers_failed));
  v.set("wall_seconds", wall_seconds);
  v.set("all_ok", all_ok());
  json::Value sessions{json::Array{}};
  for (const SessionResult& r : results) {
    json::Value s{json::Object{}};
    s.set("id", r.id);
    s.set("ok", r.ok);
    if (!r.error.empty()) s.set("error", r.error);
    s.set("responses", static_cast<std::int64_t>(r.responses));
    s.set("divergences", static_cast<std::int64_t>(r.divergences));
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.digest));
    s.set("digest", std::string(digest));
    s.set("wall_seconds", r.wall_seconds);
    if (!r.detail.empty()) s.set("detail", r.detail);
    sessions.push_back(std::move(s));
  }
  v.set("sessions", std::move(sessions));
  if (sessions_with_metrics > 0) {
    v.set("sessions_with_metrics",
          static_cast<std::int64_t>(sessions_with_metrics));
    v.set("heartbeats", static_cast<std::int64_t>(heartbeats));
    v.set("metrics", metrics.to_json_value());
  }
  return v;
}

namespace {

/// Folds each session's shipped snapshot into the report-level merge.
void merge_session_metrics(FarmReport& rep) {
  for (const SessionResult& r : rep.results) {
    if (!r.has_metrics) continue;
    rep.metrics.merge_from(r.metrics);
    ++rep.sessions_with_metrics;
  }
}

}  // namespace

FarmReport run_serial(const std::vector<SessionSpec>& specs,
                      const SessionRunner& runner) {
  FarmReport rep;
  rep.jobs = 0;
  const auto t0 = std::chrono::steady_clock::now();
  rep.results.reserve(specs.size());
  for (const SessionSpec& spec : specs) {
    rep.results.push_back(run_one(retag_traces(spec, -1), runner));
  }
  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  merge_session_metrics(rep);
  return rep;
}

FarmReport run_farm(const std::vector<SessionSpec>& specs,
                    const SessionRunner& runner, const FarmParams& params) {
  FarmReport rep;
  rep.jobs = std::max(1, params.jobs);
  rep.results.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    rep.results[i].id = specs[i].id;  // placeholder until a result lands
    rep.results[i].error = "never dispatched";
  }
  const auto t0 = std::chrono::steady_clock::now();
  const PoolStats stats = fork_map(
      specs.size(), rep.jobs,
      [&](std::size_t item, int worker) {
        return encode_result(
            run_one(retag_traces(specs[item], worker), runner));
      },
      [&](std::size_t item, const std::vector<std::uint8_t>& bytes) {
        rep.results[item] = decode_result(bytes);
      },
      [&](std::size_t item, const std::string& detail) {
        rep.results[item] = SessionResult{};
        rep.results[item].id = specs[item].id;
        rep.results[item].ok = false;
        rep.results[item].error = detail;
      },
      [&](std::size_t /*item*/, int /*worker*/, double /*value*/) {
        ++rep.heartbeats;
      });
  rep.workers_spawned = stats.workers_spawned;
  rep.workers_failed = stats.workers_failed;
  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  merge_session_metrics(rep);
  return rep;
}

// ---------------------------------------------------------------------------
// Experiment files.

namespace {

/// `over` wins; both must be objects (or null for absent).
json::Value merge_objects(const json::Value* base, const json::Value& over) {
  json::Value out{json::Object{}};
  if (base != nullptr && base->is_object()) {
    for (const auto& [k, v] : base->as_object()) out.set(k, v);
  }
  if (over.is_object()) {
    for (const auto& [k, v] : over.as_object()) out.set(k, v);
  }
  return out;
}

std::string default_id(const std::string& scenario, std::size_t index,
                       const json::Value& merged) {
  std::string id = scenario + "-" + std::to_string(index);
  if (const json::Value* seed = merged.find("seed");
      seed != nullptr && seed->is_number()) {
    id += "-s" + std::to_string(seed->as_int());
  }
  if (merged.string_or("transport", "in-process") == "socket") id += "-sock";
  return id;
}

SessionSpec make_spec(const json::Value& doc, json::Value merged,
                      std::size_t index) {
  SessionSpec spec;
  spec.scenario = merged.string_or("scenario", doc.string_or("scenario", ""));
  if (spec.scenario.empty()) {
    throw ConfigError("experiment: session " + std::to_string(index) +
                      " has no scenario (set it per-session or at top level)");
  }
  merged.set("scenario", spec.scenario);
  spec.seed = static_cast<std::uint64_t>(merged.int_or("seed", 1));
  spec.transport = transport_kind_from_string(
      merged.string_or("transport", "in-process"));
  spec.id = merged.string_or("id", default_id(spec.scenario, index, merged));
  spec.params = std::move(merged);
  return spec;
}

}  // namespace

std::vector<SessionSpec> load_experiment(const json::Value& doc) {
  if (!doc.is_object()) throw ConfigError("experiment: document not an object");
  const json::Value* defaults = doc.find("defaults");
  if (defaults != nullptr && !defaults->is_object()) {
    throw ConfigError("experiment: 'defaults' must be an object");
  }

  // Matrix expansion: cartesian product over the arrays, insertion order.
  std::vector<json::Value> points;
  if (const json::Value* matrix = doc.find("matrix")) {
    if (!matrix->is_object()) {
      throw ConfigError("experiment: 'matrix' must be an object of arrays");
    }
    points.emplace_back(json::Object{});
    for (const auto& [axis, values] : matrix->as_object()) {
      if (!values.is_array() || values.as_array().empty()) {
        throw ConfigError("experiment: matrix axis '" + axis +
                          "' must be a non-empty array");
      }
      std::vector<json::Value> expanded;
      expanded.reserve(points.size() * values.as_array().size());
      for (const json::Value& p : points) {
        for (const json::Value& v : values.as_array()) {
          json::Value q = p;
          q.set(axis, v);
          expanded.push_back(std::move(q));
        }
      }
      points = std::move(expanded);
    }
  }

  std::vector<SessionSpec> specs;
  for (const json::Value& point : points) {
    specs.push_back(
        make_spec(doc, merge_objects(defaults, point), specs.size()));
  }
  if (const json::Value* sessions = doc.find("sessions")) {
    if (!sessions->is_array()) {
      throw ConfigError("experiment: 'sessions' must be an array");
    }
    for (const json::Value& s : sessions->as_array()) {
      specs.push_back(make_spec(doc, merge_objects(defaults, s), specs.size()));
    }
  }
  if (specs.empty() && defaults != nullptr) {
    specs.push_back(make_spec(doc, merge_objects(defaults, json::Value{}),
                              0));
  }
  if (specs.empty()) {
    throw ConfigError("experiment: no sessions (need 'matrix' or 'sessions')");
  }
  return specs;
}

std::vector<SessionSpec> load_experiment_file(const std::string& path) {
  return load_experiment(json::parse_file(path));
}

std::string tagged_path(const std::string& path, int worker,
                        const std::string& session_id) {
  std::string safe;
  safe.reserve(session_id.size());
  for (char c : session_id) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '-' || c == '_';
    safe += ok ? c : '_';
  }
  std::string tag = "." + safe;
  if (worker >= 0) tag += ".w" + std::to_string(worker);
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + tag;
  }
  return path.substr(0, dot) + tag + path.substr(dot);
}

}  // namespace castanet::cosim::farm

// Framed binary serialization of the co-simulation protocol.
//
// The paper's simulators exchange time-stamped messages over UNIX IPC; a
// process boundary needs a wire format.  This one is deliberately boring:
// little-endian fixed-width integers, length-prefixed repeated fields, one
// tag byte per optional field — and CANONICAL: encoding a decoded message
// reproduces the original bytes exactly, which is what lets the transport
// conformance suite assert byte-identical results across in-process and
// socket transports, and what makes the farm's result digests meaningful.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/castanet/message.hpp"
#include "src/core/telemetry.hpp"

namespace castanet::cosim::wire {

/// Append-only little-endian encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern, little-endian; every NaN encodes as the one
  /// canonical quiet NaN so re-encoding a decoded frame is byte-identical.
  void f64(double v);
  void str(const std::string& s);
  void bytes(const void* data, std::size_t len);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked decoder; throws ProtocolError on truncated input.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit Reader(const std::vector<std::uint8_t>& frame)
      : Reader(frame.data(), frame.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  void bytes(void* out, std::size_t len);

  std::size_t remaining() const { return len_ - pos_; }
  bool done() const { return pos_ == len_; }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Serializes one TimedMessage (cell payloads as the 53-octet I.361 encoding
/// minus HEC recomputation: header fields + raw payload, so U/X-free and
/// canonical).
void encode_message(Writer& w, const TimedMessage& m);
std::vector<std::uint8_t> encode_message(const TimedMessage& m);
TimedMessage decode_message(Reader& r);
TimedMessage decode_message(const std::vector<std::uint8_t>& frame);

/// Serializes one telemetry snapshot (the farm workers ship their final Hub
/// state to the parent through this).  Versioned frame; canonical like the
/// message encoding (sorted rows in, sorted rows out; NaN normalized), so
/// digests of snapshot frames are meaningful too.
void encode_snapshot(Writer& w, const telemetry::MetricsSnapshot& snap);
std::vector<std::uint8_t> encode_snapshot(
    const telemetry::MetricsSnapshot& snap);
telemetry::MetricsSnapshot decode_snapshot(Reader& r);
telemetry::MetricsSnapshot decode_snapshot(
    const std::vector<std::uint8_t>& frame);

/// FNV-1a 64-bit over `data` — the content digest used by the session
/// comparator's enqueue-time hashing and the farm's result digests.
std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t seed = 0xcbf29ce484222325ull);
/// Digest of a message's CONTENT (type + payload, time stamp excluded —
/// backends legitimately run on different clocks; see SessionComparator).
std::uint64_t content_hash(const TimedMessage& m);

}  // namespace castanet::cosim::wire

// Regression test-bench management.
//
// The paper's opening problem statement: "Common approaches … are based on
// the creation of regression test benches to perform verification of timing
// and functionality by simulation.  The time needed to develop test benches
// … has proven to be a significant bottleneck (up to 50% of the design
// time)."  CASTANET's answer is reuse; this module makes the reuse
// concrete: a RegressionSuite is a set of named cases, each a recorded cell
// trace plus golden expectations (output cells and/or named counters),
// persisted to a directory, re-runnable against any device binding — the
// co-simulated RTL, the reference model, or the board — with one report.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/castanet/comparator.hpp"
#include "src/traffic/trace.hpp"

namespace castanet::cosim {

/// One regression case: stimulus + golden expectations.
struct RegressionCase {
  std::string name;
  traffic::CellTrace stimulus;
  /// Golden output cells (empty when the DUT produces none, e.g. a pure
  /// observer like the accounting unit).
  traffic::CellTrace golden_output;
  /// Golden named counters (e.g. "count0", "charge0").
  std::map<std::string, std::uint64_t> golden_counters;
};

/// What one device-under-test run produced for a case.
struct CaseResult {
  std::vector<atm::Cell> output;
  std::map<std::string, std::uint64_t> counters;
};

/// Verdict of one case.
struct CaseReport {
  std::string name;
  bool passed = false;
  std::size_t mismatches = 0;
  std::string detail;
};

class RegressionSuite {
 public:
  void add_case(RegressionCase c);
  std::size_t size() const { return cases_.size(); }
  const RegressionCase& at(std::size_t i) const { return cases_.at(i); }

  /// A device binding runs one case's stimulus and returns what the DUT
  /// produced.  The binding owns simulator setup/teardown per case, so
  /// every case starts from reset — the regression property.
  using DeviceBinding = std::function<CaseResult(const RegressionCase&)>;

  /// Runs every case against the binding; compares output cells per VC and
  /// counters by name.  Missing golden counters are ignored; extra DUT
  /// counters are ignored (goldens define the contract).
  std::vector<CaseReport> run(const DeviceBinding& device) const;

  /// A device binding with a display name, for cross-backend regression.
  struct NamedBinding {
    std::string name;
    DeviceBinding run;
  };

  /// The VerificationSession idea at regression granularity: runs every
  /// case against every binding and compares each non-primary binding's
  /// results against the FIRST binding's (output cells per VC, counters by
  /// name — the primary's counters define the contract).  Goldens are not
  /// consulted.  One report per (case, non-primary binding), named
  /// "<case>:<binding>".
  std::vector<CaseReport> cross_run(
      const std::vector<NamedBinding>& bindings) const;

  /// Parallel cross_run: cases are independent (each binding rebuilds its
  /// simulators from reset), so they shard across `jobs` forked worker
  /// processes (farm::fork_map) — a whole case, all bindings, per work
  /// unit.  Report order and content match the serial overload; `jobs` <= 1
  /// falls back to it.  A worker death fails only its in-flight case.
  /// Call from a single-threaded process (fork safety).
  std::vector<CaseReport> cross_run(const std::vector<NamedBinding>& bindings,
                                    int jobs) const;

  static bool all_passed(const std::vector<CaseReport>& reports);
  static std::string summary(const std::vector<CaseReport>& reports);

  /// Persists to `dir` as <name>.stim / <name>.gold trace files plus a
  /// manifest; load() restores.  Directory must exist.
  void save(const std::string& dir) const;
  static RegressionSuite load(const std::string& dir);

  /// Records golden expectations by running the (trusted) reference
  /// binding over every case's stimulus — the "dump the output data into a
  /// file and re-run previously generated test vectors" workflow of §3.
  void record_goldens(const DeviceBinding& reference);

 private:
  std::vector<RegressionCase> cases_;
};

}  // namespace castanet::cosim

// ATM accounting unit — the device the paper verified with CASTANET ("We
// have used CASTANET for the functional verification of an ATM accounting
// unit", §4).
//
// The unit snoops a cell stream and maintains per-connection usage counters
// (total cells, CLP=1 cells) plus a charge accumulator computed from a
// per-tariff-class price table — the charging-algorithm application of the
// authors' HLDVT'96 case study.  A microprocessor bus with a bidirectional
// 16-bit data bus exposes the registers; this is the interface the hardware
// test board exercises through its I/O-port (in/out/direction) mapping
// (§3.3).
//
// Register map (addr is 8 bits; all data 16 bits):
//   0x00 W  VC_SELECT   select connection index for subsequent reads
//   0x01 R  COUNT_LO    total-cell counter, bits 15..0
//   0x02 R  COUNT_MID   bits 31..16
//   0x03 R  COUNT_HI    bits 47..32
//   0x04 R  CHARGE_LO   charge accumulator, bits 15..0
//   0x05 R  CHARGE_MID  bits 31..16
//   0x06 R  CHARGE_HI   bits 47..32
//   0x07 R  CLP1_LO     CLP=1 cell counter, bits 15..0
//   0x08 R  CLP1_MID    bits 31..16
//   0x09 R  CLP1_HI     bits 47..32
//   0x0A R  STATUS      bit0 = unknown-VC cell observed since last clear
//   0x0F W  CLEAR       any write clears the selected connection's counters
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/atm/connection.hpp"
#include "src/hw/cell_port.hpp"
#include "src/hw/cell_rx.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

/// Price per cell in charge units, indexed by tariff class, split by CLP.
struct Tariff {
  std::uint16_t clp0_price = 1;
  std::uint16_t clp1_price = 0;
};

/// Fault injection hooks for the co-verification experiments (E2): each
/// models a realistic RTL bug the reference-model comparison must catch.
enum class AccountingFault {
  kNone,
  kIgnoreClp1,      ///< CLP=1 cells not counted at all
  kCharge16BitWrap, ///< charge accumulator truncated to 16 bits
  kOffByOneClear,   ///< CLEAR leaves the counters at 1 instead of 0
};

class AccountingUnit : public rtl::Module {
 public:
  AccountingUnit(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                 rtl::Signal rst, CellPort snoop, std::size_t max_connections);

  // --- management (software) configuration ------------------------------
  /// Binds a VC to a counter index with a tariff class.
  void bind_connection(atm::VcId vc, std::size_t index,
                       std::uint8_t tariff_class);
  void set_tariff(std::uint8_t tariff_class, Tariff t);
  void set_fault(AccountingFault f) { fault_ = f; }

  // --- microprocessor bus ------------------------------------------------
  rtl::Bus addr;       ///< 8 bits, driven by the master
  rtl::Bus data;       ///< 16 bits, bidirectional (resolved)
  rtl::Signal cs;      ///< chip select
  rtl::Signal rw;      ///< '1' = read, '0' = write

  // --- direct observation (white-box test access) -----------------------
  std::uint64_t count(std::size_t index) const;
  std::uint64_t clp1_count(std::size_t index) const;
  std::uint64_t charge(std::size_t index) const;
  bool unknown_vc_seen() const { return unknown_vc_seen_; }
  std::uint64_t cells_observed() const { return cells_observed_; }
  const CellReceiver& rx() const { return *rx_; }

 private:
  void on_clk_count();
  void on_clk_bus();
  std::uint16_t read_register(std::uint8_t a) const;

  rtl::Signal clk_;
  rtl::Signal rst_;
  std::unique_ptr<CellReceiver> rx_;

  struct Binding {
    std::size_t index;
    std::uint8_t tariff_class;
  };
  std::unordered_map<atm::VcId, Binding, atm::VcIdHash> bindings_;
  std::vector<Tariff> tariffs_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> clp1_counts_;
  std::vector<std::uint64_t> charges_;
  bool unknown_vc_seen_ = false;
  std::uint64_t cells_observed_ = 0;
  std::size_t selected_ = 0;
  AccountingFault fault_ = AccountingFault::kNone;
};

}  // namespace castanet::hw

// AAL5 segmentation-and-reassembly hardware.
//
// SAR devices were the workhorse ATM chips (the adaptation layer between
// frame-based software and the cell stream); they are exactly the "hardware
// for telecommunication networking components" CASTANET targets.  Two
// units:
//
//   Aal5Segmenter — accepts frames (from the software side, like a host
//   DMA queue), emits the AAL5 cell train on a parallel cell bus, pacing
//   one cell per `cell_spacing_cycles` (the link cell slot), with the
//   end-of-PDU marked in PTI and the CRC-32 trailer computed on the fly.
//
//   Aal5Reassembler — consumes a parallel cell stream, keeps one
//   reassembly context per VC (bounded), and delivers completed, verified
//   frames through a callback plus a `frame_done` pulse carrying the VC.
//   CRC/length failures and context exhaustion are counted and dropped,
//   as real SARs do.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/atm/aal5.hpp"
#include "src/atm/connection.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

class Aal5Segmenter : public rtl::Module {
 public:
  Aal5Segmenter(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                rtl::Signal rst, unsigned cell_spacing_cycles = 53);

  /// Queues a frame for transmission on `vc` (host-side handoff).
  void enqueue_frame(atm::VcId vc, std::vector<std::uint8_t> frame);

  rtl::Bus cell_out;       ///< 424 bits
  rtl::Signal cell_valid;  ///< one-clock pulse per emitted cell
  rtl::Signal busy;        ///< a PDU is in flight

  std::uint64_t frames_sent() const { return frames_; }
  std::uint64_t cells_sent() const { return cells_; }
  std::size_t backlog() const { return pending_.size(); }

 private:
  void on_clk();

  rtl::Signal clk_;
  rtl::Signal rst_;
  unsigned spacing_;
  unsigned countdown_ = 0;
  std::deque<std::pair<atm::VcId, std::vector<std::uint8_t>>> pending_;
  std::vector<atm::Cell> train_;  ///< current PDU's cells
  std::size_t train_pos_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t cells_ = 0;
};

class Aal5ReassemblerRtl : public rtl::Module {
 public:
  Aal5ReassemblerRtl(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                     rtl::Signal rst, rtl::Bus cell_in, rtl::Signal in_valid,
                     std::size_t max_contexts = 16,
                     std::size_t max_frame_bytes = 65535);

  using FrameCallback =
      std::function<void(atm::VcId, const std::vector<std::uint8_t>&)>;
  void set_callback(FrameCallback cb) { callback_ = std::move(cb); }

  rtl::Signal frame_done;  ///< pulse on a completed good frame
  rtl::Bus done_vci;       ///< VCI of the completed frame (16 bits)

  std::uint64_t frames_ok() const { return frames_ok_; }
  std::uint64_t crc_errors() const { return crc_errors_; }
  std::uint64_t length_errors() const { return length_errors_; }
  std::uint64_t context_drops() const { return context_drops_; }
  std::size_t active_contexts() const { return contexts_.size(); }

 private:
  void on_clk();

  rtl::Signal clk_;
  rtl::Signal rst_;
  rtl::Bus cell_in_;
  rtl::Signal in_valid_;
  std::size_t max_contexts_;
  std::size_t max_frame_bytes_;
  struct Context {
    std::vector<std::uint8_t> buf;
    /// After an overflow the context discards until the end-of-PDU cell
    /// resynchronizes it (standard SAR behaviour).
    bool discarding = false;
  };
  std::unordered_map<atm::VcId, Context, atm::VcIdHash> contexts_;
  FrameCallback callback_;
  std::uint64_t frames_ok_ = 0;
  std::uint64_t crc_errors_ = 0;
  std::uint64_t length_errors_ = 0;
  std::uint64_t context_drops_ = 0;
};

}  // namespace castanet::hw

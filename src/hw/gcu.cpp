#include "src/hw/gcu.hpp"

#include "src/core/error.hpp"
#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

GcuDecision gcu_arbitrate(const GcuRequest* reqs, std::size_t nports,
                          GcuCoreState& state) {
  require(nports <= kMaxSwitchPorts, "gcu_arbitrate: too many ports");
  GcuDecision d;
  d.source_for_output.fill(-1);
  for (std::size_t o = 0; o < nports; ++o) {
    // Round-robin scan starting after the last granted input for output o.
    for (std::size_t k = 0; k < nports; ++k) {
      const std::size_t i = (state.rr_next[o] + k) % nports;
      if (reqs[i].req && !reqs[i].inhibit && reqs[i].dest == o) {
        d.grant[i] = true;
        d.source_for_output[o] = static_cast<int>(i);
        state.rr_next[o] = static_cast<std::uint8_t>((i + 1) % nports);
        break;
      }
    }
  }
  return d;
}

// --- event-driven RTL --------------------------------------------------------

GlobalControlUnit::GlobalControlUnit(rtl::Simulator& sim, std::string name,
                                     rtl::Signal clk, rtl::Signal rst,
                                     std::vector<InputIf> inputs)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst),
      inputs_(std::move(inputs)) {
  require(!inputs_.empty() && inputs_.size() <= kMaxSwitchPorts,
          "GlobalControlUnit: 1..16 ports");
  switched_.resize(inputs_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    grants_.push_back(
        make_signal("grant" + std::to_string(i), rtl::Logic::L0));
    out_cells_.push_back(make_bus("out_cell" + std::to_string(i), kCellBits));
    out_valids_.push_back(
        make_signal("out_valid" + std::to_string(i), rtl::Logic::L0));
  }
  std::vector<rtl::SignalId> wake{rst_.id()};
  for (const InputIf& in : inputs_) wake.push_back(in.req.id());
  const rtl::ProcessId pid = clocked("arbiter", clk_, [this] { on_clk(); });
  wake_on(pid, std::move(wake));
}

void GlobalControlUnit::on_clk() {
  if (rst_.read_bool()) {
    state_ = GcuCoreState{};
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      grants_[i].write(rtl::Logic::L0);
      out_valids_[i].write(rtl::Logic::L0);
    }
    return;
  }
  const std::size_t n = inputs_.size();
  GcuRequest reqs[kMaxSwitchPorts];
  bool any_req = false;
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].req = inputs_[i].req.read_bool();
    any_req |= reqs[i].req;
    // The port deasserts req one cycle after grant; inhibit bridges that
    // cycle so the same head-of-line cell is never granted twice.
    reqs[i].inhibit = grants_[i].read_bool();
    if (reqs[i].req && !reqs[i].inhibit) {
      const auto& dv = inputs_[i].dest.read();
      if (dv.is_defined()) {
        reqs[i].dest = static_cast<std::uint8_t>(dv.to_uint());
      } else {
        reqs[i].req = false;  // undefined destination: ignore request
      }
    }
  }
  const GcuDecision d = gcu_arbitrate(reqs, n, state_);
  bool any_grant = false;
  for (std::size_t i = 0; i < n; ++i) {
    grants_[i].write(rtl::from_bool(d.grant[i]));
    any_grant |= d.grant[i];
  }
  for (std::size_t o = 0; o < n; ++o) {
    if (d.source_for_output[o] >= 0) {
      const auto src = static_cast<std::size_t>(d.source_for_output[o]);
      out_cells_[o].write(inputs_[src].cell.read());
      out_valids_[o].write(rtl::Logic::L1);
      ++switched_total_;
      ++switched_[o];
    } else {
      out_valids_[o].write(rtl::Logic::L0);
    }
  }
  if (!any_req && !any_grant) {
    // No request on any port and nothing granted this edge: the round-robin
    // pointers are untouched and every output was (re-)deasserted, so the
    // arbiter is a no-op until some req line (or rst) changes.
    gate();
  }
}

// --- cycle-based -------------------------------------------------------------

GcuCycleModel::GcuCycleModel(std::size_t nports) : nports_(nports) {
  require(nports > 0 && nports <= kMaxSwitchPorts,
          "GcuCycleModel: 1..16 ports");
  in_req.resize(nports);
  in_cell.resize(nports);
  grant.resize(nports, false);
  out_valid.resize(nports, false);
  out_cell.resize(nports);
}

void GcuCycleModel::on_cycle() {
  for (std::size_t i = 0; i < nports_; ++i) {
    in_req[i].inhibit = grant[i];
  }
  const GcuDecision d = gcu_arbitrate(in_req.data(), nports_, state_);
  for (std::size_t i = 0; i < nports_; ++i) grant[i] = d.grant[i];
  for (std::size_t o = 0; o < nports_; ++o) {
    if (d.source_for_output[o] >= 0) {
      out_cell[o] = in_cell[static_cast<std::size_t>(d.source_for_output[o])];
      out_valid[o] = true;
      ++switched_;
    } else {
      out_valid[o] = false;
    }
  }
}

}  // namespace castanet::hw

#include "src/hw/atm_switch.hpp"

#include "src/core/error.hpp"
#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

AtmSwitch::AtmSwitch(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                     rtl::Signal rst)
    : AtmSwitch(sim, std::move(name), clk, rst, Config{}) {}

AtmSwitch::AtmSwitch(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                     rtl::Signal rst, Config cfg)
    : Module(sim, std::move(name)) {
  require(cfg.ports >= 1 && cfg.ports <= kMaxSwitchPorts,
          "AtmSwitch: 1..16 ports");
  // Create request-side signal bundles first (ports drive them, GCU reads).
  std::vector<GlobalControlUnit::InputIf> req_ifs;
  for (std::size_t i = 0; i < cfg.ports; ++i) {
    const std::string p = this->name() + ".req" + std::to_string(i);
    GlobalControlUnit::InputIf rif;
    rif.req = rtl::Signal(&sim,
                          sim.create_signal(p + ".req", 1, rtl::Logic::L0));
    rif.dest = rtl::Bus(&sim,
                        sim.create_signal(p + ".dest", 4, rtl::Logic::L0));
    rif.cell = rtl::Bus(
        &sim, sim.create_signal(p + ".cell", kCellBits, rtl::Logic::L0));
    req_ifs.push_back(rif);
  }
  gcu_ = std::make_unique<GlobalControlUnit>(sim, this->name() + ".gcu", clk,
                                             rst, req_ifs);
  for (std::size_t i = 0; i < cfg.ports; ++i) {
    phys_in_.push_back(
        make_cell_port(sim, this->name() + ".in" + std::to_string(i)));
    phys_out_.push_back(
        make_cell_port(sim, this->name() + ".out" + std::to_string(i)));
    port_modules_.push_back(std::make_unique<PortModule>(
        sim, this->name() + ".port" + std::to_string(i), clk, rst,
        phys_in_[i], phys_out_[i], req_ifs[i], gcu_->grant(i),
        gcu_->out_cell(i), gcu_->out_valid(i), cfg.port));
  }
}

void AtmSwitch::install_route(std::size_t in_port, atm::VcId in_vc,
                              atm::Route route) {
  require(in_port < port_modules_.size(), "install_route: bad input port");
  require(route.out_port < port_modules_.size(),
          "install_route: bad output port");
  port_modules_[in_port]->table().install(in_vc, route);
}

}  // namespace castanet::hw

#include "src/hw/oam.hpp"

#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

bool is_oam_loopback(const atm::Cell& c) {
  return c.header.pti == kOamPti && c.payload[0] == kOamLoopbackType;
}

atm::Cell make_loopback_request(atm::VcId vc, std::uint32_t tag) {
  atm::Cell c;
  c.header.vpi = vc.vpi;
  c.header.vci = vc.vci;
  c.header.pti = kOamPti;
  c.payload[0] = kOamLoopbackType;
  c.payload[1] = 0x01;  // loopback indication: request
  c.payload[2] = static_cast<std::uint8_t>(tag >> 24);
  c.payload[3] = static_cast<std::uint8_t>(tag >> 16);
  c.payload[4] = static_cast<std::uint8_t>(tag >> 8);
  c.payload[5] = static_cast<std::uint8_t>(tag & 0xFF);
  return c;
}

std::uint32_t loopback_tag(const atm::Cell& c) {
  return static_cast<std::uint32_t>(c.payload[2]) << 24 |
         static_cast<std::uint32_t>(c.payload[3]) << 16 |
         static_cast<std::uint32_t>(c.payload[4]) << 8 |
         static_cast<std::uint32_t>(c.payload[5]);
}

bool is_loopback_request(const atm::Cell& c) {
  return is_oam_loopback(c) && (c.payload[1] & 1) != 0;
}

OamLoopbackResponder::OamLoopbackResponder(rtl::Simulator& sim,
                                           std::string name, rtl::Signal clk,
                                           rtl::Signal rst, rtl::Bus cell_in,
                                           rtl::Signal in_valid)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), cell_in_(cell_in),
      in_valid_(in_valid) {
  cell_out = make_bus("cell_out", kCellBits);
  out_valid = make_signal("out_valid", rtl::Logic::L0);
  loop_out = make_bus("loop_out", kCellBits);
  loop_valid = make_signal("loop_valid", rtl::Logic::L0);
  const rtl::ProcessId pid = clocked("oam", clk_, [this] { on_clk(); });
  wake_on(pid, {rst_.id(), in_valid_.id()});
}

void OamLoopbackResponder::on_clk() {
  if (rst_.read_bool()) {
    out_valid.write(rtl::Logic::L0);
    loop_valid.write(rtl::Logic::L0);
    return;
  }
  out_valid.write(rtl::Logic::L0);
  loop_valid.write(rtl::Logic::L0);
  if (!in_valid_.read_bool()) {
    gate();  // idle until a cell arrives (or rst changes)
    return;
  }

  atm::Cell c = bits_to_cell(cell_in_.read(), false);
  if (is_loopback_request(c)) {
    // Turn the cell around: clear the indication, keep the tag.
    c.payload[1] = static_cast<std::uint8_t>(c.payload[1] & ~1u);
    loop_out.write(cell_to_bits(c));
    loop_valid.write(rtl::Logic::L1);
    ++answered_;
    return;
  }
  if (is_oam_loopback(c)) ++responses_;
  ++user_;
  cell_out.write(cell_in_.read());
  out_valid.write(rtl::Logic::L1);
}

}  // namespace castanet::hw

// Per-VC traffic shaper (cell spacer).
//
// The dual of the GCRA policer: where UPC discards non-conforming cells at
// the network ingress, a shaper *delays* cells at the source so the stream
// leaves conforming.  Classic ATM traffic-management hardware ("especially
// in [the] ATM traffic management sector", §4): per-VC queues plus a
// virtual-scheduling spacer that releases at most one cell per clock, each
// VC's cells no closer than its configured increment.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/atm/connection.hpp"
#include "src/atm/cell.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

class CellShaper : public rtl::Module {
 public:
  CellShaper(rtl::Simulator& sim, std::string name, rtl::Signal clk,
             rtl::Signal rst, rtl::Bus cell_in, rtl::Signal in_valid,
             std::size_t per_vc_depth = 32);

  /// Configures a VC's spacing: consecutive cells leave >= increment_ticks
  /// apart.  Unconfigured VCs pass through unshaped (but still serialized
  /// to one cell per clock).
  void configure(atm::VcId vc, std::uint64_t increment_ticks);

  rtl::Bus cell_out;
  rtl::Signal out_valid;

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t released() const { return released_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t backlog() const;

 private:
  void on_clk();

  struct VcState {
    std::uint64_t increment = 0;  ///< 0 = unshaped
    std::uint64_t next_ok_tick = 0;
    std::deque<atm::Cell> queue;
  };

  rtl::Signal clk_;
  rtl::Signal rst_;
  rtl::Bus cell_in_;
  rtl::Signal in_valid_;
  std::size_t per_vc_depth_;
  std::unordered_map<atm::VcId, VcState, atm::VcIdHash> vcs_;
  std::vector<atm::VcId> rr_order_;  ///< round-robin scan order
  std::size_t rr_next_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace castanet::hw

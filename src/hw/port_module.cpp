#include "src/hw/port_module.hpp"

#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

namespace {
constexpr std::size_t kDestBits = 4;
constexpr std::size_t kRxWord = kCellBits + kDestBits;
}  // namespace

PortModule::PortModule(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                       rtl::Signal rst, CellPort phys_in, CellPort phys_out,
                       GlobalControlUnit::InputIf req_if, rtl::Signal grant,
                       rtl::Bus fab_cell, rtl::Signal fab_valid, Config cfg)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), req_if_(req_if),
      grant_(grant), fab_cell_(fab_cell), fab_valid_(fab_valid) {
  rx_ = std::make_unique<CellReceiver>(sim, this->name() + ".rx", clk, rst,
                                       phys_in);
  translator_ = std::make_unique<HeaderTranslator>(
      sim, this->name() + ".xlat", clk, rst, rx_->cell_out, rx_->cell_valid);
  rx_fifo_ = std::make_unique<SyncFifo>(sim, this->name() + ".rxq", clk, rst,
                                        kRxWord, cfg.rx_fifo_depth);
  tx_fifo_ = std::make_unique<SyncFifo>(sim, this->name() + ".txq", clk, rst,
                                        kCellBits, cfg.tx_fifo_depth);
  tx_ = std::make_unique<CellTransmitter>(sim, this->name() + ".tx", clk, rst,
                                          phys_out, cfg.insert_idle);

  const rtl::ProcessId rx_push_pid =
      clocked("rx_push", clk_, [this] { on_clk_rx_push(); });
  wake_on(rx_push_pid, {rst_.id(), translator_->out_valid.id(),
                        translator_->cell_out.id(),
                        translator_->dest_port.id()});
  const rtl::ProcessId request_pid =
      clocked("request", clk_, [this] { on_clk_request(); });
  wake_on(request_pid, {rst_.id(), grant_.id(), rx_fifo_->empty.id(),
                        rx_fifo_->dout.id()});
  const rtl::ProcessId fab_pid =
      clocked("fab_capture", clk_, [this] { on_clk_fab_capture(); });
  wake_on(fab_pid, {rst_.id(), fab_valid_.id(), fab_cell_.id()});
  const rtl::ProcessId tx_feed_pid =
      clocked("tx_feed", clk_, [this] { on_clk_tx_feed(); });
  wake_on(tx_feed_pid, {rst_.id(), tx_fifo_->empty.id(), tx_->ready.id(),
                        tx_fifo_->dout.id()});
}

void PortModule::on_clk_rx_push() {
  if (rst_.read_bool()) {
    rx_fifo_->push.write(rtl::Logic::L0);
    gate();
    return;
  }
  if (translator_->out_valid.read_bool()) {
    rtl::LogicVector word(kRxWord);
    word.set_slice(0, translator_->cell_out.read());
    word.set_slice(kCellBits, translator_->dest_port.read());
    rx_fifo_->din.write(word);
    rx_fifo_->push.write(rtl::Logic::L1);
  } else {
    rx_fifo_->push.write(rtl::Logic::L0);
  }
  // Stateless: the outputs are a pure function of the wake set, so every
  // run may sleep until an input changes.
  gate();
}

void PortModule::on_clk_request() {
  if (rst_.read_bool()) {
    req_cooldown_ = 0;
    req_if_.req.write(rtl::Logic::L0);
    rx_fifo_->pop.write(rtl::Logic::L0);
    return;
  }
  if (grant_.read_bool()) {
    // Transfer accepted by the GCU: pop the head and back off until the
    // FIFO head and flags have settled (pop is seen next edge, outputs the
    // edge after).
    rx_fifo_->pop.write(rtl::Logic::L1);
    req_if_.req.write(rtl::Logic::L0);
    req_cooldown_ = 3;
    return;
  }
  rx_fifo_->pop.write(rtl::Logic::L0);
  if (req_cooldown_ > 0) {
    --req_cooldown_;
    req_if_.req.write(rtl::Logic::L0);
    return;
  }
  // Cooldown expired and no grant pending: with the queue head (and grant)
  // unchanged, every further run re-issues exactly these writes.
  if (!rx_fifo_->empty.read_bool()) {
    const rtl::LogicVector& word = rx_fifo_->dout.read();
    req_if_.cell.write(word.slice(0, kCellBits));
    req_if_.dest.write(word.slice(kCellBits, kDestBits));
    req_if_.req.write(rtl::Logic::L1);
  } else {
    req_if_.req.write(rtl::Logic::L0);
  }
  gate();
}

void PortModule::on_clk_fab_capture() {
  if (rst_.read_bool()) {
    tx_fifo_->push.write(rtl::Logic::L0);
    gate();
    return;
  }
  if (fab_valid_.read_bool()) {
    tx_fifo_->din.write(fab_cell_.read());
    tx_fifo_->push.write(rtl::Logic::L1);
  } else {
    tx_fifo_->push.write(rtl::Logic::L0);
  }
  gate();  // stateless, like rx_push
}

void PortModule::on_clk_tx_feed() {
  if (rst_.read_bool()) {
    feed_cooldown_ = 0;
    tx_->send.write(rtl::Logic::L0);
    tx_fifo_->pop.write(rtl::Logic::L0);
    return;
  }
  if (feed_cooldown_ > 0) {
    --feed_cooldown_;
    tx_->send.write(rtl::Logic::L0);
    tx_fifo_->pop.write(rtl::Logic::L0);
    return;
  }
  if (!tx_fifo_->empty.read_bool() && tx_->ready.read_bool()) {
    tx_->cell_in.write(tx_fifo_->dout.read());
    tx_->send.write(rtl::Logic::L1);
    tx_fifo_->pop.write(rtl::Logic::L1);
    feed_cooldown_ = 3;
  } else {
    // Queue empty or transmitter busy: nothing to feed until the queue
    // flags or ready change.
    tx_->send.write(rtl::Logic::L0);
    tx_fifo_->pop.write(rtl::Logic::L0);
    gate();
  }
}

}  // namespace castanet::hw

// Global control unit: the central arbiter of the 4-port ATM switch used in
// the paper's speed evaluation (§2) and the DUT of experiment E1.
//
// Each input port presents one head-of-line request (cell + destination
// port); the GCU grants per-output round-robin among competing inputs and
// forwards the granted cell to the destination port's output stage, one cell
// per clock per output.
//
// The arbitration core `gcu_arbitrate` is a pure function shared by this
// event-driven RTL module and by the cycle-based GcuCycleModel (E7), so both
// engines simulate bit-identical behaviour.
#pragma once

#include <array>
#include <vector>

#include "src/hw/cell_port.hpp"
#include "src/rtl/cycle.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

constexpr std::size_t kMaxSwitchPorts = 16;

/// One input port's request as seen by the arbitration core.
struct GcuRequest {
  bool req = false;
  std::uint8_t dest = 0;
  bool inhibit = false;  ///< granted last cycle: skip this cycle
};

/// Round-robin pointers, one per output port.
struct GcuCoreState {
  std::array<std::uint8_t, kMaxSwitchPorts> rr_next{};
};

/// Per-cycle decision: grant[i] for inputs, source_for_output[o] = input
/// index feeding output o this cycle, or -1.
struct GcuDecision {
  std::array<bool, kMaxSwitchPorts> grant{};
  std::array<int, kMaxSwitchPorts> source_for_output{};
};

/// Pure combinational+state arbitration shared by both simulation engines.
GcuDecision gcu_arbitrate(const GcuRequest* reqs, std::size_t nports,
                          GcuCoreState& state);

/// Event-driven RTL realization.
class GlobalControlUnit : public rtl::Module {
 public:
  /// Request-side signals, driven by the port modules.
  struct InputIf {
    rtl::Signal req;
    rtl::Bus dest;  ///< 4 bits
    rtl::Bus cell;  ///< 424 bits
  };

  GlobalControlUnit(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                    rtl::Signal rst, std::vector<InputIf> inputs);

  std::size_t ports() const { return inputs_.size(); }
  rtl::Signal grant(std::size_t i) const { return grants_.at(i); }
  rtl::Bus out_cell(std::size_t o) const { return out_cells_.at(o); }
  rtl::Signal out_valid(std::size_t o) const { return out_valids_.at(o); }

  std::uint64_t cells_switched() const { return switched_total_; }
  std::uint64_t cells_switched(std::size_t o) const {
    return switched_.at(o);
  }

 private:
  void on_clk();

  rtl::Signal clk_;
  rtl::Signal rst_;
  std::vector<InputIf> inputs_;
  std::vector<rtl::Signal> grants_;
  std::vector<rtl::Bus> out_cells_;
  std::vector<rtl::Signal> out_valids_;
  GcuCoreState state_;
  std::uint64_t switched_total_ = 0;
  std::vector<std::uint64_t> switched_;
};

/// Cycle-based realization over plain data ports (experiment E7).  Inputs
/// and outputs are public members the harness reads/writes around each
/// on_cycle() call.
class GcuCycleModel : public rtl::CycleModel {
 public:
  explicit GcuCycleModel(std::size_t nports);

  void on_cycle() override;
  const std::string& name() const override { return name_; }

  // Port variables (index < nports):
  std::vector<GcuRequest> in_req;
  std::vector<atm::Cell> in_cell;
  std::vector<bool> grant;
  std::vector<bool> out_valid;
  std::vector<atm::Cell> out_cell;

  std::uint64_t cells_switched() const { return switched_; }

 private:
  std::string name_ = "gcu_cycle";
  std::size_t nports_;
  GcuCoreState state_;
  std::uint64_t switched_ = 0;
};

}  // namespace castanet::hw

#include "src/hw/sar.hpp"

#include "src/core/error.hpp"
#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

// --- Aal5Segmenter -----------------------------------------------------------

Aal5Segmenter::Aal5Segmenter(rtl::Simulator& sim, std::string name,
                             rtl::Signal clk, rtl::Signal rst,
                             unsigned cell_spacing_cycles)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst),
      spacing_(cell_spacing_cycles) {
  require(spacing_ >= 1, "Aal5Segmenter: spacing must be >= 1 cycle");
  cell_out = make_bus("cell_out", kCellBits);
  cell_valid = make_signal("cell_valid", rtl::Logic::L0);
  busy = make_signal("busy", rtl::Logic::L0);
  clocked("segment", clk_, [this] { on_clk(); });
}

void Aal5Segmenter::enqueue_frame(atm::VcId vc,
                                  std::vector<std::uint8_t> frame) {
  pending_.emplace_back(vc, std::move(frame));
}

void Aal5Segmenter::on_clk() {
  if (rst_.read_bool()) {
    train_.clear();
    train_pos_ = 0;
    countdown_ = 0;
    cell_valid.write(rtl::Logic::L0);
    busy.write(rtl::Logic::L0);
    return;
  }
  cell_valid.write(rtl::Logic::L0);
  if (countdown_ > 0) {
    --countdown_;
    return;
  }
  if (train_pos_ >= train_.size()) {
    if (pending_.empty()) {
      busy.write(rtl::Logic::L0);
      return;
    }
    auto [vc, frame] = std::move(pending_.front());
    pending_.pop_front();
    train_ = atm::aal5_segment(frame, vc);
    train_pos_ = 0;
    busy.write(rtl::Logic::L1);
  }
  cell_out.write(cell_to_bits(train_[train_pos_]));
  cell_valid.write(rtl::Logic::L1);
  ++cells_;
  ++train_pos_;
  countdown_ = spacing_ - 1;
  if (train_pos_ >= train_.size()) {
    ++frames_;
    train_.clear();
    train_pos_ = 0;
  }
}

// --- Aal5ReassemblerRtl -------------------------------------------------------

Aal5ReassemblerRtl::Aal5ReassemblerRtl(rtl::Simulator& sim, std::string name,
                                       rtl::Signal clk, rtl::Signal rst,
                                       rtl::Bus cell_in, rtl::Signal in_valid,
                                       std::size_t max_contexts,
                                       std::size_t max_frame_bytes)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), cell_in_(cell_in),
      in_valid_(in_valid), max_contexts_(max_contexts),
      max_frame_bytes_(max_frame_bytes) {
  require(max_contexts >= 1, "Aal5ReassemblerRtl: need >= 1 context");
  frame_done = make_signal("frame_done", rtl::Logic::L0);
  done_vci = make_bus("done_vci", 16, rtl::Logic::L0);
  clocked("reassemble", clk_, [this] { on_clk(); });
}

void Aal5ReassemblerRtl::on_clk() {
  if (rst_.read_bool()) {
    contexts_.clear();
    frame_done.write(rtl::Logic::L0);
    return;
  }
  frame_done.write(rtl::Logic::L0);
  if (!in_valid_.read_bool()) return;

  const atm::Cell c = bits_to_cell(cell_in_.read(), false);
  const atm::VcId vc{c.header.vpi, c.header.vci};
  auto it = contexts_.find(vc);
  if (it == contexts_.end()) {
    if (contexts_.size() >= max_contexts_) {
      ++context_drops_;
      return;
    }
    it = contexts_.emplace(vc, Context{}).first;
  }
  Context& ctx = it->second;
  if (ctx.discarding) {
    // Drop everything until the end-of-PDU cell resynchronizes the VC.
    if (c.header.pti & 1) contexts_.erase(it);
    return;
  }
  ctx.buf.insert(ctx.buf.end(), c.payload.begin(), c.payload.end());
  if (ctx.buf.size() > max_frame_bytes_ + 48 + 8) {
    // Runaway PDU (lost end-of-frame): enter discard mode.
    ++length_errors_;
    ctx.buf.clear();
    ctx.discarding = true;
    return;
  }
  if ((c.header.pti & 1) == 0) return;  // more cells follow

  // End of CPCS-PDU: verify trailer, deliver or count the failure.
  const std::vector<std::uint8_t> pdu = std::move(ctx.buf);
  contexts_.erase(it);
  if (pdu.size() < 8) {
    ++length_errors_;
    return;
  }
  const std::size_t n = pdu.size();
  const std::uint32_t got_crc = static_cast<std::uint32_t>(pdu[n - 4]) << 24 |
                                static_cast<std::uint32_t>(pdu[n - 3]) << 16 |
                                static_cast<std::uint32_t>(pdu[n - 2]) << 8 |
                                static_cast<std::uint32_t>(pdu[n - 1]);
  if (atm::aal5_crc32(pdu.data(), n - 4) != got_crc) {
    ++crc_errors_;
    return;
  }
  const std::size_t length = static_cast<std::size_t>(pdu[n - 6]) << 8 |
                             static_cast<std::size_t>(pdu[n - 5]);
  if (length > n - 8) {
    ++length_errors_;
    return;
  }
  ++frames_ok_;
  done_vci.write_uint(vc.vci);
  frame_done.write(rtl::Logic::L1);
  if (callback_) {
    std::vector<std::uint8_t> frame(pdu.begin(),
                                    pdu.begin() + static_cast<std::ptrdiff_t>(
                                                      length));
    callback_(vc, frame);
  }
}

}  // namespace castanet::hw

// VPI/VCI header translation stage.
//
// Looks up each incoming cell's (VPI, VCI) in a software-loaded connection
// table (modeling the CAM + context RAM of a real port controller), rewrites
// the header with the outgoing identifiers and annotates the destination
// switch port.  Unknown connections are discarded and counted as
// misinserted.  One clock of pipeline latency.
#pragma once

#include "src/atm/connection.hpp"
#include "src/hw/cell_port.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

class HeaderTranslator : public rtl::Module {
 public:
  HeaderTranslator(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                   rtl::Signal rst, rtl::Bus cell_in, rtl::Signal in_valid);

  /// Loads/updates the connection table (software access path; in silicon
  /// this is the management interface writing the CAM).
  atm::ConnectionTable& table() { return table_; }

  rtl::Bus cell_out;       ///< translated cell, one clock after input
  rtl::Signal out_valid;
  rtl::Bus dest_port;      ///< 4 bits: destination switch port index

  std::uint64_t translated() const { return translated_; }
  std::uint64_t misinserted() const { return misinserted_; }

 private:
  void on_clk();

  rtl::Signal clk_;
  rtl::Signal rst_;
  rtl::Bus cell_in_;
  rtl::Signal in_valid_;
  atm::ConnectionTable table_;
  std::uint64_t translated_ = 0;
  std::uint64_t misinserted_ = 0;
};

}  // namespace castanet::hw

#include "src/hw/reference.hpp"

#include "src/core/error.hpp"

namespace castanet::hw {

// --- SwitchRef ---------------------------------------------------------------

SwitchRef::SwitchRef(std::size_t ports) : tables_(ports) {
  require(ports > 0, "SwitchRef: need at least one port");
}

atm::ConnectionTable& SwitchRef::table(std::size_t in_port) {
  require(in_port < tables_.size(), "SwitchRef::table: bad port");
  return tables_[in_port];
}

std::optional<SwitchRef::Routed> SwitchRef::route(std::size_t in_port,
                                                  const atm::Cell& c) {
  require(in_port < tables_.size(), "SwitchRef::route: bad port");
  const auto r = tables_[in_port].lookup({c.header.vpi, c.header.vci});
  if (!r) {
    ++misinserted_;
    return std::nullopt;
  }
  Routed out;
  out.out_port = r->out_port;
  out.cell = c;
  out.cell.header.vpi = r->out_vc.vpi;
  out.cell.header.vci = r->out_vc.vci;
  ++routed_;
  return out;
}

// --- AccountingRef -----------------------------------------------------------

AccountingRef::AccountingRef(std::size_t max_connections)
    : tariffs_(256), counts_(max_connections, 0),
      clp1_counts_(max_connections, 0), charges_(max_connections, 0) {
  require(max_connections > 0, "AccountingRef: need at least 1 connection");
}

void AccountingRef::bind_connection(atm::VcId vc, std::size_t index,
                                    std::uint8_t tariff_class) {
  require(index < counts_.size(), "bind_connection: index out of range");
  bindings_[vc] = Binding{index, tariff_class};
}

void AccountingRef::set_tariff(std::uint8_t tariff_class, Tariff t) {
  tariffs_[tariff_class] = t;
}

void AccountingRef::observe(const atm::Cell& c) {
  ++cells_observed_;
  auto it = bindings_.find({c.header.vpi, c.header.vci});
  if (it == bindings_.end()) {
    unknown_vc_seen_ = true;
    return;
  }
  const Binding& b = it->second;
  ++counts_[b.index];
  if (c.header.clp) ++clp1_counts_[b.index];
  const Tariff& t = tariffs_[b.tariff_class];
  charges_[b.index] += c.header.clp ? t.clp1_price : t.clp0_price;
}

void AccountingRef::clear(std::size_t index) {
  require(index < counts_.size(), "clear: index out of range");
  counts_[index] = 0;
  clp1_counts_[index] = 0;
  charges_[index] = 0;
  unknown_vc_seen_ = false;
}

std::uint64_t AccountingRef::count(std::size_t index) const {
  require(index < counts_.size(), "count: index out of range");
  return counts_[index];
}

std::uint64_t AccountingRef::clp1_count(std::size_t index) const {
  require(index < clp1_counts_.size(), "clp1_count: index out of range");
  return clp1_counts_[index];
}

std::uint64_t AccountingRef::charge(std::size_t index) const {
  require(index < charges_.size(), "charge: index out of range");
  return charges_[index];
}

// --- PolicerRef --------------------------------------------------------------

void PolicerRef::configure(atm::VcId vc, SimTime increment, SimTime limit,
                           bool tag_instead_of_drop) {
  vcs_.emplace(vc, VcState{atm::Gcra(increment, limit), tag_instead_of_drop});
}

PolicerRef::Verdict PolicerRef::filter(SimTime t, const atm::Cell& c) {
  auto it = vcs_.find({c.header.vpi, c.header.vci});
  if (it == vcs_.end()) {
    ++passed_;
    return Verdict::kPass;
  }
  if (it->second.gcra.conforms(t)) {
    ++passed_;
    return Verdict::kPass;
  }
  if (it->second.tag) {
    ++tagged_;
    return Verdict::kTag;
  }
  ++dropped_;
  return Verdict::kDrop;
}

}  // namespace castanet::hw

#include "src/hw/translator.hpp"

#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

HeaderTranslator::HeaderTranslator(rtl::Simulator& sim, std::string name,
                                   rtl::Signal clk, rtl::Signal rst,
                                   rtl::Bus cell_in, rtl::Signal in_valid)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), cell_in_(cell_in),
      in_valid_(in_valid) {
  cell_out = make_bus("cell_out", kCellBits);
  out_valid = make_signal("out_valid", rtl::Logic::L0);
  dest_port = make_bus("dest_port", 4, rtl::Logic::L0);
  const rtl::ProcessId pid = clocked("translate", clk_, [this] { on_clk(); });
  wake_on(pid, {rst_.id(), in_valid_.id()});
}

void HeaderTranslator::on_clk() {
  if (rst_.read_bool()) {
    out_valid.write(rtl::Logic::L0);
    return;
  }
  out_valid.write(rtl::Logic::L0);
  if (!in_valid_.read_bool()) {
    gate();  // no cell offered: idle until in_valid (or rst) changes
    return;
  }

  atm::Cell c = bits_to_cell(cell_in_.read(), false);
  const auto route = table_.lookup({c.header.vpi, c.header.vci});
  if (!route) {
    ++misinserted_;
    return;
  }
  c.header.vpi = route->out_vc.vpi;
  c.header.vci = route->out_vc.vci;
  ++translated_;
  cell_out.write(cell_to_bits(c));
  dest_port.write_uint(route->out_port);
  out_valid.write(rtl::Logic::L1);
}

}  // namespace castanet::hw

// Usage parameter control: per-VC GCRA policer in hardware.
//
// Implements the same virtual-scheduling GCRA as atm::Gcra but in integer
// clock ticks, the way a real UPC circuit counts cell slots.  Non-conforming
// cells are either discarded or CLP-tagged, per connection configuration.
#pragma once

#include <unordered_map>

#include "src/atm/connection.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

class GcraPolicer : public rtl::Module {
 public:
  struct VcConfig {
    std::uint64_t increment_ticks;  ///< T in clock cycles
    std::uint64_t limit_ticks;      ///< tau in clock cycles
    bool tag_instead_of_drop = false;
  };

  GcraPolicer(rtl::Simulator& sim, std::string name, rtl::Signal clk,
              rtl::Signal rst, rtl::Bus cell_in, rtl::Signal in_valid);

  void configure(atm::VcId vc, VcConfig cfg);

  rtl::Bus cell_out;
  rtl::Signal out_valid;
  rtl::Signal discard;  ///< pulse on a dropped non-conforming cell

  std::uint64_t passed() const { return passed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t tagged() const { return tagged_; }

 private:
  void on_clk();

  struct VcState {
    VcConfig cfg;
    std::uint64_t tat = 0;
    bool first = true;
  };

  rtl::Signal clk_;
  rtl::Signal rst_;
  rtl::Bus cell_in_;
  rtl::Signal in_valid_;
  std::unordered_map<atm::VcId, VcState, atm::VcIdHash> vcs_;
  std::uint64_t tick_ = 0;
  std::uint64_t passed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t tagged_ = 0;
};

}  // namespace castanet::hw

// Algorithm reference models (the "Algorithm Reference Model" box in
// Fig. 1).  These are the abstract, cell-level descriptions of the devices
// under test; the co-verification environment compares DUT responses against
// them.  They are deliberately independent implementations — they share only
// configuration types with the RTL, not logic — so a bug in either side
// produces a visible mismatch.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/atm/cell.hpp"
#include "src/atm/connection.hpp"
#include "src/atm/gcra.hpp"
#include "src/dsim/time.hpp"
#include "src/hw/accounting.hpp"

namespace castanet::hw {

/// Cell-level switch reference: header translation + output routing.
class SwitchRef {
 public:
  explicit SwitchRef(std::size_t ports);

  atm::ConnectionTable& table(std::size_t in_port);
  /// Translates/routes one cell; nullopt when the connection is unknown
  /// (misinserted cell, dropped).
  struct Routed {
    std::size_t out_port;
    atm::Cell cell;
  };
  std::optional<Routed> route(std::size_t in_port, const atm::Cell& c);

  std::size_t ports() const { return tables_.size(); }
  std::uint64_t routed_count() const { return routed_; }
  std::uint64_t misinserted() const { return misinserted_; }

 private:
  std::vector<atm::ConnectionTable> tables_;
  std::uint64_t routed_ = 0;
  std::uint64_t misinserted_ = 0;
};

/// Cell-level accounting reference with the same tariff semantics as the
/// RTL AccountingUnit.
class AccountingRef {
 public:
  explicit AccountingRef(std::size_t max_connections);

  void bind_connection(atm::VcId vc, std::size_t index,
                       std::uint8_t tariff_class);
  void set_tariff(std::uint8_t tariff_class, Tariff t);

  void observe(const atm::Cell& c);
  void clear(std::size_t index);

  std::uint64_t count(std::size_t index) const;
  std::uint64_t clp1_count(std::size_t index) const;
  std::uint64_t charge(std::size_t index) const;
  bool unknown_vc_seen() const { return unknown_vc_seen_; }
  std::uint64_t cells_observed() const { return cells_observed_; }

 private:
  struct Binding {
    std::size_t index;
    std::uint8_t tariff_class;
  };
  std::unordered_map<atm::VcId, Binding, atm::VcIdHash> bindings_;
  std::vector<Tariff> tariffs_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> clp1_counts_;
  std::vector<std::uint64_t> charges_;
  bool unknown_vc_seen_ = false;
  std::uint64_t cells_observed_ = 0;
};

/// Cell-level policing reference on simulated time.
class PolicerRef {
 public:
  enum class Verdict { kPass, kTag, kDrop };

  void configure(atm::VcId vc, SimTime increment, SimTime limit,
                 bool tag_instead_of_drop = false);

  /// Applies GCRA to a cell arriving at `t`; kPass for unconfigured VCs.
  Verdict filter(SimTime t, const atm::Cell& c);

  std::uint64_t passed() const { return passed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t tagged() const { return tagged_; }

 private:
  struct VcState {
    atm::Gcra gcra;
    bool tag;
  };
  std::unordered_map<atm::VcId, VcState, atm::VcIdHash> vcs_;
  std::uint64_t passed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t tagged_ = 0;
};

}  // namespace castanet::hw

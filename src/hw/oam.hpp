// OAM F5 loopback responder (ITU-T I.610, simplified).
//
// Fault management on a virtual channel: an end point (or intermediate
// point) receiving an OAM loopback cell with the loopback-indication flag
// set must return the cell towards the originator with the flag cleared.
// This is the standard in-service connectivity check of ATM networks; the
// responder sits on the cell path like the accounting unit does.
//
// Encoding used here (a faithful subset of I.610):
//   PTI = 0b101           end-to-end F5 OAM cell
//   payload[0] = 0x18     OAM type/function: fault management / loopback
//   payload[1] bit 0      loopback indication: 1 = request, 0 = response
//   payload[2..5]         correlation tag (echoed verbatim)
#pragma once

#include <vector>

#include "src/atm/cell.hpp"
#include "src/atm/connection.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

constexpr std::uint8_t kOamPti = 0b101;
constexpr std::uint8_t kOamLoopbackType = 0x18;

/// Is `c` an OAM F5 loopback cell (request or response)?
bool is_oam_loopback(const atm::Cell& c);
/// Builds a loopback request on `vc` with a correlation tag.
atm::Cell make_loopback_request(atm::VcId vc, std::uint32_t tag);
/// Extracts the correlation tag.
std::uint32_t loopback_tag(const atm::Cell& c);
/// Request (indication set) vs response?
bool is_loopback_request(const atm::Cell& c);

/// RTL responder: watches the incoming stream; user cells pass through on
/// `cell_out`; loopback *requests* are turned around on `loop_out` with the
/// indication cleared; loopback *responses* pass through (they are for the
/// originator) and are also counted.
class OamLoopbackResponder : public rtl::Module {
 public:
  OamLoopbackResponder(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                       rtl::Signal rst, rtl::Bus cell_in,
                       rtl::Signal in_valid);

  rtl::Bus cell_out;        ///< pass-through path
  rtl::Signal out_valid;
  rtl::Bus loop_out;        ///< turned-around responses
  rtl::Signal loop_valid;

  std::uint64_t user_cells() const { return user_; }
  std::uint64_t requests_answered() const { return answered_; }
  std::uint64_t responses_seen() const { return responses_; }

 private:
  void on_clk();

  rtl::Signal clk_;
  rtl::Signal rst_;
  rtl::Bus cell_in_;
  rtl::Signal in_valid_;
  std::uint64_t user_ = 0;
  std::uint64_t answered_ = 0;
  std::uint64_t responses_ = 0;
};

}  // namespace castanet::hw

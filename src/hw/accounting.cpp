#include "src/hw/accounting.hpp"

#include "src/core/error.hpp"
#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

AccountingUnit::AccountingUnit(rtl::Simulator& sim, std::string name,
                               rtl::Signal clk, rtl::Signal rst,
                               CellPort snoop, std::size_t max_connections)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst) {
  require(max_connections > 0, "AccountingUnit: need at least 1 connection");
  rx_ = std::make_unique<CellReceiver>(sim, this->name() + ".rx", clk, rst,
                                       snoop);
  tariffs_.resize(256);
  counts_.resize(max_connections, 0);
  clp1_counts_.resize(max_connections, 0);
  charges_.resize(max_connections, 0);

  addr = make_bus("addr", 8, rtl::Logic::L0);
  // The data bus is bidirectional: it initializes to Z and the unit's bus
  // process only drives it while answering a read.
  data = make_bus("data", 16, rtl::Logic::Z);
  cs = make_signal("cs", rtl::Logic::L0);
  rw = make_signal("rw", rtl::Logic::L1);
  bind_port(clk_, rtl::PortDir::kIn, "clk");
  bind_port(rst_, rtl::PortDir::kIn, "rst");
  bind_port(addr, rtl::PortDir::kIn, 8, "addr");
  bind_port(data, rtl::PortDir::kInOut, 16, "data");
  bind_port(cs, rtl::PortDir::kIn, "cs");
  bind_port(rw, rtl::PortDir::kIn, "rw");

  const rtl::ProcessId count_pid =
      clocked("count", clk_, [this] { on_clk_count(); });
  wake_on(count_pid, {rst_.id(), rx_->cell_valid.id()});
  guard_on(count_pid, rst_, /*active_high=*/true, rtl::GuardKind::kReset,
           "count");
  const rtl::ProcessId bus_pid = clocked("bus", clk_, [this] { on_clk_bus(); });
  wake_on(bus_pid, {rst_.id(), cs.id()});
  guard_on(bus_pid, rst_, /*active_high=*/true, rtl::GuardKind::kReset, "bus");
}

void AccountingUnit::bind_connection(atm::VcId vc, std::size_t index,
                                     std::uint8_t tariff_class) {
  require(index < counts_.size(), "bind_connection: index out of range");
  bindings_[vc] = Binding{index, tariff_class};
}

void AccountingUnit::set_tariff(std::uint8_t tariff_class, Tariff t) {
  tariffs_[tariff_class] = t;
}

std::uint64_t AccountingUnit::count(std::size_t index) const {
  require(index < counts_.size(), "count: index out of range");
  return counts_[index];
}

std::uint64_t AccountingUnit::clp1_count(std::size_t index) const {
  require(index < clp1_counts_.size(), "clp1_count: index out of range");
  return clp1_counts_[index];
}

std::uint64_t AccountingUnit::charge(std::size_t index) const {
  require(index < charges_.size(), "charge: index out of range");
  return charges_[index];
}

void AccountingUnit::on_clk_count() {
  if (rst_.read_bool()) return;
  if (!rx_->cell_valid.read_bool()) {
    gate();  // counters only move on reassembled cells
    return;
  }
  const atm::Cell c = bits_to_cell(rx_->cell_out.read(), false);
  ++cells_observed_;
  auto it = bindings_.find({c.header.vpi, c.header.vci});
  if (it == bindings_.end()) {
    unknown_vc_seen_ = true;
    return;
  }
  const Binding& b = it->second;
  if (c.header.clp && fault_ == AccountingFault::kIgnoreClp1) {
    return;  // injected bug: CLP=1 traffic invisible to accounting
  }
  ++counts_[b.index];
  if (c.header.clp) ++clp1_counts_[b.index];
  const Tariff& t = tariffs_[b.tariff_class];
  const std::uint64_t price = c.header.clp ? t.clp1_price : t.clp0_price;
  charges_[b.index] += price;
  if (fault_ == AccountingFault::kCharge16BitWrap) {
    charges_[b.index] &= 0xFFFF;  // injected bug: narrow accumulator
  }
}

std::uint16_t AccountingUnit::read_register(std::uint8_t a) const {
  const std::size_t i = selected_;
  switch (a) {
    case 0x01: return static_cast<std::uint16_t>(counts_[i] & 0xFFFF);
    case 0x02: return static_cast<std::uint16_t>(counts_[i] >> 16 & 0xFFFF);
    case 0x03: return static_cast<std::uint16_t>(counts_[i] >> 32 & 0xFFFF);
    case 0x04: return static_cast<std::uint16_t>(charges_[i] & 0xFFFF);
    case 0x05: return static_cast<std::uint16_t>(charges_[i] >> 16 & 0xFFFF);
    case 0x06: return static_cast<std::uint16_t>(charges_[i] >> 32 & 0xFFFF);
    case 0x07: return static_cast<std::uint16_t>(clp1_counts_[i] & 0xFFFF);
    case 0x08:
      return static_cast<std::uint16_t>(clp1_counts_[i] >> 16 & 0xFFFF);
    case 0x09:
      return static_cast<std::uint16_t>(clp1_counts_[i] >> 32 & 0xFFFF);
    case 0x0A: return unknown_vc_seen_ ? 1 : 0;
    default: return 0xDEAD;  // reads of undefined registers
  }
}

void AccountingUnit::on_clk_bus() {
  if (rst_.read_bool()) {
    data.release();
    return;
  }
  if (!cs.read_bool()) {
    // Bus idle: keep our contribution released; addr/rw/data are only
    // sampled while the master asserts cs.
    data.release();
    gate();
    return;
  }
  const auto& av = addr.read();
  if (!av.is_defined()) {
    data.release();
    return;
  }
  const auto a = static_cast<std::uint8_t>(av.to_uint());
  if (rw.read_bool()) {
    // Read cycle: drive the register value for the master to sample.
    data.write_uint(read_register(a));
    return;
  }
  // Write cycle: the master drives the bus; we must not.
  data.release();
  const auto& dv = data.read();
  if (!dv.is_defined()) return;
  const auto value = static_cast<std::uint16_t>(dv.to_uint());
  if (a == 0x00) {
    if (value < counts_.size()) selected_ = value;
  } else if (a == 0x0F) {
    const std::uint64_t base =
        fault_ == AccountingFault::kOffByOneClear ? 1 : 0;
    counts_[selected_] = base;
    clp1_counts_[selected_] = base;
    charges_[selected_] = base;
    unknown_vc_seen_ = false;
  }
}

}  // namespace castanet::hw

#include "src/hw/policer.hpp"

#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

GcraPolicer::GcraPolicer(rtl::Simulator& sim, std::string name,
                         rtl::Signal clk, rtl::Signal rst, rtl::Bus cell_in,
                         rtl::Signal in_valid)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), cell_in_(cell_in),
      in_valid_(in_valid) {
  cell_out = make_bus("cell_out", kCellBits);
  out_valid = make_signal("out_valid", rtl::Logic::L0);
  discard = make_signal("discard", rtl::Logic::L0);
  clocked("police", clk_, [this] { on_clk(); });
}

void GcraPolicer::configure(atm::VcId vc, VcConfig cfg) {
  VcState st;
  st.cfg = cfg;
  vcs_[vc] = st;
}

void GcraPolicer::on_clk() {
  if (rst_.read_bool()) {
    tick_ = 0;
    out_valid.write(rtl::Logic::L0);
    discard.write(rtl::Logic::L0);
    return;
  }
  ++tick_;
  out_valid.write(rtl::Logic::L0);
  discard.write(rtl::Logic::L0);
  if (!in_valid_.read_bool()) return;

  atm::Cell c = bits_to_cell(cell_in_.read(), false);
  auto it = vcs_.find({c.header.vpi, c.header.vci});
  if (it == vcs_.end()) {
    // Unconfigured connections pass unpoliced.
    ++passed_;
    cell_out.write(cell_in_.read());
    out_valid.write(rtl::Logic::L1);
    return;
  }
  VcState& st = it->second;
  bool conforming;
  if (st.first) {
    st.first = false;
    st.tat = tick_ + st.cfg.increment_ticks;
    conforming = true;
  } else if (st.tat > st.cfg.limit_ticks &&
             tick_ < st.tat - st.cfg.limit_ticks) {
    conforming = false;
  } else {
    st.tat = (tick_ > st.tat ? tick_ : st.tat) + st.cfg.increment_ticks;
    conforming = true;
  }

  if (conforming) {
    ++passed_;
    cell_out.write(cell_in_.read());
    out_valid.write(rtl::Logic::L1);
    return;
  }
  if (st.cfg.tag_instead_of_drop) {
    ++tagged_;
    c.header.clp = true;
    cell_out.write(cell_to_bits(c));
    out_valid.write(rtl::Logic::L1);
    return;
  }
  ++dropped_;
  discard.write(rtl::Logic::L1);
}

}  // namespace castanet::hw

#include "src/hw/cell_port.hpp"

#include "src/core/error.hpp"
#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

CellPort make_cell_port(rtl::Simulator& sim, const std::string& prefix) {
  // Initial values are set at creation: adding initialization *writes* from
  // a constructor would register a second driver on the net and resolve
  // against the real driving process forever (X).
  CellPort p;
  p.data = rtl::Bus(&sim, sim.create_signal(prefix + ".data", 8,
                                            rtl::Logic::L0));
  p.sync = rtl::Signal(&sim, sim.create_signal(prefix + ".sync", 1,
                                               rtl::Logic::L0));
  p.valid = rtl::Signal(&sim, sim.create_signal(prefix + ".valid", 1,
                                                rtl::Logic::L0));
  return p;
}

// --- CellPortDriver ----------------------------------------------------------

CellPortDriver::CellPortDriver(rtl::Simulator& sim, std::string name,
                               rtl::Signal clk, CellPort port)
    : Module(sim, std::move(name)), clk_(clk), port_(port) {
  bind_port(clk_, rtl::PortDir::kIn, "clk");
  bind_port(port_.data, rtl::PortDir::kOut, 8, "data");
  bind_port(port_.sync, rtl::PortDir::kOut, "sync");
  bind_port(port_.valid, rtl::PortDir::kOut, "valid");
  pid_ = clocked("drive", clk_, [this] { on_clk(); });
}

void CellPortDriver::enqueue(const atm::Cell& c) {
  enqueue_bytes(c.to_bytes());
}

void CellPortDriver::enqueue_bytes(
    const std::array<std::uint8_t, atm::kCellBytes>& bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // The queue lives outside the signal world, so no wake signal can re-arm
  // the driver after it gates on an empty buffer — re-arm it explicitly.
  sim().wake_process(pid_);
}

void CellPortDriver::on_clk() {
  if (buffer_.empty()) {
    port_.valid.write(rtl::Logic::L0);
    port_.sync.write(rtl::Logic::L0);
    phase_ = 0;
    gate();  // nothing queued: sleep until enqueue_bytes() wakes us
    return;
  }
  const std::uint8_t b = buffer_.front();
  buffer_.pop_front();
  port_.data.write(byte_to_bits(b));
  port_.valid.write(rtl::Logic::L1);
  port_.sync.write(phase_ == 0 ? rtl::Logic::L1 : rtl::Logic::L0);
  ++phase_;
  if (phase_ == atm::kCellBytes) {
    phase_ = 0;
    ++cells_driven_;
  }
}

// --- CellPortMonitor ---------------------------------------------------------

CellPortMonitor::CellPortMonitor(rtl::Simulator& sim, std::string name,
                                 rtl::Signal clk, CellPort port,
                                 bool check_hec)
    : Module(sim, std::move(name)), clk_(clk), port_(port),
      check_hec_(check_hec) {
  bind_port(clk_, rtl::PortDir::kIn, "clk");
  bind_port(port_.data, rtl::PortDir::kIn, 8, "data");
  bind_port(port_.sync, rtl::PortDir::kIn, "sync");
  bind_port(port_.valid, rtl::PortDir::kIn, "valid");
  const rtl::ProcessId pid = clocked("observe", clk_, [this] { on_clk(); });
  wake_on(pid, {port_.valid.id()});
}

void CellPortMonitor::on_clk() {
  if (!port_.valid.read_bool()) {
    gate();  // between cells; data/sync are only read while valid is high
    return;
  }
  const bool sync = port_.sync.read_bool();
  if (sync && count_ != 0) {
    // Mid-cell resynchronization: drop the partial cell.
    ++framing_errors_;
    count_ = 0;
  }
  if (!sync && count_ == 0) {
    // Valid octet outside any cell frame: framing error, skip.
    ++framing_errors_;
    return;
  }
  shift_[count_++] = bits_to_byte(port_.data.read());
  if (count_ < atm::kCellBytes) return;
  count_ = 0;
  try {
    atm::Cell c = atm::Cell::from_bytes(shift_.data(), check_hec_);
    cells_.push_back(c);
    if (callback_) callback_(c);
  } catch (const ProtocolError&) {
    ++hec_discards_;
  }
}

}  // namespace castanet::hw

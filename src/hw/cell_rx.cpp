#include "src/hw/cell_rx.hpp"

#include "src/atm/hec.hpp"
#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

CellReceiver::CellReceiver(rtl::Simulator& sim, std::string name,
                           rtl::Signal clk, rtl::Signal rst, CellPort in)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), in_(in) {
  cell_out = make_bus("cell_out", kCellBits);
  cell_valid = make_signal("cell_valid", rtl::Logic::L0);
  hec_error = make_signal("hec_error", rtl::Logic::L0);
  const rtl::ProcessId pid = clocked("rx", clk_, [this] { on_clk(); });
  wake_on(pid, {rst_.id(), in_.valid.id()});
  guard_on(pid, rst_, /*active_high=*/true, rtl::GuardKind::kReset, "rx");
}

void CellReceiver::on_clk() {
  if (rst_.read_bool()) {
    count_ = 0;
    cell_valid.write(rtl::Logic::L0);
    hec_error.write(rtl::Logic::L0);
    return;
  }
  // Default: deassert pulses each clock.
  cell_valid.write(rtl::Logic::L0);
  hec_error.write(rtl::Logic::L0);

  if (!in_.valid.read_bool()) {
    // Idle lane: until valid (or rst) changes, every run would only re-issue
    // the deasserts committed above — sleep through those clock edges.
    gate();
    return;
  }
  const bool sync = in_.sync.read_bool();
  if (sync) count_ = 0;
  if (!sync && count_ == 0) return;  // octets before first sync: skip
  shift_[count_++] = bits_to_byte(in_.data.read());
  if (count_ < atm::kCellBytes) return;
  count_ = 0;

  // HEC check/correct over the 5 header octets.
  const auto result = atm::check_and_correct(shift_.data());
  if (result == atm::HecResult::kUncorrectable) {
    ++discarded_;
    hec_error.write(rtl::Logic::L1);
    return;
  }
  if (result == atm::HecResult::kCorrected) ++corrected_;

  const atm::Cell c = atm::Cell::from_bytes(shift_.data(), false);
  if (atm::is_idle_cell(c) ||
      (c.header.vpi == 0 && c.header.vci == 0 && !c.header.clp)) {
    ++idle_filtered_;
    return;
  }
  ++accepted_;
  cell_out.write(cell_to_bits(c));
  cell_valid.write(rtl::Logic::L1);
}

}  // namespace castanet::hw

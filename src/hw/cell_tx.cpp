#include "src/hw/cell_tx.hpp"

#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

CellTransmitter::CellTransmitter(rtl::Simulator& sim, std::string name,
                                 rtl::Signal clk, rtl::Signal rst,
                                 CellPort out, bool insert_idle)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), out_(out),
      insert_idle_(insert_idle) {
  cell_in = make_bus("cell_in", kCellBits);
  send = make_signal("send", rtl::Logic::L0);
  ready = make_signal("ready", rtl::Logic::L1);
  const rtl::ProcessId pid = clocked("tx", clk_, [this] { on_clk(); });
  wake_on(pid, {rst_.id(), send.id()});
}

void CellTransmitter::on_clk() {
  if (rst_.read_bool()) {
    busy_ = false;
    index_ = 0;
    ready.write(rtl::Logic::L1);
    out_.valid.write(rtl::Logic::L0);
    out_.sync.write(rtl::Logic::L0);
    return;
  }

  if (!busy_) {
    if (send.read_bool()) {
      const atm::Cell c = bits_to_cell(cell_in.read(), false);
      const auto bytes = c.to_bytes();
      std::copy(bytes.begin(), bytes.end(), buffer_.begin());
      busy_ = true;
      sending_idle_ = false;
      index_ = 0;
    } else if (insert_idle_) {
      const auto bytes = atm::make_idle_cell().to_bytes();
      std::copy(bytes.begin(), bytes.end(), buffer_.begin());
      busy_ = true;
      sending_idle_ = true;
      index_ = 0;
    }
  }

  if (!busy_) {
    out_.valid.write(rtl::Logic::L0);
    out_.sync.write(rtl::Logic::L0);
    ready.write(rtl::Logic::L1);
    // Reached only with send low and idle insertion off: the lane stays
    // silent until send (or rst) changes.
    gate();
    return;
  }

  out_.data.write(byte_to_bits(buffer_[index_]));
  out_.sync.write(index_ == 0 ? rtl::Logic::L1 : rtl::Logic::L0);
  out_.valid.write(rtl::Logic::L1);
  ++index_;
  if (index_ == atm::kCellBytes) {
    busy_ = false;
    index_ = 0;
    if (sending_idle_) {
      ++idle_sent_;
    } else {
      ++cells_sent_;
    }
  }
  // Ready for a new cell on the clock where the last octet goes out.
  ready.write(busy_ ? rtl::Logic::L0 : rtl::Logic::L1);
}

}  // namespace castanet::hw

#include "src/hw/epd.hpp"

#include "src/core/error.hpp"
#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

EarlyPacketDiscard::EarlyPacketDiscard(rtl::Simulator& sim, std::string name,
                                       rtl::Signal clk, rtl::Signal rst,
                                       rtl::Bus cell_in, rtl::Signal in_valid,
                                       rtl::Bus occupancy_in,
                                       std::size_t threshold, bool enable_epd)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), cell_in_(cell_in),
      in_valid_(in_valid), occupancy_in_(occupancy_in), threshold_(threshold),
      enabled_(enable_epd) {
  require(threshold >= 1, "EarlyPacketDiscard: threshold must be >= 1");
  cell_out = make_bus("cell_out", kCellBits);
  out_valid = make_signal("out_valid", rtl::Logic::L0);
  const rtl::ProcessId pid = clocked("epd", clk_, [this] { on_clk(); });
  wake_on(pid, {rst_.id(), in_valid_.id()});
}

void EarlyPacketDiscard::on_clk() {
  if (rst_.read_bool()) {
    vc_state_.clear();
    out_valid.write(rtl::Logic::L0);
    return;
  }
  out_valid.write(rtl::Logic::L0);
  if (!in_valid_.read_bool()) {
    gate();  // no cell offered this edge; VC state only moves on cells
    return;
  }

  const atm::Cell c = bits_to_cell(cell_in_.read(), false);
  const atm::VcId vc{c.header.vpi, c.header.vci};
  const bool end_of_frame = (c.header.pti & 1) != 0;
  VcState& st = vc_state_[vc];

  if (st.discarding) {
    // Partial-packet discard: the rest of a condemned frame never enters
    // the queue; the end-of-frame cell re-arms the VC.
    ++discarded_;
    if (end_of_frame) st = VcState{};
    return;
  }

  if (!st.mid_frame && enabled_) {
    // Frame boundary: the early-discard decision point.
    const auto& occ = occupancy_in_.read();
    const std::size_t occupancy =
        occ.is_defined() ? static_cast<std::size_t>(occ.to_uint()) : 0;
    if (occupancy >= threshold_) {
      ++frames_discarded_;
      ++discarded_;
      if (!end_of_frame) st.discarding = true;  // condemn the rest
      return;
    }
  }

  // Admit the cell.
  ++passed_;
  st.mid_frame = !end_of_frame;
  cell_out.write(cell_in_.read());
  out_valid.write(rtl::Logic::L1);
}

}  // namespace castanet::hw

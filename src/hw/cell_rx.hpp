// Cell receiver: deserializes the byte lane into whole cells.
//
// Collects 53 octets framed by `cellsync`, runs the I.432 HEC check in
// correction mode, and presents accepted cells on a parallel 424-bit bus
// with a one-clock `cell_valid` pulse.  Idle/unassigned cells are filtered
// (they only pad the physical link).
#pragma once

#include "src/hw/cell_port.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

class CellReceiver : public rtl::Module {
 public:
  CellReceiver(rtl::Simulator& sim, std::string name, rtl::Signal clk,
               rtl::Signal rst, CellPort in);

  /// Parallel cell output, qualified by cell_valid for one clock.
  rtl::Bus cell_out;
  rtl::Signal cell_valid;
  /// Diagnostic pulse on an uncorrectable header.
  rtl::Signal hec_error;

  std::uint64_t cells_accepted() const { return accepted_; }
  std::uint64_t cells_corrected() const { return corrected_; }
  std::uint64_t cells_discarded() const { return discarded_; }
  std::uint64_t idle_filtered() const { return idle_filtered_; }

 private:
  void on_clk();

  rtl::Signal clk_;
  rtl::Signal rst_;
  CellPort in_;
  std::array<std::uint8_t, atm::kCellBytes> shift_{};
  std::size_t count_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t corrected_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t idle_filtered_ = 0;
};

}  // namespace castanet::hw

// Synchronous FIFO for wide words (cells, or cells + routing tag).
//
// Head is continuously visible on `dout` with `empty` low — the "queueing"
// capability of the node domain realized in hardware.  Pushing into a full
// FIFO drops the word and counts a loss, which is exactly the cell-loss
// behaviour switch buffers exhibit under overload.
#pragma once

#include <deque>

#include "src/rtl/module.hpp"

namespace castanet::hw {

class SyncFifo : public rtl::Module {
 public:
  SyncFifo(rtl::Simulator& sim, std::string name, rtl::Signal clk,
           rtl::Signal rst, std::size_t width, std::size_t depth);

  rtl::Bus din;
  rtl::Signal push;
  rtl::Signal pop;
  rtl::Bus dout;       ///< head word, valid while !empty
  rtl::Signal empty;   ///< '1' when no words stored
  rtl::Signal full;    ///< '1' when at capacity
  rtl::Bus occupancy;  ///< current fill level, 16 bits

  std::size_t depth() const { return depth_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t pushes() const { return pushes_; }
  std::uint64_t pops() const { return pops_; }
  std::size_t max_occupancy() const { return max_occupancy_; }

 private:
  void on_clk();
  void refresh_outputs();

  rtl::Signal clk_;
  rtl::Signal rst_;
  std::size_t width_;
  std::size_t depth_;
  std::deque<rtl::LogicVector> store_;
  std::uint64_t drops_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t pops_ = 0;
  std::size_t max_occupancy_ = 0;
};

}  // namespace castanet::hw

// Port module: one of the four per-link datapaths of the switch (§2's
// "four port modules, one global control unit").
//
// Datapath: serial receive -> HEC check -> VPI/VCI translation -> input FIFO
// -> request/grant handshake with the GCU -> (fabric) -> output FIFO ->
// serial transmit.  All stages are clocked processes communicating through
// signals, so the module exhibits the event density of a real RTL model.
#pragma once

#include <memory>

#include "src/hw/cell_rx.hpp"
#include "src/hw/cell_tx.hpp"
#include "src/hw/fifo.hpp"
#include "src/hw/gcu.hpp"
#include "src/hw/translator.hpp"

namespace castanet::hw {

class PortModule : public rtl::Module {
 public:
  struct Config {
    std::size_t rx_fifo_depth = 32;
    std::size_t tx_fifo_depth = 32;
    bool insert_idle = false;
  };

  /// `req_if` are the request signals this port drives toward the GCU (the
  /// switch top creates them); `grant`, `fab_cell`, `fab_valid` come back
  /// from the GCU.
  PortModule(rtl::Simulator& sim, std::string name, rtl::Signal clk,
             rtl::Signal rst, CellPort phys_in, CellPort phys_out,
             GlobalControlUnit::InputIf req_if, rtl::Signal grant,
             rtl::Bus fab_cell, rtl::Signal fab_valid, Config cfg);

  /// Connection table of this port's translation stage.
  atm::ConnectionTable& table() { return translator_->table(); }

  const CellReceiver& rx() const { return *rx_; }
  const CellTransmitter& tx() const { return *tx_; }
  const SyncFifo& rx_fifo() const { return *rx_fifo_; }
  const SyncFifo& tx_fifo() const { return *tx_fifo_; }
  const HeaderTranslator& translator() const { return *translator_; }

 private:
  void on_clk_request();
  void on_clk_rx_push();
  void on_clk_fab_capture();
  void on_clk_tx_feed();

  rtl::Signal clk_;
  rtl::Signal rst_;
  GlobalControlUnit::InputIf req_if_;
  rtl::Signal grant_;
  rtl::Bus fab_cell_;
  rtl::Signal fab_valid_;

  std::unique_ptr<CellReceiver> rx_;
  std::unique_ptr<HeaderTranslator> translator_;
  std::unique_ptr<SyncFifo> rx_fifo_;  ///< words: cell(424) ++ dest(4)
  std::unique_ptr<SyncFifo> tx_fifo_;  ///< words: cell(424)
  std::unique_ptr<CellTransmitter> tx_;

  unsigned req_cooldown_ = 0;   ///< cycles to hold req low after a grant
  unsigned feed_cooldown_ = 0;  ///< cycles to hold tx feed after a send
};

}  // namespace castanet::hw

// ATM cell <-> bit-level representation used on wide internal buses.
//
// Inside the switch fabric a whole cell travels in parallel on a 424-bit
// bus (53 octets).  Byte j of the serialized cell occupies bits
// [8*j, 8*j+8), LSB first within the byte — the same layout the byte-lane
// serialization uses, so slicing byte j out of the bus equals byte j on the
// wire.
#pragma once

#include "src/atm/cell.hpp"
#include "src/rtl/logic_vector.hpp"

namespace castanet::hw {

constexpr std::size_t kCellBits = 8 * atm::kCellBytes;  // 424

/// Serializes (including computed HEC) to a 424-bit vector.
rtl::LogicVector cell_to_bits(const atm::Cell& c);

/// Parses a 424-bit vector; throws LogicError on undefined bits and
/// ProtocolError on an uncorrectable HEC.
atm::Cell bits_to_cell(const rtl::LogicVector& v, bool check_hec = true);

/// One byte as an 8-bit vector / back.
rtl::LogicVector byte_to_bits(std::uint8_t b);
std::uint8_t bits_to_byte(const rtl::LogicVector& v);

}  // namespace castanet::hw

// Switch top level: N port modules around one global control unit — the
// device evaluated in §2 of the paper (N=4 there).
#pragma once

#include <memory>
#include <vector>

#include "src/hw/gcu.hpp"
#include "src/hw/port_module.hpp"

namespace castanet::hw {

class AtmSwitch : public rtl::Module {
 public:
  struct Config {
    std::size_t ports = 4;
    PortModule::Config port;
  };

  /// Creates the physical ports, port modules and GCU; the caller drives
  /// phys_in(i) and observes phys_out(i).
  AtmSwitch(rtl::Simulator& sim, std::string name, rtl::Signal clk,
            rtl::Signal rst, Config cfg);
  /// Four ports, default FIFO depths.
  AtmSwitch(rtl::Simulator& sim, std::string name, rtl::Signal clk,
            rtl::Signal rst);

  std::size_t ports() const { return port_modules_.size(); }
  CellPort phys_in(std::size_t i) const { return phys_in_.at(i); }
  CellPort phys_out(std::size_t i) const { return phys_out_.at(i); }
  PortModule& port(std::size_t i) { return *port_modules_.at(i); }
  GlobalControlUnit& gcu() { return *gcu_; }

  /// Installs a route on the input port's translation table.
  void install_route(std::size_t in_port, atm::VcId in_vc, atm::Route route);

 private:
  std::vector<CellPort> phys_in_;
  std::vector<CellPort> phys_out_;
  std::vector<std::unique_ptr<PortModule>> port_modules_;
  std::unique_ptr<GlobalControlUnit> gcu_;
};

}  // namespace castanet::hw

// Cell transmitter: serializes parallel cells onto the byte lane.
//
// Accepts a cell on `cell_in` when `send` pulses while `ready`; emits 53
// octets with `cellsync` on the first.  When idle and idle-cell insertion is
// enabled (the physical-layer behaviour §3.2 refers to), it transmits idle
// cells back-to-back so the lane always carries a continuous octet stream.
#pragma once

#include "src/hw/cell_port.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

class CellTransmitter : public rtl::Module {
 public:
  CellTransmitter(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                  rtl::Signal rst, CellPort out, bool insert_idle = false);

  /// Parallel input: pulse `send` with the cell on `cell_in` while `ready`.
  rtl::Bus cell_in;
  rtl::Signal send;
  rtl::Signal ready;  ///< '1' when a new cell can be accepted this clock

  std::uint64_t cells_sent() const { return cells_sent_; }
  std::uint64_t idle_cells_sent() const { return idle_sent_; }

 private:
  void on_clk();

  rtl::Signal clk_;
  rtl::Signal rst_;
  CellPort out_;
  bool insert_idle_;
  std::array<std::uint8_t, atm::kCellBytes> buffer_{};
  std::size_t index_ = 0;
  bool busy_ = false;
  bool sending_idle_ = false;
  std::uint64_t cells_sent_ = 0;
  std::uint64_t idle_sent_ = 0;
};

}  // namespace castanet::hw

#include "src/hw/shaper.hpp"

#include <algorithm>

#include "src/core/error.hpp"
#include "src/hw/cell_bits.hpp"

namespace castanet::hw {

CellShaper::CellShaper(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                       rtl::Signal rst, rtl::Bus cell_in,
                       rtl::Signal in_valid, std::size_t per_vc_depth)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), cell_in_(cell_in),
      in_valid_(in_valid), per_vc_depth_(per_vc_depth) {
  require(per_vc_depth >= 1, "CellShaper: per-VC depth must be >= 1");
  cell_out = make_bus("cell_out", kCellBits);
  out_valid = make_signal("out_valid", rtl::Logic::L0);
  clocked("shape", clk_, [this] { on_clk(); });
}

void CellShaper::configure(atm::VcId vc, std::uint64_t increment_ticks) {
  VcState& st = vcs_[vc];
  st.increment = increment_ticks;
  if (std::find(rr_order_.begin(), rr_order_.end(), vc) == rr_order_.end()) {
    rr_order_.push_back(vc);
  }
}

std::size_t CellShaper::backlog() const {
  std::size_t n = 0;
  for (const auto& [vc, st] : vcs_) n += st.queue.size();
  return n;
}

void CellShaper::on_clk() {
  if (rst_.read_bool()) {
    tick_ = 0;
    for (auto& [vc, st] : vcs_) {
      st.queue.clear();
      st.next_ok_tick = 0;
    }
    out_valid.write(rtl::Logic::L0);
    return;
  }
  ++tick_;
  out_valid.write(rtl::Logic::L0);

  // Ingest at most one cell per clock.
  if (in_valid_.read_bool()) {
    const atm::Cell c = bits_to_cell(cell_in_.read(), false);
    const atm::VcId vc{c.header.vpi, c.header.vci};
    auto it = vcs_.find(vc);
    if (it == vcs_.end()) {
      it = vcs_.emplace(vc, VcState{}).first;
      rr_order_.push_back(vc);
    }
    if (it->second.queue.size() >= per_vc_depth_) {
      ++dropped_;
    } else {
      it->second.queue.push_back(c);
      ++accepted_;
    }
  }

  // Release at most one eligible cell, round-robin over VCs.
  if (rr_order_.empty()) return;
  for (std::size_t k = 0; k < rr_order_.size(); ++k) {
    const std::size_t idx = (rr_next_ + k) % rr_order_.size();
    VcState& st = vcs_[rr_order_[idx]];
    if (st.queue.empty() || tick_ < st.next_ok_tick) continue;
    cell_out.write(cell_to_bits(st.queue.front()));
    out_valid.write(rtl::Logic::L1);
    st.queue.pop_front();
    st.next_ok_tick = tick_ + st.increment;
    ++released_;
    rr_next_ = (idx + 1) % rr_order_.size();
    break;
  }
}

}  // namespace castanet::hw

#include "src/hw/fifo.hpp"

#include <algorithm>

#include "src/core/error.hpp"

namespace castanet::hw {

SyncFifo::SyncFifo(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                   rtl::Signal rst, std::size_t width, std::size_t depth)
    : Module(sim, std::move(name)), clk_(clk), rst_(rst), width_(width),
      depth_(depth) {
  require(depth > 0, "SyncFifo: depth must be > 0");
  din = make_bus("din", width);
  push = make_signal("push", rtl::Logic::L0);
  pop = make_signal("pop", rtl::Logic::L0);
  dout = make_bus("dout", width);
  empty = make_signal("empty", rtl::Logic::L1);
  full = make_signal("full", rtl::Logic::L0);
  occupancy = make_bus("occupancy", 16, rtl::Logic::L0);
  const rtl::ProcessId pid = clocked("fifo", clk_, [this] { on_clk(); });
  wake_on(pid, {rst_.id(), push.id(), pop.id()});
}

void SyncFifo::on_clk() {
  if (rst_.read_bool()) {
    store_.clear();
    refresh_outputs();
    return;
  }
  // Pop first so a simultaneous push into a full FIFO succeeds when the pop
  // frees a slot (standard synchronous FIFO semantics).
  if (pop.read_bool() && !store_.empty()) {
    store_.pop_front();
    ++pops_;
  }
  if (push.read_bool()) {
    if (store_.size() >= depth_) {
      ++drops_;
    } else {
      store_.push_back(din.read());
      ++pushes_;
      max_occupancy_ = std::max(max_occupancy_, store_.size());
    }
  }
  refresh_outputs();
  if (!push.read_bool() && !pop.read_bool()) {
    // Neither side is moving data; the store (and hence every output) stays
    // put until push or pop (or rst) changes.
    gate();
  }
}

void SyncFifo::refresh_outputs() {
  empty.write(rtl::from_bool(store_.empty()));
  full.write(rtl::from_bool(store_.size() >= depth_));
  occupancy.write_uint(store_.size());
  if (!store_.empty()) {
    dout.write(store_.front());
  }
}

}  // namespace castanet::hw

// Early packet discard (EPD).
//
// Romanow & Floyd's classic ATM result: when a congested buffer drops
// individual cells, every partially-damaged AAL5 frame still occupies
// downstream capacity only to fail its CRC at reassembly — goodput
// collapses.  EPD instead decides at *frame boundaries*: if the queue is
// beyond a threshold when a frame's first cell arrives, the whole frame is
// dropped (and, once any cell of a frame is lost, the rest is discarded
// too — partial packet discard).  The unit sits in front of a cell queue
// and tracks per-VC frame state from the AAL5 end-of-PDU bit.
#pragma once

#include <unordered_map>

#include "src/atm/cell.hpp"
#include "src/atm/connection.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

class EarlyPacketDiscard : public rtl::Module {
 public:
  /// Admission runs against `occupancy_in` (the downstream queue's fill
  /// level, e.g. SyncFifo::occupancy): a frame whose first cell arrives
  /// with occupancy >= threshold is discarded in full.
  EarlyPacketDiscard(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                     rtl::Signal rst, rtl::Bus cell_in, rtl::Signal in_valid,
                     rtl::Bus occupancy_in, std::size_t threshold,
                     bool enable_epd = true);

  rtl::Bus cell_out;
  rtl::Signal out_valid;

  /// With EPD disabled the unit passes everything (tail-drop baseline).
  void set_enabled(bool on) { enabled_ = on; }

  std::uint64_t cells_passed() const { return passed_; }
  std::uint64_t cells_discarded() const { return discarded_; }
  std::uint64_t frames_discarded() const { return frames_discarded_; }

 private:
  void on_clk();

  rtl::Signal clk_;
  rtl::Signal rst_;
  rtl::Bus cell_in_;
  rtl::Signal in_valid_;
  rtl::Bus occupancy_in_;
  std::size_t threshold_;
  bool enabled_;
  struct VcState {
    bool mid_frame = false;   ///< an admitted frame is in progress
    bool discarding = false;  ///< the current frame was condemned
  };
  std::unordered_map<atm::VcId, VcState, atm::VcIdHash> vc_state_;
  std::uint64_t passed_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t frames_discarded_ = 0;
};

}  // namespace castanet::hw

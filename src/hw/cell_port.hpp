// The byte-serial cell interface of Fig. 4:
//   atmdata : STD_LOGIC_VECTOR(7 DOWNTO 0) — one octet per clock
//   cellsync: '1' during the first octet of a cell
//   valid   : '1' while an assigned octet is on the lane
// plus helper classes to drive and observe such a port from test benches and
// from the co-simulation entity.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "src/atm/cell.hpp"
#include "src/rtl/module.hpp"

namespace castanet::hw {

/// Signal bundle of one serial cell lane.
struct CellPort {
  rtl::Bus data;      ///< 8 bits
  rtl::Signal sync;   ///< first-octet marker
  rtl::Signal valid;  ///< octet valid
};

/// Creates the three signals of a port with hierarchical names.
CellPort make_cell_port(rtl::Simulator& sim, const std::string& prefix);

/// Drives cells onto a CellPort, one octet per rising clock edge, from a
/// software queue.  Gaps (no queued cell) drive valid='0'.  This is the
/// bit-level output half of the co-simulation entity's signal conditioning.
class CellPortDriver : public rtl::Module {
 public:
  CellPortDriver(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                 CellPort port);

  /// Enqueues a cell for transmission (takes 53 clock edges).
  void enqueue(const atm::Cell& c);
  /// Enqueues raw 53-byte data (for HEC-corrupted conformance vectors).
  void enqueue_bytes(const std::array<std::uint8_t, atm::kCellBytes>& bytes);
  bool idle() const { return buffer_.empty(); }
  std::size_t backlog_cells() const { return buffer_.size() / atm::kCellBytes; }
  std::uint64_t cells_driven() const { return cells_driven_; }

 private:
  void on_clk();

  rtl::Signal clk_;
  CellPort port_;
  rtl::ProcessId pid_ = 0;           // for wake_process() from enqueue
  std::deque<std::uint8_t> buffer_;  // flat octet stream; sync every 53
  std::size_t phase_ = 0;            // octet index within current cell
  std::uint64_t cells_driven_ = 0;
};

/// Observes a CellPort, reassembling octets into cells; the input half of
/// the co-simulation entity (DUT responses back to the abstract level).
class CellPortMonitor : public rtl::Module {
 public:
  using CellCallback = std::function<void(const atm::Cell&)>;

  CellPortMonitor(rtl::Simulator& sim, std::string name, rtl::Signal clk,
                  CellPort port, bool check_hec = true);

  void set_callback(CellCallback cb) { callback_ = std::move(cb); }
  const std::vector<atm::Cell>& cells() const { return cells_; }
  std::uint64_t hec_discards() const { return hec_discards_; }
  std::uint64_t framing_errors() const { return framing_errors_; }

 private:
  void on_clk();

  rtl::Signal clk_;
  CellPort port_;
  bool check_hec_;
  std::array<std::uint8_t, atm::kCellBytes> shift_{};
  std::size_t count_ = 0;
  std::vector<atm::Cell> cells_;
  CellCallback callback_;
  std::uint64_t hec_discards_ = 0;
  std::uint64_t framing_errors_ = 0;
};

}  // namespace castanet::hw

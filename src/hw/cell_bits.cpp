#include "src/hw/cell_bits.hpp"

#include "src/core/error.hpp"

namespace castanet::hw {

rtl::LogicVector cell_to_bits(const atm::Cell& c) {
  const auto bytes = c.to_bytes();
  rtl::LogicVector v(kCellBits);
  for (std::size_t j = 0; j < atm::kCellBytes; ++j) {
    for (std::size_t i = 0; i < 8; ++i) {
      v.set_bit(8 * j + i, rtl::from_bool((bytes[j] >> i) & 1));
    }
  }
  return v;
}

atm::Cell bits_to_cell(const rtl::LogicVector& v, bool check_hec) {
  require(v.width() == kCellBits, "bits_to_cell: expected 424-bit vector");
  std::uint8_t bytes[atm::kCellBytes];
  for (std::size_t j = 0; j < atm::kCellBytes; ++j) {
    std::uint8_t b = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const rtl::Logic bit = v.bit(8 * j + i);
      if (!rtl::is_01(bit)) {
        throw LogicError("bits_to_cell: undefined bit in cell bus");
      }
      if (rtl::to_bool(bit)) b |= static_cast<std::uint8_t>(1u << i);
    }
    bytes[j] = b;
  }
  return atm::Cell::from_bytes(bytes, check_hec);
}

rtl::LogicVector byte_to_bits(std::uint8_t b) {
  return rtl::LogicVector::from_uint(b, 8);
}

std::uint8_t bits_to_byte(const rtl::LogicVector& v) {
  require(v.width() == 8, "bits_to_byte: expected 8-bit vector");
  return static_cast<std::uint8_t>(v.to_uint());
}

}  // namespace castanet::hw

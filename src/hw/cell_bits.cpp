#include "src/hw/cell_bits.hpp"

#include <algorithm>

#include "src/core/error.hpp"

namespace castanet::hw {

rtl::LogicVector cell_to_bits(const atm::Cell& c) {
  const auto bytes = c.to_bytes();
  rtl::LogicVector v(kCellBits);
  // 7 plane-word stores instead of 424 set_bit calls: cells are always
  // fully two-valued, so each 64-bit chunk loads straight into the value
  // plane.
  for (std::size_t w = 0; w * 8 < atm::kCellBytes; ++w) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, atm::kCellBytes - w * 8);
    for (std::size_t j = 0; j < n; ++j) {
      word |= static_cast<std::uint64_t>(bytes[w * 8 + j]) << (8 * j);
    }
    v.set_value_word(w, word);
  }
  return v;
}

atm::Cell bits_to_cell(const rtl::LogicVector& v, bool check_hec) {
  require(v.width() == kCellBits, "bits_to_cell: expected 424-bit vector");
  if (!v.is_defined()) {
    // Cold path: locate the offending bit for the diagnostic.
    for (std::size_t i = 0; i < kCellBits; ++i) {
      if (!rtl::is_01(v.bit(i))) {
        throw LogicError("bits_to_cell: undefined bit in cell bus");
      }
    }
  }
  std::uint8_t bytes[atm::kCellBytes];
  for (std::size_t w = 0; w * 8 < atm::kCellBytes; ++w) {
    std::uint64_t word = v.value_word(w);
    const std::size_t n = std::min<std::size_t>(8, atm::kCellBytes - w * 8);
    for (std::size_t j = 0; j < n; ++j) {
      bytes[w * 8 + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return atm::Cell::from_bytes(bytes, check_hec);
}

rtl::LogicVector byte_to_bits(std::uint8_t b) {
  return rtl::LogicVector::from_uint(b, 8);
}

std::uint8_t bits_to_byte(const rtl::LogicVector& v) {
  require(v.width() == 8, "bits_to_byte: expected 8-bit vector");
  return static_cast<std::uint8_t>(v.to_uint());
}

}  // namespace castanet::hw

// Device-under-test models plugged into the hardware test board.
//
// The paper connects a fabricated prototype chip; we have no silicon, so a
// BehavioralDut is the substitution (documented in DESIGN.md): a model
// stepped one board clock at a time through plain port values.  The
// RtlDutAdapter wraps a module elaborated on a private rtl::Simulator, and —
// crucially — models the one property silicon has that functional simulation
// lacks (§3.3): above its rated clock frequency it exhibits *timing
// violations*, realized as periodic setup failures on its input registers.
// Real-time verification on the board therefore finds speed-dependent bugs
// a VHDL simulation run cannot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/rtl/module.hpp"

namespace castanet::board {

class BehavioralDut {
 public:
  virtual ~BehavioralDut() = default;

  virtual void reset() = 0;
  /// One DUT clock: `inputs[i]` is input port i's value this cycle;
  /// `input_enable[i]` false means the tester releases that port (high-Z) —
  /// the DUT-drive phase of a bidirectional bus.  Implementations fill
  /// `outputs[o]` and set `output_enable[o]` false where the DUT releases
  /// the port.
  virtual void cycle(const std::vector<std::uint64_t>& inputs,
                     const std::vector<bool>& input_enable,
                     std::vector<std::uint64_t>& outputs,
                     std::vector<bool>& output_enable) = 0;
  virtual std::size_t num_inputs() const = 0;
  virtual std::size_t num_outputs() const = 0;
};

/// Runs an RTL design as the board DUT.  The caller elaborates modules on
/// the adapter's simulator and registers the pin-level ports.
class RtlDutAdapter : public BehavioralDut {
 public:
  RtlDutAdapter();
  ~RtlDutAdapter() override;

  /// The private simulator to elaborate the design on (before first cycle).
  rtl::Simulator& sim() { return *sim_; }
  /// Takes ownership of an elaborated module (keeps it alive with the
  /// adapter; the simulator itself only holds signals and processes).
  template <typename T>
  T& own(std::unique_ptr<T> module) {
    T& ref = *module;
    owned_.push_back(std::move(module));
    return ref;
  }
  /// Clock/reset signals the adapter toggles; create and pass in.
  void set_clock(rtl::Signal clk) { clk_ = clk; }
  void set_reset(rtl::Signal rst) { rst_ = rst; }
  /// Registers input port i (order of calls defines the index).
  void add_input(rtl::Bus bus);
  /// Registers output port o.  A port reading all-Z reports enable=false.
  void add_output(rtl::Bus bus);

  /// Rated maximum clock of the (virtual) silicon.  When the board steps the
  /// DUT faster than this, every `fault_period`-th cycle suffers a setup
  /// violation: the input registers keep their previous values.
  void set_max_safe_hz(std::uint64_t hz, std::uint64_t fault_period = 97);
  /// Clock the adapter is being stepped at (the board sets this).
  void set_actual_hz(std::uint64_t hz) { actual_hz_ = hz; }

  void reset() override;
  void cycle(const std::vector<std::uint64_t>& inputs,
             const std::vector<bool>& input_enable,
             std::vector<std::uint64_t>& outputs,
             std::vector<bool>& output_enable) override;
  std::size_t num_inputs() const override { return inputs_.size(); }
  std::size_t num_outputs() const override { return outputs_.size(); }

  std::uint64_t timing_violations() const { return timing_violations_; }
  std::uint64_t cycles() const { return cycle_count_; }

 private:
  std::unique_ptr<rtl::Simulator> sim_;
  std::vector<std::unique_ptr<rtl::Module>> owned_;
  rtl::Signal clk_;
  rtl::Signal rst_;
  std::vector<rtl::Bus> inputs_;
  std::vector<rtl::Bus> outputs_;
  SimTime period_ = SimTime::from_ns(50);
  std::uint64_t max_safe_hz_ = 0;  ///< 0 = never violates
  std::uint64_t fault_period_ = 97;
  std::uint64_t actual_hz_ = kMaxBoardClockHzDefault;
  std::uint64_t cycle_count_ = 0;
  std::uint64_t timing_violations_ = 0;

  static constexpr std::uint64_t kMaxBoardClockHzDefault = 20'000'000;

  void step_clock();
};

}  // namespace castanet::board

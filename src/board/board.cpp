#include "src/board/board.hpp"

#include <algorithm>

#include "src/core/error.hpp"

namespace castanet::board {

HardwareTestBoard::HardwareTestBoard(ScsiChannel::Params scsi)
    : scsi_(scsi) {}

void HardwareTestBoard::configure(const ConfigDataSet& cfg) {
  cfg.validate();
  cfg_ = cfg;
  configured_ = true;
  stimulus_.clear();
  ctrl_stimulus_.clear();
  captures_.clear();
  // Uploading the configuration data set costs a (small) SCSI transfer.
  const std::uint64_t cfg_bytes =
      16 * (cfg.inports.size() + cfg.outports.size() + cfg.ctrlports.size() +
            cfg.ioports.size());
  scsi_.transfer(cfg_bytes);
}

void HardwareTestBoard::load_stimulus(unsigned inport,
                                      std::vector<std::uint64_t> values) {
  require(configured_, "board: configure() before load_stimulus()");
  const bool known = std::any_of(
      cfg_.inports.begin(), cfg_.inports.end(),
      [&](const InportMapping& m) { return m.inport == inport; });
  if (!known) {
    throw ConfigError("load_stimulus: inport " + std::to_string(inport) +
                      " not in configuration data set");
  }
  if (values.size() > kMaxTestCycle) {
    throw ConfigError("load_stimulus: exceeds vector memory depth");
  }
  stimulus_[inport] = std::move(values);
}

void HardwareTestBoard::load_ctrl(unsigned ctrlport,
                                  std::vector<std::uint64_t> values) {
  require(configured_, "board: configure() before load_ctrl()");
  const bool known = std::any_of(
      cfg_.ctrlports.begin(), cfg_.ctrlports.end(),
      [&](const CtrlportMapping& m) { return m.ctrlport == ctrlport; });
  if (!known) {
    throw ConfigError("load_ctrl: ctrlport " + std::to_string(ctrlport) +
                      " not in configuration data set");
  }
  if (values.size() > kMaxTestCycle) {
    throw ConfigError("load_ctrl: exceeds vector memory depth");
  }
  ctrl_stimulus_[ctrlport] = std::move(values);
}

std::uint64_t HardwareTestBoard::stimulus_length() const {
  std::uint64_t n = 0;
  for (const auto& [port, v] : stimulus_) {
    n = std::max<std::uint64_t>(n, v.size());
  }
  for (const auto& [port, v] : ctrl_stimulus_) {
    n = std::max<std::uint64_t>(n, v.size());
  }
  return n;
}

HardwareTestBoard::RunStats HardwareTestBoard::run_test_cycle(
    BehavioralDut& dut, std::uint64_t duration, std::uint64_t clock_hz) {
  require(configured_, "board: configure() before run_test_cycle()");
  if (clock_hz == 0 || clock_hz > kMaxBoardClockHz) {
    throw ConfigError("board: clock beyond the 20 MHz board maximum");
  }
  if (duration == 0) duration = stimulus_length();
  if (duration == 0 || duration > kMaxTestCycle) {
    throw ConfigError("board: test cycle duration must be in 1.." +
                      std::to_string(kMaxTestCycle));
  }
  require(dut.num_inputs() >= cfg_.inports.size() &&
              dut.num_outputs() >= cfg_.outports.size(),
          "board: DUT has fewer ports than the configuration maps");

  RunStats stats;
  stats.cycles = duration;

  // --- software activity: store stimuli into the board memories ----------
  std::uint64_t stim_bytes = 0;
  for (const auto& [port, v] : stimulus_) stim_bytes += v.size() * 8;
  for (const auto& [port, v] : ctrl_stimulus_) stim_bytes += v.size() * 8;
  stats.sw_time += scsi_.transfer(stim_bytes);

  // Indexed views of the mappings.
  std::unordered_map<unsigned, const IoPortMapping*> io_by_inport;
  std::unordered_map<unsigned, const IoPortMapping*> io_by_outport;
  for (const IoPortMapping& m : cfg_.ioports) {
    io_by_inport[m.inport] = &m;
    io_by_outport[m.outport] = &m;
  }
  auto ctrl_value = [&](unsigned ctrlport, std::uint64_t cycle) {
    auto it = ctrl_stimulus_.find(ctrlport);
    if (it != ctrl_stimulus_.end() && cycle < it->second.size()) {
      return it->second[cycle];
    }
    for (const CtrlportMapping& m : cfg_.ctrlports) {
      if (m.ctrlport == ctrlport) return m.write_value;
    }
    return std::uint64_t{0};
  };

  for (auto& [port, cap] : captures_) {
    cap.values.clear();
    cap.enabled.clear();
  }
  for (const OutportMapping& m : cfg_.outports) {
    captures_[m.outport].values.reserve(duration);
    captures_[m.outport].enabled.reserve(duration);
  }

  // --- hardware activity: real-time replay -------------------------------
  const std::uint64_t dut_hz = clock_hz / cfg_.gating_factor;
  if (auto* rtl_dut = dynamic_cast<RtlDutAdapter*>(&dut)) {
    rtl_dut->set_actual_hz(dut_hz);
  }
  std::vector<std::uint64_t> in_vals(dut.num_inputs(), 0);
  std::vector<bool> in_en(dut.num_inputs(), true);
  std::vector<std::uint64_t> out_vals;
  std::vector<bool> out_en;
  for (std::uint64_t c = 0; c < duration; ++c) {
    for (const InportMapping& m : cfg_.inports) {
      auto it = stimulus_.find(m.inport);
      const std::uint64_t v =
          (it != stimulus_.end() && c < it->second.size()) ? it->second[c] : 0;
      in_vals[m.inport] = v;
      bool enable = true;
      if (auto io = io_by_inport.find(m.inport); io != io_by_inport.end()) {
        // Tester releases the shared bus while the DUT drives it.
        enable = ctrl_value(io->second->ctrlport, c) !=
                 io->second->dut_drives_value;
      }
      in_en[m.inport] = enable;
    }
    dut.cycle(in_vals, in_en, out_vals, out_en);
    for (const OutportMapping& m : cfg_.outports) {
      bool capture_enabled = m.outport < out_en.size() && out_en[m.outport];
      if (auto io = io_by_outport.find(m.outport); io != io_by_outport.end()) {
        if (ctrl_value(io->second->ctrlport, c) !=
            io->second->dut_drives_value) {
          capture_enabled = false;  // tester-drive phase: nothing to capture
        }
      }
      captures_[m.outport].values.push_back(
          m.outport < out_vals.size() ? out_vals[m.outport] : 0);
      captures_[m.outport].enabled.push_back(capture_enabled);
    }
  }
  stats.hw_time = SimTime::from_ps(static_cast<std::int64_t>(
      static_cast<double>(duration) / static_cast<double>(dut_hz) * 1e12));

  // --- software activity: read responses back ----------------------------
  const std::uint64_t resp_bytes = duration * 8 * cfg_.outports.size();
  stats.sw_time += scsi_.transfer(resp_bytes);

  ++test_cycles_run_;
  return stats;
}

const HardwareTestBoard::Capture& HardwareTestBoard::response(
    unsigned outport) const {
  auto it = captures_.find(outport);
  if (it == captures_.end()) {
    throw LogicError("board: no capture for outport " +
                     std::to_string(outport));
  }
  return it->second;
}

}  // namespace castanet::board

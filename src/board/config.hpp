// Configuration data set of the hardware test board (Fig. 5).
//
// The board exposes a bit-stream interface of 128 I/O pins organized as 16
// byte lanes, each configurable in direction and speed (§3.3 — the paper's
// scan shows garbled numerals; we use 128 pins / 16 lanes, consistent with
// the figure's "byte lane 16").  The configuration data set collects, per
// logical DUT port, the byte-lane ID, start bit position and number of bits,
// from which the board derives the input-port, output-port, I/O-port and
// control-port mappings automatically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace castanet::board {

constexpr std::size_t kByteLanes = 16;
constexpr std::size_t kPinsPerLane = 8;
constexpr std::size_t kPins = kByteLanes * kPinsPerLane;  // 128
/// Test cycle durations supported by the vector memories (§3.3: "between 1
/// and 2^20 clock cycles" in our reading of the scan).
constexpr std::uint64_t kMaxTestCycle = 1u << 20;
/// Maximum board clock (§3.3: 20 MHz).
constexpr std::uint64_t kMaxBoardClockHz = 20'000'000;

/// A contiguous run of bits on one byte lane.
struct LaneSlice {
  std::uint8_t byte_lane = 0;  ///< 0..15
  std::uint8_t start_bit = 0;  ///< 0..7, LSB of the slice within the lane
  std::uint8_t nbits = 0;      ///< 1..8
};

/// Stimulus port: tester drives the DUT.
struct InportMapping {
  unsigned inport = 0;           ///< logical DUT input port number
  unsigned width = 0;            ///< total bits; sum of slice widths
  std::vector<LaneSlice> slices; ///< LSB-first
};

/// Response port: DUT drives the tester.
struct OutportMapping {
  unsigned outport = 0;
  unsigned width = 0;
  std::vector<LaneSlice> slices;
};

/// Control port: a tester-driven pin group with a fixed per-test-cycle
/// write value (Fig. 5 "Ctrlport-Mappings: Ctrlport-Number, Write-Value").
/// Used for direction control of I/O ports and for run-length signalling.
struct CtrlportMapping {
  unsigned ctrlport = 0;
  unsigned width = 1;
  std::vector<LaneSlice> slices;
  std::uint64_t write_value = 0;
};

/// Bidirectional bus port: "bus interfaces need to be modeled by three
/// bit-level signals input, output and a control signal indicating the
/// direction through predefined read/write flags" (§3.3).
struct IoPortMapping {
  unsigned inport = 0;    ///< tester->DUT data path
  unsigned outport = 0;   ///< DUT->tester data path
  unsigned ctrlport = 0;  ///< direction control
  unsigned width = 0;
  /// Ctrl-port value meaning "DUT drives" (read flag); anything else means
  /// the tester drives.
  std::uint64_t dut_drives_value = 1;
};

struct ConfigDataSet {
  std::vector<InportMapping> inports;
  std::vector<OutportMapping> outports;
  std::vector<CtrlportMapping> ctrlports;
  std::vector<IoPortMapping> ioports;

  /// Board clock divider (clock gating factor, §3.3): effective DUT clock =
  /// board clock / gating_factor.
  unsigned gating_factor = 1;

  /// Validates lane ranges, overlap rules (tester-driven slices must not
  /// overlap each other; DUT-driven slices must not overlap each other or
  /// tester-driven ones) and width consistency.  Throws ConfigError.
  void validate() const;
};

/// Packs `value` into `lane_bytes` (one byte per lane) per the slices.
void pack_slices(const std::vector<LaneSlice>& slices, std::uint64_t value,
                 std::uint8_t lane_bytes[kByteLanes]);
/// Extracts the port value from lane bytes per the slices.
std::uint64_t unpack_slices(const std::vector<LaneSlice>& slices,
                            const std::uint8_t lane_bytes[kByteLanes]);

}  // namespace castanet::board

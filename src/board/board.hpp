// The hardware test board (RAVEN, [16] in the paper).
//
// "The hardware test board consists of a control part and multiple memory
// units for intermediate data storage of test vectors.  It provides a bit
// stream interface and a clock interface to which the hardware device under
// test is connected. … The real-time verification process consists of
// repeated hardware activity cycles, interrupted by a software activity
// cycle" (§3.3).
//
// Flow per test cycle:
//   1. software activity: generate stimuli, configure the board, store
//      stimulus vectors into the lane memories (transfer modeled by the
//      ScsiChannel);
//   2. hardware activity: step the DUT `duration` clock cycles at real-time
//      speed, replaying stimulus lanes and capturing response lanes;
//   3. software activity: read the capture memories back.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/board/config.hpp"
#include "src/board/dut.hpp"
#include "src/board/scsi.hpp"

namespace castanet::board {

class HardwareTestBoard {
 public:
  explicit HardwareTestBoard(ScsiChannel::Params scsi = {});

  /// Validates and installs the configuration data set; clears memories.
  /// The configuration upload itself costs one SCSI transfer.
  void configure(const ConfigDataSet& cfg);

  /// Loads per-cycle stimulus values for `inport` (index c = board cycle c).
  void load_stimulus(unsigned inport, std::vector<std::uint64_t> values);
  /// Loads per-cycle values for a control port, overriding its static
  /// write_value (used for per-cycle bus direction control).
  void load_ctrl(unsigned ctrlport, std::vector<std::uint64_t> values);

  /// Runs one hardware activity cycle of `duration` board clocks at
  /// `clock_hz` (<= 20 MHz; the DUT sees clock_hz / gating_factor).
  /// `duration` 0 derives the duration automatically from the longest
  /// loaded stimulus (§3.3's automatic calculation from control-port data).
  struct RunStats {
    std::uint64_t cycles = 0;
    SimTime sw_time;        ///< modeled software-activity time (SCSI + prep)
    SimTime hw_time;        ///< modeled hardware-activity time
    SimTime total() const { return sw_time + hw_time; }
  };
  RunStats run_test_cycle(BehavioralDut& dut, std::uint64_t duration = 0,
                          std::uint64_t clock_hz = kMaxBoardClockHz);

  /// Captured response of `outport`, one value per cycle of the last run;
  /// `enabled` tells whether the DUT actually drove the port that cycle.
  struct Capture {
    std::vector<std::uint64_t> values;
    std::vector<bool> enabled;
  };
  const Capture& response(unsigned outport) const;

  const ScsiChannel& scsi() const { return scsi_; }
  std::uint64_t test_cycles_run() const { return test_cycles_run_; }
  const ConfigDataSet& config() const { return cfg_; }

 private:
  std::uint64_t stimulus_length() const;

  ScsiChannel scsi_;
  ConfigDataSet cfg_;
  bool configured_ = false;
  std::unordered_map<unsigned, std::vector<std::uint64_t>> stimulus_;
  std::unordered_map<unsigned, std::vector<std::uint64_t>> ctrl_stimulus_;
  std::unordered_map<unsigned, Capture> captures_;
  std::uint64_t test_cycles_run_ = 0;
};

}  // namespace castanet::board

// Board self-test: walking-ones pin verification.
//
// Before trusting a hardware test board with a DUT, bring-up verifies every
// I/O pin and lane memory: a loopback plug connects input lanes to output
// lanes, a walking-ones pattern (plus all-zero / all-one frames) is replayed
// through the vector memories, and the captures must match bit-exactly.
// Any stuck-at or shorted pin shows up as a specific failing (lane, bit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/board/board.hpp"

namespace castanet::board {

/// The loopback plug: a BehavioralDut that echoes each input port to the
/// output port of the same index, one cycle later (registered loopback).
/// `stuck_mask` forces output bits low (fault injection for the self-test's
/// own verification).
class LoopbackDut : public BehavioralDut {
 public:
  explicit LoopbackDut(std::size_t ports, std::uint64_t stuck_mask = 0);

  void reset() override;
  void cycle(const std::vector<std::uint64_t>& inputs,
             const std::vector<bool>& input_enable,
             std::vector<std::uint64_t>& outputs,
             std::vector<bool>& output_enable) override;
  std::size_t num_inputs() const override { return ports_; }
  std::size_t num_outputs() const override { return ports_; }

 private:
  std::size_t ports_;
  std::uint64_t stuck_mask_;
  std::vector<std::uint64_t> reg_;
};

struct SelfTestReport {
  bool passed = false;
  std::uint64_t patterns_checked = 0;
  /// One line per failing (port, cycle, expected, got).
  std::vector<std::string> failures;
};

/// Runs the walking-ones self-test over `lanes` paired byte lanes
/// (input lane i <-> output lane 8+i) through `dut` (normally a
/// LoopbackDut).  Exercises every bit of every configured lane plus the
/// all-0 / all-1 frames.
SelfTestReport run_walking_ones(HardwareTestBoard& board, BehavioralDut& dut,
                                std::size_t lanes = 8);

}  // namespace castanet::board

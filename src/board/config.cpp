#include "src/board/config.hpp"

#include <algorithm>
#include <array>

#include "src/core/error.hpp"

namespace castanet::board {

namespace {

unsigned total_bits(const std::vector<LaneSlice>& slices) {
  unsigned n = 0;
  for (const LaneSlice& s : slices) n += s.nbits;
  return n;
}

void check_slice(const LaneSlice& s, const std::string& what) {
  if (s.byte_lane >= kByteLanes) {
    throw ConfigError(what + ": byte lane " + std::to_string(s.byte_lane) +
                      " out of range");
  }
  if (s.nbits == 0 || s.nbits > kPinsPerLane ||
      s.start_bit + s.nbits > kPinsPerLane) {
    throw ConfigError(what + ": slice bits [" + std::to_string(s.start_bit) +
                      "+" + std::to_string(s.nbits) + ") exceed lane width");
  }
}

// Marks the pins of `slices` in `used`, complaining about double use.
void claim_pins(const std::vector<LaneSlice>& slices,
                std::array<bool, kPins>& used, const std::string& what) {
  for (const LaneSlice& s : slices) {
    for (unsigned b = 0; b < s.nbits; ++b) {
      const std::size_t pin = s.byte_lane * kPinsPerLane + s.start_bit + b;
      if (used[pin]) {
        throw ConfigError(what + ": pin " + std::to_string(pin) +
                          " mapped twice in the same direction");
      }
      used[pin] = true;
    }
  }
}

// Port IDs are the lookup keys of the mapping tables: a duplicate silently
// shadows its twin on lookup, so reject it outright.
template <typename Mapping, typename Id>
void check_unique_ids(const std::vector<Mapping>& maps, Id Mapping::*id,
                      const std::string& what) {
  for (std::size_t i = 0; i < maps.size(); ++i) {
    for (std::size_t j = i + 1; j < maps.size(); ++j) {
      if (maps[i].*id == maps[j].*id) {
        throw ConfigError(what + " " + std::to_string(maps[i].*id) +
                          " declared more than once");
      }
    }
  }
}

}  // namespace

void ConfigDataSet::validate() const {
  if (gating_factor == 0) {
    throw ConfigError("ConfigDataSet: gating factor must be >= 1");
  }
  check_unique_ids(inports, &InportMapping::inport, "inport");
  check_unique_ids(outports, &OutportMapping::outport, "outport");
  check_unique_ids(ctrlports, &CtrlportMapping::ctrlport, "ctrlport");
  std::array<bool, kPins> tester_driven{};
  std::array<bool, kPins> dut_driven{};

  for (const InportMapping& m : inports) {
    if (m.width == 0 || m.width != total_bits(m.slices)) {
      throw ConfigError("inport " + std::to_string(m.inport) +
                        ": width does not match slices");
    }
    for (const LaneSlice& s : m.slices) check_slice(s, "inport");
    claim_pins(m.slices, tester_driven, "inport");
  }
  for (const CtrlportMapping& m : ctrlports) {
    if (m.width == 0 || m.width != total_bits(m.slices)) {
      throw ConfigError("ctrlport " + std::to_string(m.ctrlport) +
                        ": width does not match slices");
    }
    if (m.width < 64 && m.write_value >> m.width != 0) {
      throw ConfigError("ctrlport " + std::to_string(m.ctrlport) +
                        ": write value exceeds width");
    }
    for (const LaneSlice& s : m.slices) check_slice(s, "ctrlport");
    claim_pins(m.slices, tester_driven, "ctrlport");
  }
  for (const OutportMapping& m : outports) {
    if (m.width == 0 || m.width != total_bits(m.slices)) {
      throw ConfigError("outport " + std::to_string(m.outport) +
                        ": width does not match slices");
    }
    for (const LaneSlice& s : m.slices) check_slice(s, "outport");
    claim_pins(m.slices, dut_driven, "outport");
    // Outport pins must not collide with tester-driven pins (unless paired
    // through an I/O-port mapping — those share the pins by design and are
    // validated below by construction of the in/out pair).
  }
  for (const IoPortMapping& m : ioports) {
    const auto in_it =
        std::find_if(inports.begin(), inports.end(),
                     [&](const InportMapping& i) { return i.inport == m.inport; });
    const auto out_it = std::find_if(
        outports.begin(), outports.end(),
        [&](const OutportMapping& o) { return o.outport == m.outport; });
    const auto ctl_it = std::find_if(
        ctrlports.begin(), ctrlports.end(),
        [&](const CtrlportMapping& c) { return c.ctrlport == m.ctrlport; });
    if (in_it == inports.end() || out_it == outports.end() ||
        ctl_it == ctrlports.end()) {
      throw ConfigError("ioport: references unknown in/out/ctrl port");
    }
    if (in_it->width != m.width || out_it->width != m.width) {
      throw ConfigError("ioport: width mismatch between paired ports");
    }
  }
}

void pack_slices(const std::vector<LaneSlice>& slices, std::uint64_t value,
                 std::uint8_t lane_bytes[kByteLanes]) {
  unsigned consumed = 0;
  for (const LaneSlice& s : slices) {
    const auto chunk =
        static_cast<std::uint8_t>(value >> consumed & ((1u << s.nbits) - 1));
    const std::uint8_t mask =
        static_cast<std::uint8_t>(((1u << s.nbits) - 1) << s.start_bit);
    lane_bytes[s.byte_lane] = static_cast<std::uint8_t>(
        (lane_bytes[s.byte_lane] & ~mask) |
        (static_cast<std::uint8_t>(chunk << s.start_bit) & mask));
    consumed += s.nbits;
  }
}

std::uint64_t unpack_slices(const std::vector<LaneSlice>& slices,
                            const std::uint8_t lane_bytes[kByteLanes]) {
  std::uint64_t value = 0;
  unsigned consumed = 0;
  for (const LaneSlice& s : slices) {
    const std::uint8_t chunk = static_cast<std::uint8_t>(
        lane_bytes[s.byte_lane] >> s.start_bit & ((1u << s.nbits) - 1));
    value |= static_cast<std::uint64_t>(chunk) << consumed;
    consumed += s.nbits;
  }
  return value;
}

}  // namespace castanet::board

#include "src/board/scsi.hpp"

namespace castanet::board {

SimTime ScsiChannel::transfer(std::uint64_t bytes) {
  const SimTime payload = SimTime::from_ps(static_cast<std::int64_t>(
      static_cast<double>(bytes) /
      static_cast<double>(p_.bandwidth_bytes_per_sec) * 1e12));
  const SimTime t = p_.command_overhead + payload;
  total_bytes_ += bytes;
  ++transfers_;
  total_time_ += t;
  return t;
}

}  // namespace castanet::board

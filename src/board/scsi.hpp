// SCSI bus transfer-time model.
//
// The test board hangs off the workstation's SCSI bus (Fig. 2).  For the
// throughput experiments we model each software-activity transfer as
// per-command setup latency plus payload over the bus bandwidth — the
// quantities that make short hardware test cycles overhead-dominated.
#pragma once

#include <cstdint>

#include "src/dsim/time.hpp"

namespace castanet::board {

class ScsiChannel {
 public:
  struct Params {
    SimTime command_overhead = SimTime::from_us(500);  ///< per transfer
    std::uint64_t bandwidth_bytes_per_sec = 10'000'000; ///< fast SCSI-2
  };

  ScsiChannel() = default;
  explicit ScsiChannel(Params p) : p_(p) {}

  /// Models one transfer of `bytes`; returns its duration and accumulates
  /// totals.
  SimTime transfer(std::uint64_t bytes);

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t transfers() const { return transfers_; }
  SimTime total_time() const { return total_time_; }

 private:
  Params p_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t transfers_ = 0;
  SimTime total_time_ = SimTime::zero();
};

}  // namespace castanet::board

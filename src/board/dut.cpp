#include "src/board/dut.hpp"

#include "src/core/error.hpp"

namespace castanet::board {

RtlDutAdapter::RtlDutAdapter() : sim_(std::make_unique<rtl::Simulator>()) {}
RtlDutAdapter::~RtlDutAdapter() = default;

void RtlDutAdapter::add_input(rtl::Bus bus) {
  require(bus.valid(), "RtlDutAdapter::add_input: invalid bus");
  inputs_.push_back(bus);
}

void RtlDutAdapter::add_output(rtl::Bus bus) {
  require(bus.valid(), "RtlDutAdapter::add_output: invalid bus");
  outputs_.push_back(bus);
}

void RtlDutAdapter::set_max_safe_hz(std::uint64_t hz,
                                    std::uint64_t fault_period) {
  require(fault_period > 0, "RtlDutAdapter: fault period must be > 0");
  max_safe_hz_ = hz;
  fault_period_ = fault_period;
}

void RtlDutAdapter::step_clock() {
  // Two half-periods per cycle; the concrete period only spaces events on
  // the adapter's private time axis.
  clk_.write(rtl::Logic::L1);
  sim_->run_until(sim_->now() + SimTime::from_ps(period_.ps() / 2));
  clk_.write(rtl::Logic::L0);
  sim_->run_until(sim_->now() + SimTime::from_ps(period_.ps() / 2));
}

void RtlDutAdapter::reset() {
  require(clk_.valid(), "RtlDutAdapter: clock not set");
  if (rst_.valid()) {
    rst_.write(rtl::Logic::L1);
    step_clock();
    step_clock();
    rst_.write(rtl::Logic::L0);
    step_clock();
  }
  cycle_count_ = 0;
  timing_violations_ = 0;
}

void RtlDutAdapter::cycle(const std::vector<std::uint64_t>& inputs,
                          const std::vector<bool>& input_enable,
                          std::vector<std::uint64_t>& outputs,
                          std::vector<bool>& output_enable) {
  require(inputs.size() == inputs_.size() &&
              input_enable.size() == inputs_.size(),
          "RtlDutAdapter::cycle: input count mismatch");
  ++cycle_count_;

  const bool violate = max_safe_hz_ != 0 && actual_hz_ > max_safe_hz_ &&
                       cycle_count_ % fault_period_ == 0;
  if (violate) {
    // Setup violation: the input registers miss this cycle's new values and
    // keep sampling the previous ones — inputs are simply not applied.
    ++timing_violations_;
  } else {
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      if (input_enable[i]) {
        inputs_[i].write_uint(inputs[i]);
      } else {
        inputs_[i].release();
      }
    }
  }
  step_clock();

  outputs.resize(outputs_.size());
  output_enable.assign(outputs_.size(), true);
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    const rtl::LogicVector& v = outputs_[o].read();
    bool all_z = true;
    std::uint64_t value = 0;
    for (std::size_t b = 0; b < v.width(); ++b) {
      const rtl::Logic bit = v.bit(b);
      if (bit != rtl::Logic::Z) all_z = false;
      if (rtl::to_bool(bit)) value |= std::uint64_t{1} << b;
    }
    outputs[o] = value;
    output_enable[o] = !all_z;
  }
}

}  // namespace castanet::board

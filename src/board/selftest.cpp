#include "src/board/selftest.hpp"

#include <sstream>

#include "src/core/error.hpp"

namespace castanet::board {

LoopbackDut::LoopbackDut(std::size_t ports, std::uint64_t stuck_mask)
    : ports_(ports), stuck_mask_(stuck_mask), reg_(ports, 0) {
  require(ports >= 1, "LoopbackDut: need at least one port");
}

void LoopbackDut::reset() { reg_.assign(ports_, 0); }

void LoopbackDut::cycle(const std::vector<std::uint64_t>& inputs,
                        const std::vector<bool>& input_enable,
                        std::vector<std::uint64_t>& outputs,
                        std::vector<bool>& output_enable) {
  outputs.resize(ports_);
  output_enable.assign(ports_, true);
  for (std::size_t p = 0; p < ports_; ++p) {
    outputs[p] = reg_[p] & ~stuck_mask_;
    reg_[p] = p < inputs.size() && input_enable[p] ? inputs[p] : 0;
  }
}

SelfTestReport run_walking_ones(HardwareTestBoard& board, BehavioralDut& dut,
                                std::size_t lanes) {
  require(lanes >= 1 && lanes <= 8, "run_walking_ones: 1..8 lane pairs");
  ConfigDataSet cfg;
  for (std::size_t l = 0; l < lanes; ++l) {
    cfg.inports.push_back({static_cast<unsigned>(l), 8,
                           {{static_cast<std::uint8_t>(l), 0, 8}}});
    cfg.outports.push_back({static_cast<unsigned>(l), 8,
                            {{static_cast<std::uint8_t>(8 + l), 0, 8}}});
  }
  board.configure(cfg);
  dut.reset();

  // Pattern sequence per lane: walking one (8 cycles), walking zero (8),
  // all-zero, all-one, then per-lane distinct bytes (crosstalk check).
  std::vector<std::vector<std::uint64_t>> stim(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    for (int b = 0; b < 8; ++b) stim[l].push_back(1u << b);
    for (int b = 0; b < 8; ++b) stim[l].push_back(0xFFu ^ (1u << b));
    stim[l].push_back(0x00);
    stim[l].push_back(0xFF);
    stim[l].push_back(static_cast<std::uint64_t>(0x11 * (l + 1)) & 0xFF);
    stim[l].push_back(0x00);  // flush cycle for the registered loopback
    board.load_stimulus(static_cast<unsigned>(l), stim[l]);
  }
  const std::uint64_t cycles = stim[0].size();
  board.run_test_cycle(dut, cycles);

  SelfTestReport report;
  report.passed = true;
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto& cap = board.response(static_cast<unsigned>(l));
    for (std::uint64_t c = 1; c < cycles; ++c) {
      const std::uint64_t want = stim[l][c - 1];  // one-cycle loopback
      ++report.patterns_checked;
      if (cap.values[c] != want) {
        report.passed = false;
        std::ostringstream os;
        os << "lane " << l << " cycle " << c << ": expected 0x" << std::hex
           << want << " got 0x" << cap.values[c];
        report.failures.push_back(os.str());
      }
    }
  }
  return report;
}

}  // namespace castanet::board

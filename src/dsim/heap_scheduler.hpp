// Reference event scheduler: binary heap + lazy cancellation.
//
// This is the pre-calendar-queue implementation of dsim::Scheduler, retained
// verbatim (modulo telemetry) as the ordering oracle.  The execution-order
// contract — events run in strict (time, priority, insertion-sequence)
// order — is defined by this class; the calendar queue in scheduler.hpp must
// match it bit-for-bit, which tests/dsim/test_scheduler_diff.cpp asserts
// across randomized schedule/cancel/advance/re-schedule mixes.  It is also
// the baseline bench_e9_sched_scale measures against: heap push/pop cost
// grows as log N with the pending-event count where the calendar queue stays
// flat.
//
// Not used on any production path — netsim, traffic, signaling and the sync
// layer all run on dsim::Scheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/dsim/time.hpp"

namespace castanet {

struct EventHandle;  // shared with Scheduler (scheduler.hpp)

class HeapScheduler {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  EventHandle schedule_at(SimTime when, Action action, int priority = 0);
  EventHandle schedule_in(SimTime delay, Action action, int priority = 0);

  /// Lazy cancellation: the slab slot is released immediately, but the dead
  /// heap entry stays queued until pop_dead() sifts it out.
  bool cancel(EventHandle h);

  bool empty() const { return live_count_ == 0; }
  SimTime next_event_time() const;

  bool step();
  std::uint64_t run_until(SimTime limit);
  std::uint64_t run(std::uint64_t max_events = 0);

  void advance_to(SimTime t);

  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return scheduled_; }

 private:
  struct Entry {
    SimTime when;
    int priority;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      if (priority != o.priority) return priority > o.priority;
      return seq > o.seq;
    }
  };
  struct Slot {
    Action action;
    std::uint64_t seq = 0;
  };

  void pop_dead();
  void release_slot(std::uint32_t slot);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t live_count_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace castanet

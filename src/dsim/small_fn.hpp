// Small-buffer callable for scheduler actions.
//
// std::function<void()> heap-allocates once per scheduled event for any
// capture beyond the library's tiny SBO (two pointers on libstdc++) — on the
// network-side hot path that is one malloc/free pair per cell hop.  SmallFn
// stores captures up to kInlineBytes in place, covering every in-tree
// scheduling site on the hot path (netsim's deliver lambda captures
// {Simulation*, ProcessModel*, unsigned, Packet} = 64 bytes; process/traffic
// self-timers capture {this, int} = 16), so steady-state schedule/execute is
// allocation-free — proven by tests/dsim/test_scheduler_alloc.cpp with a
// counting operator new.  Oversized or throwing-move captures (the session's
// TimedMessage replay lambda) fall back to a single heap cell with identical
// semantics.
//
// Move-only: the scheduler slab moves slots on growth, and captured Packets
// are themselves move-only-cheap.  A moved-from SmallFn is empty.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace castanet {

class SmallFn {
 public:
  /// Sized to the largest hot-path capture (netsim's packet-delivery lambda)
  /// plus headroom for one extra pointer-sized field.
  static constexpr std::size_t kInlineBytes = 72;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& o) noexcept { steal(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  SmallFn& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(&buf_); }

  /// True when the wrapped callable lives in the inline buffer (no heap).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    /// Move-constructs dst's payload from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf) noexcept;
    bool inline_stored;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  struct InlineOps {
    static void invoke(void* buf) { (*static_cast<F*>(buf))(); }
    static void relocate(void* dst, void* src) noexcept {
      F* s = static_cast<F*>(src);
      ::new (dst) F(std::move(*s));
      s->~F();
    }
    static void destroy(void* buf) noexcept { static_cast<F*>(buf)->~F(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true};
  };

  template <typename F>
  struct HeapOps {
    static F*& ptr(void* buf) { return *static_cast<F**>(buf); }
    static void invoke(void* buf) { (*ptr(buf))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) (F*)(ptr(src));
    }
    static void destroy(void* buf) noexcept { delete ptr(buf); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  template <typename F>
  void emplace(F&& f) {
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>()) {
      ::new (&buf_) Decayed(std::forward<F>(f));
      ops_ = &InlineOps<Decayed>::ops;
    } else {
      ::new (&buf_) (Decayed*)(new Decayed(std::forward<F>(f)));
      ops_ = &HeapOps<Decayed>::ops;
    }
  }

  void steal(SmallFn& o) noexcept {
    if (o.ops_ == nullptr) return;
    o.ops_->relocate(&buf_, &o.buf_);
    ops_ = o.ops_;
    o.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace castanet

// Simulation time.
//
// Both coupled simulators (the network simulator and the HDL simulator) need
// a shared, exactly-comparable notion of time — the §3.1 synchronization
// protocol is defined in terms of time-stamp comparisons, so floating point
// is out.  SimTime is an integer count of picoseconds, wide enough for
// ~106 days of simulated time, fine enough to express both an ATM cell slot
// (~2.7 µs at 155 Mb/s) and a 20 MHz board clock period exactly.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace castanet {

class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime from_ps(std::int64_t ps) { return SimTime(ps); }
  static constexpr SimTime from_ns(std::int64_t ns) {
    return SimTime(ns * 1'000);
  }
  static constexpr SimTime from_us(std::int64_t us) {
    return SimTime(us * 1'000'000);
  }
  static constexpr SimTime from_ms(std::int64_t ms) {
    return SimTime(ms * 1'000'000'000);
  }
  static constexpr SimTime from_sec(std::int64_t s) {
    return SimTime(s * 1'000'000'000'000);
  }
  /// Rounds to the nearest picosecond.
  static SimTime from_seconds(double s);
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t ps() const { return ps_; }
  double seconds() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(ps_ + o.ps_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ps_ - o.ps_); }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ps_ * k); }
  constexpr SimTime& operator+=(SimTime o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ps_ -= o.ps_;
    return *this;
  }
  /// Integer division: how many periods of `o` fit into this duration.
  constexpr std::int64_t operator/(SimTime o) const { return ps_ / o.ps_; }

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

/// The period of one clock at `hz` cycles per second, rounded down to ps.
constexpr SimTime clock_period_hz(std::int64_t hz) {
  return SimTime::from_ps(1'000'000'000'000 / hz);
}

}  // namespace castanet

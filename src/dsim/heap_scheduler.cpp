#include "src/dsim/heap_scheduler.hpp"

#include "src/core/error.hpp"
#include "src/dsim/scheduler.hpp"

namespace castanet {

void HeapScheduler::release_slot(std::uint32_t slot) {
  slab_[slot].action = nullptr;
  slab_[slot].seq = 0;
  free_slots_.push_back(slot);
}

EventHandle HeapScheduler::schedule_at(SimTime when, Action action,
                                       int priority) {
  if (when < now_) {
    throw ProtocolError("HeapScheduler: event scheduled in the past (" +
                        when.to_string() + " < " + now_.to_string() + ")");
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[slot].action = std::move(action);
  slab_[slot].seq = seq;
  queue_.push(Entry{when, priority, seq, slot});
  ++live_count_;
  ++scheduled_;
  return EventHandle{seq, slot};
}

EventHandle HeapScheduler::schedule_in(SimTime delay, Action action,
                                       int priority) {
  return schedule_at(now_ + delay, std::move(action), priority);
}

bool HeapScheduler::cancel(EventHandle h) {
  if (!h.valid() || h.slot >= slab_.size() || slab_[h.slot].seq != h.seq) {
    return false;  // already ran, already cancelled, or never scheduled
  }
  release_slot(h.slot);
  --live_count_;
  return true;
}

void HeapScheduler::pop_dead() {
  // A cancelled event's slot no longer carries its seq; drop its queue entry
  // when it surfaces.
  while (!queue_.empty() && slab_[queue_.top().slot].seq != queue_.top().seq) {
    queue_.pop();
  }
}

SimTime HeapScheduler::next_event_time() const {
  auto* self = const_cast<HeapScheduler*>(this);
  self->pop_dead();
  return queue_.empty() ? SimTime::max() : queue_.top().when;
}

bool HeapScheduler::step() {
  pop_dead();
  if (queue_.empty()) return false;
  const Entry e = queue_.top();
  queue_.pop();
  Action action = std::move(slab_[e.slot].action);
  release_slot(e.slot);
  --live_count_;
  now_ = e.when;
  ++executed_;
  action();
  return true;
}

std::uint64_t HeapScheduler::run_until(SimTime limit) {
  if (limit < now_) return 0;
  std::uint64_t n = 0;
  while (true) {
    pop_dead();
    if (queue_.empty() || queue_.top().when > limit) break;
    step();
    ++n;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

std::uint64_t HeapScheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while ((max_events == 0 || n < max_events) && step()) ++n;
  return n;
}

void HeapScheduler::advance_to(SimTime t) {
  require(t >= now_, "HeapScheduler::advance_to: cannot move time backwards");
  require(t <= next_event_time(),
          "HeapScheduler::advance_to: would skip pending events");
  now_ = t;
}

}  // namespace castanet

#include "src/dsim/scheduler.hpp"

#include "src/core/error.hpp"

namespace castanet {

EventHandle Scheduler::schedule_at(SimTime when, Action action, int priority) {
  if (when < now_) {
    throw ProtocolError("Scheduler: event scheduled in the past (" +
                        when.to_string() + " < " + now_.to_string() + ")");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{when, priority, seq});
  actions_.emplace(seq, std::move(action));
  ++live_count_;
  ++scheduled_;
  return EventHandle{seq};
}

EventHandle Scheduler::schedule_in(SimTime delay, Action action,
                                   int priority) {
  return schedule_at(now_ + delay, std::move(action), priority);
}

bool Scheduler::cancel(EventHandle h) {
  auto it = actions_.find(h.seq);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  --live_count_;
  return true;
}

void Scheduler::pop_dead() {
  while (!queue_.empty() && !actions_.contains(queue_.top().seq)) {
    queue_.pop();
  }
}

SimTime Scheduler::next_event_time() const {
  // pop_dead() is called by the mutating entry points, but a cancel may have
  // happened since; scan without mutating.
  auto* self = const_cast<Scheduler*>(this);
  self->pop_dead();
  return queue_.empty() ? SimTime::max() : queue_.top().when;
}

bool Scheduler::step() {
  pop_dead();
  if (queue_.empty()) return false;
  const Entry e = queue_.top();
  queue_.pop();
  auto it = actions_.find(e.seq);
  Action action = std::move(it->second);
  actions_.erase(it);
  --live_count_;
  now_ = e.when;
  ++executed_;
  action();
  return true;
}

std::uint64_t Scheduler::run_until(SimTime limit) {
  std::uint64_t n = 0;
  while (true) {
    pop_dead();
    if (queue_.empty() || queue_.top().when > limit) break;
    step();
    ++n;
  }
  if (now_ < limit && !queue_.empty()) {
    // Time halts at the limit even though later events are pending.
    now_ = limit;
  } else if (now_ < limit && queue_.empty()) {
    now_ = limit;
  }
  return n;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while ((max_events == 0 || n < max_events) && step()) ++n;
  return n;
}

void Scheduler::advance_to(SimTime t) {
  require(t >= now_, "Scheduler::advance_to: cannot move time backwards");
  require(t <= next_event_time(),
          "Scheduler::advance_to: would skip pending events");
  now_ = t;
}

}  // namespace castanet

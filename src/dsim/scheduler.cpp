#include "src/dsim/scheduler.hpp"

#include <limits>
#include <optional>

#include "src/core/error.hpp"

namespace castanet {

namespace {
constexpr std::int64_t kMaxDay = std::numeric_limits<std::int64_t>::max();
}  // namespace

Scheduler::Scheduler()
    : main_heads_(kMinBuckets, kNil),
      main_counts_(kMinBuckets, 0),
      ovf_heads_(kMinBuckets, kNil) {}

void Scheduler::release_slot(std::uint32_t slot) {
  slab_[slot].action = nullptr;
  slab_[slot].seq = 0;
  free_slots_.push_back(slot);
}

void Scheduler::unlink(std::uint32_t s) {
  Slot& sl = slab_[s];
  std::uint32_t* headp;
  switch (sl.home) {
    case kHomeMain:
      headp = &main_heads_[sl.bucket];
      --main_count_;
      --main_counts_[sl.bucket];
      break;
    case kHomeOvf:
      headp = &ovf_heads_[sl.bucket];
      --ovf_count_;
      break;
    case kHomeFar:
      headp = &far_head_;
      --far_count_;
      break;
    default:
      return;
  }
  if (sl.prev != kNil) {
    slab_[sl.prev].next = sl.next;
  } else {
    *headp = sl.next;
  }
  if (sl.next != kNil) slab_[sl.next].prev = sl.prev;
  sl.prev = sl.next = kNil;
  sl.bucket = kNil;
  sl.home = kHomeNone;
}

void Scheduler::insert_main(std::uint32_t s) {
  Slot& sl = slab_[s];
  const std::uint32_t b =
      static_cast<std::uint32_t>(day_of(sl.when) & mask_);
  std::uint32_t cur = main_heads_[b];
  std::uint32_t prev = kNil;
  while (cur != kNil && orders_before(cur, s)) {
    prev = cur;
    cur = slab_[cur].next;
  }
  sl.home = kHomeMain;
  sl.bucket = b;
  sl.prev = prev;
  sl.next = cur;
  if (prev != kNil) {
    slab_[prev].next = s;
  } else {
    main_heads_[b] = s;
  }
  if (cur != kNil) slab_[cur].prev = s;
  ++main_count_;
  const std::uint32_t occ = ++main_counts_[b];
  if (occ > stats_.bucket_high_water) stats_.bucket_high_water = occ;
}

void Scheduler::insert_overflow(std::uint32_t s, std::int64_t day) {
  Slot& sl = slab_[s];
  const std::int64_t year = day >> bucket_shift_;
  const std::int64_t year_now = day_of(now_) >> bucket_shift_;
  if (year - year_now < nbuckets()) {
    const std::uint32_t b = static_cast<std::uint32_t>(year & mask_);
    sl.home = kHomeOvf;
    sl.bucket = b;
    sl.prev = kNil;
    sl.next = ovf_heads_[b];
    if (sl.next != kNil) slab_[sl.next].prev = s;
    ovf_heads_[b] = s;
    ++ovf_count_;
    ++stats_.overflow_hits;
    ++ovf_since_rebuild_;
  } else {
    sl.home = kHomeFar;
    sl.bucket = kNil;
    sl.prev = kNil;
    sl.next = far_head_;
    if (far_head_ != kNil) slab_[far_head_].prev = s;
    far_head_ = s;
    ++far_count_;
    ++stats_.far_hits;
    ++ovf_since_rebuild_;
    if (day < far_min_day_) far_min_day_ = day;
  }
}

void Scheduler::place(std::uint32_t s) {
  const std::int64_t d = day_of(slab_[s].when);
  // Day wheel when inside the window, and also for any day in a year the
  // cascade has already drained — re-parking there would strand the event
  // (its overflow bucket is only drained once per lap).
  if (d - day_of(now_) < nbuckets() || (d >> bucket_shift_) <= year_cascaded_) {
    insert_main(s);
  } else {
    insert_overflow(s, d);
  }
}

void Scheduler::cascade_overflow() {
  const std::int64_t day_now = day_of(now_);
  const std::int64_t n = nbuckets();
  const std::int64_t year_now = day_now >> bucket_shift_;
  // End of the day window, in years: every overflow bucket with a year the
  // window has reached must be empty before the day wheel is scanned.
  const std::int64_t year_end =
      (day_now <= kMaxDay - (n - 1)) ? (day_now + n - 1) >> bucket_shift_
                                     : year_now;
  const auto drain = [&](std::uint32_t bucket) {
    std::uint32_t s = ovf_heads_[bucket];
    while (s != kNil) {
      const std::uint32_t nxt = slab_[s].next;
      unlink(s);
      insert_main(s);
      ++stats_.cascaded_events;
      s = nxt;
    }
  };
  if (ovf_count_ == 0) {
    year_cascaded_ = year_end;
  } else if (year_end - year_cascaded_ >= n) {
    // Giant time jump: every parked year is now behind the window; drain
    // the whole overflow wheel.
    for (std::uint32_t b = 0; b < ovf_heads_.size(); ++b) drain(b);
    year_cascaded_ = year_end;
  } else {
    while (year_cascaded_ < year_end) {
      ++year_cascaded_;
      drain(static_cast<std::uint32_t>(year_cascaded_ & mask_));
    }
  }
  // Far-list promotion, guarded so the common path is one comparison: only
  // scan when the earliest far event's year entered the overflow horizon.
  if (far_count_ == 0) {
    far_min_day_ = kMaxDay;
  } else if ((far_min_day_ >> bucket_shift_) - year_now < n) {
    std::int64_t new_min = kMaxDay;
    std::uint32_t s = far_head_;
    while (s != kNil) {
      const std::uint32_t nxt = slab_[s].next;
      const std::int64_t d = day_of(slab_[s].when);
      if ((d >> bucket_shift_) - year_now < n) {
        unlink(s);
        place(s);  // day wheel if within the window, else overflow wheel
        ++stats_.cascaded_events;
      } else if (d < new_min) {
        new_min = d;
      }
      s = nxt;
    }
    far_min_day_ = new_min;
  }
}

std::uint32_t Scheduler::overflow_min_slot() const {
  std::uint32_t best = kNil;
  const auto consider = [&](std::uint32_t s) {
    if (best == kNil || orders_before(s, best)) best = s;
  };
  if (ovf_count_ > 0) {
    for (const std::uint32_t head : ovf_heads_) {
      for (std::uint32_t s = head; s != kNil; s = slab_[s].next) consider(s);
    }
  }
  for (std::uint32_t s = far_head_; s != kNil; s = slab_[s].next) consider(s);
  return best;
}

std::uint32_t Scheduler::find_next() {
  if (cached_valid_) return cached_next_;
  if (live_count_ == 0) return kNil;
  cascade_overflow();
  const std::int64_t n = nbuckets();
  if (main_count_ > 0) {
    // After the cascade, every pending event with a day inside the window
    // [day(now), day(now) + n) is on the day wheel, and each bucket's
    // sorted list keeps its earliest day at the head — so the first head
    // whose day matches the scanned day holds the global minimum.
    const std::int64_t day_now = day_of(now_);
    if (day_now <= kMaxDay - n) {
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t d = day_now + i;
        const std::uint32_t h =
            main_heads_[static_cast<std::uint32_t>(d & mask_)];
        if (h != kNil && day_of(slab_[h].when) == d) {
          cached_next_ = h;
          cached_valid_ = true;
          return h;
        }
      }
    }
    // Defensive fallback (day arithmetic saturating near the end of
    // simulated time): exact minimum over all structures.
    std::uint32_t best = kNil;
    for (const std::uint32_t h : main_heads_) {
      if (h != kNil && (best == kNil || orders_before(h, best))) best = h;
    }
    const std::uint32_t o = overflow_min_slot();
    if (o != kNil && (best == kNil || orders_before(o, best))) best = o;
    if (best != kNil) {
      cached_next_ = best;
      cached_valid_ = true;
    }
    return best;
  }
  // Day wheel empty: the next event (if any) is beyond the window; serve it
  // straight from the overflow structures.  It is unlinked generically when
  // popped, and the window migration catches up once now() jumps there.
  const std::uint32_t o = overflow_min_slot();
  if (o != kNil) {
    cached_next_ = o;
    cached_valid_ = true;
  }
  return o;
}

void Scheduler::rebuild(std::size_t buckets) {
  if (buckets < kMinBuckets) buckets = kMinBuckets;
  std::vector<std::uint32_t>& live = rebuild_scratch_;
  live.clear();
  // Reserve for the slab, not the live count: the slab size bounds the live
  // count forever, so once a rebuild has run at the current slab size every
  // later rebuild reuses the capacity (allocation-free in steady state).
  live.reserve(slab_.size());
  const auto collect = [&](std::uint32_t head) {
    for (std::uint32_t s = head; s != kNil; s = slab_[s].next) {
      live.push_back(s);
    }
  };
  for (const std::uint32_t h : main_heads_) collect(h);
  for (const std::uint32_t h : ovf_heads_) collect(h);
  collect(far_head_);
  // Width from live density: spread the live span across the whole day
  // wheel, rounding the bucket width UP to a power of two so the window
  // (buckets x width) covers the span.  With the grow policy keeping
  // buckets ~ live count this is Brown's ~one-event-per-bucket rule, and
  // covering the span means steady-state re-arms land on the day wheel
  // directly instead of taking the park/cascade detour.  The window is
  // anchored at now(), not at the earliest event, so the span is measured
  // from now() too — anchoring at `lo` can pick a width whose window still
  // misses the latest events, and the pressure trigger would then rebuild
  // forever without converging.
  if (!live.empty()) {
    std::int64_t hi = now_.ps();
    for (const std::uint32_t s : live) {
      const std::int64_t ps = slab_[s].when.ps();
      if (ps > hi) hi = ps;
    }
    const std::int64_t gap =
        (hi - now_.ps()) / static_cast<std::int64_t>(buckets) + 1;
    int shift = 0;
    while (shift < 46 && (std::int64_t{1} << shift) < gap) ++shift;
    width_shift_ = shift;
  }
  int bshift = 0;
  while ((std::size_t{1} << bshift) < buckets) ++bshift;
  bucket_shift_ = bshift;
  mask_ = static_cast<std::uint32_t>(buckets - 1);
  main_heads_.assign(buckets, kNil);
  main_counts_.assign(buckets, 0);
  ovf_heads_.assign(buckets, kNil);
  far_head_ = kNil;
  main_count_ = ovf_count_ = far_count_ = 0;
  far_min_day_ = kMaxDay;
  // The year space changed with the geometry; the cascade has (vacuously)
  // covered everything up to the current window's end.
  const std::int64_t day_now = day_of(now_);
  year_cascaded_ =
      (day_now <= kMaxDay - (static_cast<std::int64_t>(buckets) - 1))
          ? (day_now + static_cast<std::int64_t>(buckets) - 1) >> bucket_shift_
          : day_now >> bucket_shift_;
  for (const std::uint32_t s : live) {
    slab_[s].prev = slab_[s].next = kNil;
    slab_[s].home = kHomeNone;
    place(s);
  }
  cached_valid_ = false;
  ovf_since_rebuild_ = 0;
  ++stats_.resizes;
}

void Scheduler::maybe_shrink() {
  if (main_heads_.size() > kMinBuckets &&
      live_count_ * 8 < main_heads_.size()) {
    rebuild(main_heads_.size() / 2);
  }
}

EventHandle Scheduler::schedule_at(SimTime when, Action action, int priority) {
  if (when < now_) {
    throw ProtocolError("Scheduler: event scheduled in the past (" +
                        when.to_string() + " < " + now_.to_string() + ")");
  }
  if (live_count_ + 1 > 2 * static_cast<std::uint64_t>(nbuckets())) {
    rebuild(main_heads_.size() * 2);
  } else if (ovf_since_rebuild_ > 64 + live_count_ / 4 && width_shift_ < 46) {
    // Stale width: the live span outgrew the window since the last rebuild
    // (e.g. events kept arriving after the final density-driven grow) and
    // most traffic is parking beyond it.  Re-derive the width from the
    // current span at the same bucket count; the >= live/4 parks between
    // triggers keep the O(live) rebuild amortized O(1) per event.
    rebuild(main_heads_.size());
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Slot& sl = slab_[slot];
  sl.action = std::move(action);
  sl.seq = seq;
  sl.when = when;
  sl.priority = priority;
  place(slot);
  if (live_count_ == 0) {
    cached_next_ = slot;
    cached_valid_ = true;
  } else if (cached_valid_ && orders_before(slot, cached_next_)) {
    cached_next_ = slot;
  }
  ++live_count_;
  ++scheduled_;
  return EventHandle{seq, slot};
}

EventHandle Scheduler::schedule_in(SimTime delay, Action action,
                                   int priority) {
  return schedule_at(now_ + delay, std::move(action), priority);
}

bool Scheduler::cancel(EventHandle h) {
  if (!h.valid() || h.slot >= slab_.size() || slab_[h.slot].seq != h.seq) {
    return false;  // already ran, already cancelled, or never scheduled
  }
  if (cached_valid_ && cached_next_ == h.slot) cached_valid_ = false;
  unlink(h.slot);
  release_slot(h.slot);
  --live_count_;
  ++stats_.cancelled_in_place;
  maybe_shrink();
  return true;
}

SimTime Scheduler::next_event_time() const {
  // find_next only mutates caches and migration bookkeeping, never the
  // event set; lazily maintained like the heap's pop_dead used to be.
  auto* self = const_cast<Scheduler*>(this);
  const std::uint32_t s = self->find_next();
  return s == kNil ? SimTime::max() : slab_[s].when;
}

bool Scheduler::step() {
  const std::uint32_t s = find_next();
  if (s == kNil) return false;
  Slot& sl = slab_[s];
  const SimTime when = sl.when;
  // The usual next event is the same-day successor in the same bucket; keep
  // the cache warm so a burst of same-slot events pops in O(1) each.
  std::uint32_t successor = kNil;
  if (sl.home == kHomeMain && sl.next != kNil &&
      day_of(slab_[sl.next].when) == day_of(when)) {
    successor = sl.next;
  }
  Action action = std::move(sl.action);
  unlink(s);
  release_slot(s);
  --live_count_;
  if (successor != kNil) {
    cached_next_ = successor;
    cached_valid_ = true;
  } else {
    cached_valid_ = false;
  }
  now_ = when;
  ++executed_;
  maybe_shrink();
  action();
  return true;
}

std::uint64_t Scheduler::run_until(SimTime limit) {
  // Shared semantics with rtl::Simulator::run_until: execute every event
  // with time <= limit, then pin now() to limit.  A limit already in the
  // past is a no-op — simulated time never regresses, and callers may
  // safely re-issue a stale horizon.  Only advance_to() asserts strict
  // monotonicity, because skipping backwards there would skip events.
  if (limit < now_) return 0;
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("net.slice", telemetry_track_);
    span->arg("from_us", now_.seconds() * 1e6);
    span->arg("to_us", limit.seconds() * 1e6);
  }
  std::uint64_t n = 0;
  while (true) {
    const std::uint32_t s = find_next();
    if (s == kNil || slab_[s].when > limit) break;
    step();
    ++n;
  }
  if (span) span->arg("events", static_cast<double>(n));
  if (now_ < limit) {
    // Time halts at the limit even when later events are pending.
    now_ = limit;
  }
  return n;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while ((max_events == 0 || n < max_events) && step()) ++n;
  return n;
}

void Scheduler::advance_to(SimTime t) {
  require(t >= now_, "Scheduler::advance_to: cannot move time backwards");
  require(t <= next_event_time(),
          "Scheduler::advance_to: would skip pending events");
  now_ = t;
}

void Scheduler::publish_telemetry() const {
  if (!telemetry::enabled()) return;
  auto& hub = telemetry::Hub::instance();
  hub.publish_count("dsim.wheel.resizes", stats_.resizes);
  hub.publish_count("dsim.wheel.overflow_hits", stats_.overflow_hits);
  hub.publish_count("dsim.wheel.far_hits", stats_.far_hits);
  hub.publish_count("dsim.wheel.cascaded_events", stats_.cascaded_events);
  hub.publish_count("dsim.wheel.cancelled_in_place",
                    stats_.cancelled_in_place);
  hub.publish_value("dsim.wheel.buckets",
                    static_cast<double>(main_heads_.size()));
  hub.publish_value("dsim.wheel.width_ps",
                    static_cast<double>(bucket_width_ps()));
  hub.publish_value("dsim.wheel.bucket_high_water",
                    static_cast<double>(stats_.bucket_high_water));
}

}  // namespace castanet

#include "src/dsim/scheduler.hpp"

#include <optional>

#include "src/core/error.hpp"

namespace castanet {

void Scheduler::release_slot(std::uint32_t slot) {
  slab_[slot].action = nullptr;
  slab_[slot].seq = 0;
  free_slots_.push_back(slot);
}

EventHandle Scheduler::schedule_at(SimTime when, Action action, int priority) {
  if (when < now_) {
    throw ProtocolError("Scheduler: event scheduled in the past (" +
                        when.to_string() + " < " + now_.to_string() + ")");
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[slot].action = std::move(action);
  slab_[slot].seq = seq;
  queue_.push(Entry{when, priority, seq, slot});
  ++live_count_;
  ++scheduled_;
  return EventHandle{seq, slot};
}

EventHandle Scheduler::schedule_in(SimTime delay, Action action,
                                   int priority) {
  return schedule_at(now_ + delay, std::move(action), priority);
}

bool Scheduler::cancel(EventHandle h) {
  if (!h.valid() || h.slot >= slab_.size() || slab_[h.slot].seq != h.seq) {
    return false;  // already ran, already cancelled, or never scheduled
  }
  release_slot(h.slot);
  --live_count_;
  return true;
}

void Scheduler::pop_dead() {
  // A cancelled event's slot no longer carries its seq; drop its queue entry
  // when it surfaces.
  while (!queue_.empty() && slab_[queue_.top().slot].seq != queue_.top().seq) {
    queue_.pop();
  }
}

SimTime Scheduler::next_event_time() const {
  // pop_dead() is called by the mutating entry points, but a cancel may have
  // happened since; scrub lazily here too.
  auto* self = const_cast<Scheduler*>(this);
  self->pop_dead();
  return queue_.empty() ? SimTime::max() : queue_.top().when;
}

bool Scheduler::step() {
  pop_dead();
  if (queue_.empty()) return false;
  const Entry e = queue_.top();
  queue_.pop();
  Action action = std::move(slab_[e.slot].action);
  release_slot(e.slot);
  --live_count_;
  now_ = e.when;
  ++executed_;
  action();
  return true;
}

std::uint64_t Scheduler::run_until(SimTime limit) {
  // Shared semantics with rtl::Simulator::run_until: execute every event
  // with time <= limit, then pin now() to limit.  A limit already in the
  // past is a no-op — simulated time never regresses, and callers may
  // safely re-issue a stale horizon.  Only advance_to() asserts strict
  // monotonicity, because skipping backwards there would skip events.
  if (limit < now_) return 0;
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("net.slice", telemetry_track_);
    span->arg("from_us", now_.seconds() * 1e6);
    span->arg("to_us", limit.seconds() * 1e6);
  }
  std::uint64_t n = 0;
  while (true) {
    pop_dead();
    if (queue_.empty() || queue_.top().when > limit) break;
    step();
    ++n;
  }
  if (span) span->arg("events", static_cast<double>(n));
  if (now_ < limit) {
    // Time halts at the limit even when later events are pending.
    now_ = limit;
  }
  return n;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while ((max_events == 0 || n < max_events) && step()) ++n;
  return n;
}

void Scheduler::advance_to(SimTime t) {
  require(t >= now_, "Scheduler::advance_to: cannot move time backwards");
  require(t <= next_event_time(),
          "Scheduler::advance_to: would skip pending events");
  now_ = t;
}

}  // namespace castanet

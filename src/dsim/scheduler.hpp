// Generic discrete-event scheduler.
//
// This is the event-list machinery (Fig. 3 of the paper) shared by the
// network simulator: events ordered by (time, priority, sequence), with O(1)
// cancellation, strictly monotone execution, and counters used by the E7
// event-ratio experiment.  Events may be scheduled for the current time or
// the future, never the past — scheduling into the past throws
// ProtocolError, which is exactly the causality error the §3.1 protocol must
// prevent across simulator boundaries.
//
// Since PR 10 the pending-event set is a calendar queue (Brown 1988) instead
// of a binary heap, so schedule/step/cancel stay O(1) with millions of
// pending events:
//
//   * A "day wheel" of power-of-two many buckets, each one `width` of
//     simulated time wide; an event lands in bucket (day & mask) where
//     day = time / width.  Within a bucket events are a doubly-linked list
//     of slab slots sorted by (time, priority, seq).  Because time never
//     regresses and events only enter the day wheel when they lie within
//     the next `buckets` days of now(), every resident day is distinct —
//     the first occupied bucket at or after today holds the next event.
//   * An "overflow wheel" (buckets keyed by year = buckets consecutive
//     days) and a "far list" park events beyond the day-wheel horizon in
//     O(1), unsorted.  Each overflow bucket is drained wholesale into the
//     day wheel when the day window first reaches its year
//     (cascade_overflow) — every parked event migrates exactly once, so
//     cascading is amortized O(1) per event.  The far list promotes behind
//     a cached lower bound on its earliest day, so the common path never
//     scans it.
//   * The wheel resizes from live-event density: bucket count tracks the
//     live count (grow at 2x, shrink at 1/8) and the bucket width is
//     re-derived from the live events' time span, targeting about one event
//     per bucket.  Resizing relinks slots; handles stay valid.
//
// The execution order contract is bit-for-bit identical to the retained
// reference implementation (heap_scheduler.hpp), asserted by the randomized
// differential test tests/dsim/test_scheduler_diff.cpp.
//
// Actions are SmallFn small-buffer callables stored in a slab: a pooled
// vector of slots addressed by index, with a free list and per-slot
// sequence numbers to catch stale handles.  A cancelled handle whose slot
// was since recycled by a new event fails the seq check and cancel()
// returns false — it can never cancel the new occupant.  In steady state
// (slab and bucket arrays warm, captures within SmallFn::kInlineBytes)
// schedule/step perform zero heap allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/telemetry.hpp"
#include "src/dsim/small_fn.hpp"
#include "src/dsim/time.hpp"

namespace castanet {

/// Identifies a scheduled event so it can be cancelled.
struct EventHandle {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  bool valid() const { return seq != 0; }
};

class Scheduler {
 public:
  using Action = SmallFn;

  Scheduler();

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `when` (>= now).  Events at equal
  /// time run in (priority, insertion) order; lower priority value first.
  EventHandle schedule_at(SimTime when, Action action, int priority = 0);
  /// Schedules `action` `delay` after now.
  EventHandle schedule_in(SimTime delay, Action action, int priority = 0);

  /// Cancels a pending event in O(1) by unlinking its slab slot; returns
  /// false if it already ran or was cancelled.  A stale handle whose slot
  /// has been recycled by a later event fails the sequence check and leaves
  /// the new occupant untouched.
  bool cancel(EventHandle h);

  /// True if no events are pending.
  bool empty() const { return live_count_ == 0; }
  /// Time stamp of the earliest pending event; SimTime::max() when empty.
  SimTime next_event_time() const;

  /// Runs the single earliest event; returns false when none pending.
  bool step();
  /// Runs all events with time <= limit (inclusive); time ends at
  /// min(limit, last event time).  Returns number of events executed.
  /// Shares its semantics with rtl::Simulator::run_until; a `limit` that
  /// precedes now() is a no-op — simulated time never regresses.
  std::uint64_t run_until(SimTime limit);
  /// Runs to exhaustion (or until `max_events` executed; 0 = unlimited).
  std::uint64_t run(std::uint64_t max_events = 0);

  /// Advances now to `t` without executing anything (used by co-simulation
  /// time-window grants).  `t` must be >= now and <= next_event_time().
  void advance_to(SimTime t);

  /// Total events executed since construction (E7 experiment counter).
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return scheduled_; }

  // --- calendar-queue introspection (tests, telemetry) ---------------------
  struct WheelStats {
    std::uint64_t resizes = 0;            ///< wheel rebuilds (grow + shrink)
    std::uint64_t overflow_hits = 0;      ///< events parked on the overflow wheel
    std::uint64_t far_hits = 0;           ///< events parked on the far list
    std::uint64_t cascaded_events = 0;    ///< migrations into the day wheel
    std::uint64_t cancelled_in_place = 0; ///< O(1) unlink cancellations
    std::uint64_t bucket_high_water = 0;  ///< max day-bucket occupancy seen
  };
  const WheelStats& wheel_stats() const { return stats_; }
  std::size_t bucket_count() const { return main_heads_.size(); }
  std::int64_t bucket_width_ps() const {
    return std::int64_t{1} << width_shift_;
  }

  /// Pushes the dsim.wheel.* gauges/counters into the telemetry hub; no-op
  /// while telemetry is disabled.  Called at quiescent points (netsim
  /// Simulation::finish, session publish_metrics).
  void publish_telemetry() const;

  /// Timeline row for "net.slice" spans in the Chrome trace; the session
  /// assigns the "net" row at the start of a traced run.
  void set_telemetry_track(telemetry::TrackId track) {
    telemetry_track_ = track;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kMinBuckets = 16;
  /// Initial bucket width: 2^21 ps ~ 2.1 us, about one ATM cell slot at
  /// 155 Mb/s.  The first density resize re-derives it from live events.
  static constexpr int kInitialWidthShift = 21;

  enum Home : std::uint8_t { kHomeNone = 0, kHomeMain, kHomeOvf, kHomeFar };

  /// Slab slot: seq == 0 marks a free (or cancelled) slot; otherwise it is
  /// the sequence number of the event currently occupying it.  prev/next
  /// link the slot into its bucket list (day wheel, overflow wheel, or far
  /// list, per `home`).
  struct Slot {
    Action action;
    std::uint64_t seq = 0;
    SimTime when = SimTime::zero();
    std::int32_t priority = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t bucket = kNil;
    std::uint8_t home = kHomeNone;
  };

  std::int64_t day_of(SimTime t) const { return t.ps() >> width_shift_; }
  std::int64_t nbuckets() const {
    return static_cast<std::int64_t>(main_heads_.size());
  }
  /// Strict (when, priority, seq) order — the execution-order contract.
  bool orders_before(std::uint32_t a, std::uint32_t b) const {
    const Slot& x = slab_[a];
    const Slot& y = slab_[b];
    if (x.when != y.when) return x.when < y.when;
    if (x.priority != y.priority) return x.priority < y.priority;
    return x.seq < y.seq;
  }

  void release_slot(std::uint32_t slot);
  /// Removes `s` from whichever list it is linked on (O(1)).
  void unlink(std::uint32_t s);
  /// Sorted insert into the day wheel.
  void insert_main(std::uint32_t s);
  /// Unsorted O(1) insert into the overflow wheel / far list.
  void insert_overflow(std::uint32_t s, std::int64_t day);
  /// Routes a live slot into the right structure relative to now().
  void place(std::uint32_t s);
  /// Drains every overflow bucket whose year the day window has reached
  /// into the day wheel (each bucket exactly once per lap), and promotes
  /// far-list events whose year entered the overflow horizon.
  void cascade_overflow();
  /// Exact minimum over overflow wheel + far list; kNil when both empty.
  std::uint32_t overflow_min_slot() const;
  /// Slot of the earliest pending event (cached when valid); kNil if none.
  std::uint32_t find_next();
  /// Rebuilds the wheel with `buckets` buckets and a width re-derived from
  /// the live events' span.  Handles stay valid (only links change).
  void rebuild(std::size_t buckets);
  void maybe_shrink();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t live_count_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;

  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
  /// Reused by rebuild() to collect live slots, so steady-state width/shrink
  /// rebuilds stay allocation-free once its capacity is warm.
  std::vector<std::uint32_t> rebuild_scratch_;

  // Day wheel: bucket = day & mask.  Direct inserts lie within
  // [day(now), day(now) + nbuckets); a cascaded year may extend to the end
  // of the year the window reaches into, so a bucket can briefly hold two
  // distinct days — the sorted lists keep each bucket's earliest day at the
  // head, which is what find_next's lap scan checks.
  std::vector<std::uint32_t> main_heads_;
  std::vector<std::uint32_t> main_counts_;
  std::uint64_t main_count_ = 0;
  // Overflow wheel (bucket = year & mask, year = day >> bucket_shift) and
  // far list for events beyond the overflow horizon.
  std::vector<std::uint32_t> ovf_heads_;
  std::uint64_t ovf_count_ = 0;
  std::uint32_t far_head_ = kNil;
  std::uint64_t far_count_ = 0;
  /// Last overflow year drained into the day wheel by cascade_overflow.
  std::int64_t year_cascaded_ = 0;
  /// Overflow/far parks since the last rebuild.  When most scheduling
  /// traffic parks beyond the window, the bucket width is stale (the live
  /// span outgrew the window since the width was last derived); schedule_at
  /// re-derives it once this exceeds a fraction of the live count, which
  /// keeps the trigger amortized O(1).
  std::uint64_t ovf_since_rebuild_ = 0;
  /// Lower bound on the earliest day on the far list (INT64_MAX when
  /// empty).  Tightened to exact whenever the far list is scanned.
  std::int64_t far_min_day_ = INT64_MAX;

  int width_shift_ = kInitialWidthShift;
  int bucket_shift_ = 4;  // log2(nbuckets)
  std::uint32_t mask_ = kMinBuckets - 1;

  std::uint32_t cached_next_ = kNil;
  bool cached_valid_ = false;

  WheelStats stats_;
  telemetry::TrackId telemetry_track_ = telemetry::kMainTrack;
};

}  // namespace castanet

// Generic discrete-event scheduler.
//
// This is the event-list machinery (Fig. 3 of the paper) shared by the
// network simulator: a priority queue of (time, priority, sequence) ordered
// events, with cancellation, strictly monotone execution, and counters used
// by the E7 event-ratio experiment.  Events may be scheduled for the current
// time or the future, never the past — scheduling into the past throws
// ProtocolError, which is exactly the causality error the §3.1 protocol must
// prevent across simulator boundaries.
//
// Actions are stored in a slab: a pooled vector of slots addressed by index,
// with a free list and per-slot sequence numbers to catch stale handles.
// Scheduling and cancelling are O(1) slab operations plus the heap push —
// no per-event node allocation or hashing.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/core/telemetry.hpp"
#include "src/dsim/time.hpp"

namespace castanet {

/// Identifies a scheduled event so it can be cancelled.
struct EventHandle {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  bool valid() const { return seq != 0; }
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `when` (>= now).  Events at equal
  /// time run in (priority, insertion) order; lower priority value first.
  EventHandle schedule_at(SimTime when, Action action, int priority = 0);
  /// Schedules `action` `delay` after now.
  EventHandle schedule_in(SimTime delay, Action action, int priority = 0);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled.
  bool cancel(EventHandle h);

  /// True if no events are pending.
  bool empty() const { return live_count_ == 0; }
  /// Time stamp of the earliest pending event; SimTime::max() when empty.
  SimTime next_event_time() const;

  /// Runs the single earliest event; returns false when none pending.
  bool step();
  /// Runs all events with time <= limit (inclusive); time ends at
  /// min(limit, last event time).  Returns number of events executed.
  /// Shares its semantics with rtl::Simulator::run_until; a `limit` that
  /// precedes now() is a no-op — simulated time never regresses.
  std::uint64_t run_until(SimTime limit);
  /// Runs to exhaustion (or until `max_events` executed; 0 = unlimited).
  std::uint64_t run(std::uint64_t max_events = 0);

  /// Advances now to `t` without executing anything (used by co-simulation
  /// time-window grants).  `t` must be >= now and <= next_event_time().
  void advance_to(SimTime t);

  /// Total events executed since construction (E7 experiment counter).
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return scheduled_; }

  /// Timeline row for "net.slice" spans in the Chrome trace; the session
  /// assigns the "net" row at the start of a traced run.
  void set_telemetry_track(telemetry::TrackId track) {
    telemetry_track_ = track;
  }

 private:
  struct Entry {
    SimTime when;
    int priority;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      if (priority != o.priority) return priority > o.priority;
      return seq > o.seq;
    }
  };
  /// Slab slot: seq == 0 marks a free (or cancelled) slot; otherwise it is
  /// the sequence number of the event currently occupying it.
  struct Slot {
    Action action;
    std::uint64_t seq = 0;
  };

  void pop_dead();
  void release_slot(std::uint32_t slot);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t live_count_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
  telemetry::TrackId telemetry_track_ = telemetry::kMainTrack;
};

}  // namespace castanet

#include "src/dsim/time.hpp"

#include <cmath>
#include <cstdio>

namespace castanet {

SimTime SimTime::from_seconds(double s) {
  return SimTime(static_cast<std::int64_t>(std::llround(s * 1e12)));
}

std::string SimTime::to_string() const {
  char buf[48];
  if (ps_ % 1'000'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds",
                  static_cast<long long>(ps_ / 1'000'000'000'000));
  } else if (ps_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(ps_ / 1'000'000));
  } else if (ps_ % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldns",
                  static_cast<long long>(ps_ / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldps", static_cast<long long>(ps_));
  }
  return buf;
}

}  // namespace castanet

#include "src/lint/board_rules.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <vector>

namespace castanet::lint {

namespace {

constexpr const char* kFamily = "board";

using board::CtrlportMapping;
using board::InportMapping;
using board::IoPortMapping;
using board::kByteLanes;
using board::kPins;
using board::kPinsPerLane;
using board::LaneSlice;
using board::OutportMapping;

std::string qualify(const std::string& scope, std::string loc) {
  if (scope.empty()) return loc;
  return scope + ": " + loc;
}

unsigned total_bits(const std::vector<LaneSlice>& slices) {
  unsigned n = 0;
  for (const LaneSlice& s : slices) n += s.nbits;
  return n;
}

struct Ctx {
  const std::string& scope;
  Report& report;
  const PinRemap* remap = nullptr;
  /// Per-pin owner label ("inport 3", ...) for the two direction classes;
  /// empty string = unclaimed.
  std::array<std::string, kPins> tester_owner{};
  std::array<std::string, kPins> dut_owner{};
};

std::string slice_str(const LaneSlice& s) {
  return "lane " + std::to_string(s.byte_lane) + " bits [" +
         std::to_string(s.start_bit) + ".." +
         std::to_string(s.start_bit + s.nbits) + ")";
}

/// The concrete relocation the proposed remap found for this slice (if
/// any), rendered for a fix hint.
std::string remap_hint(const Ctx& ctx, const std::string& port,
                       std::size_t slice_index) {
  if (ctx.remap == nullptr) return "";
  for (const SliceMove& m : ctx.remap->moves) {
    if (m.ok && m.port == port && m.slice_index == slice_index) {
      return "; proposed remap: " + slice_str(m.from) + " -> " +
             slice_str(m.to) + " (--fix-dry-run prints the patched config)";
    }
  }
  return "";
}

void check_slices(Ctx& ctx, const std::string& port,
                  const std::vector<LaneSlice>& slices, unsigned width,
                  bool dut_driven) {
  if (width == 0 || width != total_bits(slices)) {
    ctx.report.add("BRD-WIDTH", Severity::kError, kFamily,
                   qualify(ctx.scope, port),
                   "declared width " + std::to_string(width) +
                       " does not match the " +
                       std::to_string(total_bits(slices)) +
                       " bit(s) covered by its lane slices",
                   "make width the sum of the slice widths (and non-zero)");
  }
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const LaneSlice& s = slices[i];
    if (s.byte_lane >= kByteLanes) {
      ctx.report.add("BRD-LANE-RANGE", Severity::kError, kFamily,
                     qualify(ctx.scope, port),
                     "slice references byte lane " +
                         std::to_string(s.byte_lane) + "; the board has " +
                         std::to_string(kByteLanes) + " lanes (0..15)",
                     "use a lane ID below " + std::to_string(kByteLanes) +
                         remap_hint(ctx, port, i));
      continue;  // pin math below would index out of the pin array
    }
    if (s.nbits == 0 || s.nbits > kPinsPerLane ||
        s.start_bit + s.nbits > kPinsPerLane) {
      ctx.report.add(
          "BRD-LANE-RANGE", Severity::kError, kFamily,
          qualify(ctx.scope, port),
          "slice bits [" + std::to_string(s.start_bit) + ", " +
              std::to_string(s.start_bit + s.nbits) + ") on lane " +
              std::to_string(s.byte_lane) + " exceed the " +
              std::to_string(kPinsPerLane) + "-pin lane width",
          "keep start_bit + nbits <= " + std::to_string(kPinsPerLane) +
              " and nbits >= 1" + remap_hint(ctx, port, i));
      continue;
    }
    auto& owner = dut_driven ? ctx.dut_owner : ctx.tester_owner;
    for (unsigned b = 0; b < s.nbits; ++b) {
      const std::size_t pin = s.byte_lane * kPinsPerLane + s.start_bit + b;
      if (!owner[pin].empty()) {
        ctx.report.add("BRD-PIN-OVERLAP", Severity::kError, kFamily,
                       qualify(ctx.scope, port),
                       "pin " + std::to_string(pin) + " (lane " +
                           std::to_string(s.byte_lane) + " bit " +
                           std::to_string(s.start_bit + b) +
                           ") is already claimed by " + owner[pin] +
                           " in the same drive direction",
                       "move one of the overlapping slices to free pins" +
                           remap_hint(ctx, port, i));
      } else {
        owner[pin] = port;
      }
    }
  }
}

template <typename Mapping>
void check_duplicate_ids(Ctx& ctx, const std::vector<Mapping>& maps,
                         const char* kind, unsigned Mapping::*id) {
  for (std::size_t i = 0; i < maps.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (maps[i].*id == maps[j].*id) {
        ctx.report.add("BRD-DUP-PORT", Severity::kError, kFamily,
                       qualify(ctx.scope, std::string(kind) + " " +
                                              std::to_string(maps[i].*id)),
                       "duplicate " + std::string(kind) +
                           " ID: mappings #" + std::to_string(j) + " and #" +
                           std::to_string(i) + " both declare it",
                       "give every " + std::string(kind) + " a unique ID");
        break;  // one diagnostic per duplicated entry is enough
      }
    }
  }
}

void check_ioports(Ctx& ctx, const board::ConfigDataSet& cfg) {
  for (std::size_t i = 0; i < cfg.ioports.size(); ++i) {
    const IoPortMapping& m = cfg.ioports[i];
    const std::string port = "ioport #" + std::to_string(i);
    const auto in_it = std::find_if(
        cfg.inports.begin(), cfg.inports.end(),
        [&](const InportMapping& p) { return p.inport == m.inport; });
    const auto out_it = std::find_if(
        cfg.outports.begin(), cfg.outports.end(),
        [&](const OutportMapping& p) { return p.outport == m.outport; });
    const auto ctl_it = std::find_if(
        cfg.ctrlports.begin(), cfg.ctrlports.end(),
        [&](const CtrlportMapping& p) { return p.ctrlport == m.ctrlport; });
    if (in_it == cfg.inports.end()) {
      ctx.report.add("BRD-IO-REF", Severity::kError, kFamily,
                     qualify(ctx.scope, port),
                     "references inport " + std::to_string(m.inport) +
                         ", which is not declared",
                     "declare the inport mapping or fix the reference");
    }
    if (out_it == cfg.outports.end()) {
      ctx.report.add("BRD-IO-REF", Severity::kError, kFamily,
                     qualify(ctx.scope, port),
                     "references outport " + std::to_string(m.outport) +
                         ", which is not declared",
                     "declare the outport mapping or fix the reference");
    }
    if (ctl_it == cfg.ctrlports.end()) {
      ctx.report.add("BRD-IO-REF", Severity::kError, kFamily,
                     qualify(ctx.scope, port),
                     "references ctrlport " + std::to_string(m.ctrlport) +
                         ", which is not declared",
                     "declare the ctrlport mapping or fix the reference");
    }
    if (in_it != cfg.inports.end() && in_it->width != m.width) {
      ctx.report.add("BRD-IO-WIDTH", Severity::kError, kFamily,
                     qualify(ctx.scope, port),
                     "width " + std::to_string(m.width) +
                         " disagrees with paired inport " +
                         std::to_string(m.inport) + " (width " +
                         std::to_string(in_it->width) + ")",
                     "the in, out and I/O widths of a bus port must match");
    }
    if (out_it != cfg.outports.end() && out_it->width != m.width) {
      ctx.report.add("BRD-IO-WIDTH", Severity::kError, kFamily,
                     qualify(ctx.scope, port),
                     "width " + std::to_string(m.width) +
                         " disagrees with paired outport " +
                         std::to_string(m.outport) + " (width " +
                         std::to_string(out_it->width) + ")",
                     "the in, out and I/O widths of a bus port must match");
    }
    if (ctl_it != cfg.ctrlports.end() && ctl_it->width < 64 &&
        (m.dut_drives_value >> ctl_it->width) != 0) {
      ctx.report.add(
          "BRD-CTRL-CONFLICT", Severity::kError, kFamily,
          qualify(ctx.scope, port),
          "direction flag value " + std::to_string(m.dut_drives_value) +
              " cannot be expressed on ctrlport " +
              std::to_string(m.ctrlport) + " (width " +
              std::to_string(ctl_it->width) +
              "): the DUT-drives state is unreachable",
          "widen the ctrlport or pick a flag value within its width");
    }
    for (std::size_t j = 0; j < i; ++j) {
      const IoPortMapping& o = cfg.ioports[j];
      if (o.ctrlport == m.ctrlport &&
          o.dut_drives_value != m.dut_drives_value) {
        ctx.report.add(
            "BRD-CTRL-CONFLICT", Severity::kError, kFamily,
            qualify(ctx.scope, port),
            "shares ctrlport " + std::to_string(m.ctrlport) +
                " with ioport #" + std::to_string(j) +
                " but disagrees on the DUT-drives flag value (" +
                std::to_string(m.dut_drives_value) + " vs " +
                std::to_string(o.dut_drives_value) +
                "): one direction decode is always wrong",
            "use one flag convention per shared ctrlport, or separate "
            "ctrlports");
      }
    }
  }
}

}  // namespace

PinRemap propose_pin_remap(const board::ConfigDataSet& cfg) {
  PinRemap out;
  out.patched = cfg;
  std::array<bool, kPins> tester{};
  std::array<bool, kPins> dut{};

  const auto pins_free = [&](const LaneSlice& s, bool dut_driven) {
    for (unsigned b = 0; b < s.nbits; ++b) {
      const std::size_t pin = s.byte_lane * kPinsPerLane + s.start_bit + b;
      if (dut_driven ? (dut[pin] || tester[pin]) : tester[pin]) return false;
    }
    return true;
  };
  const auto claim = [&](const LaneSlice& s, bool dut_driven) {
    for (unsigned b = 0; b < s.nbits; ++b) {
      const std::size_t pin = s.byte_lane * kPinsPerLane + s.start_bit + b;
      (dut_driven ? dut : tester)[pin] = true;
    }
  };
  const auto in_range = [](const LaneSlice& s) {
    return s.byte_lane < kByteLanes && s.nbits >= 1 &&
           s.nbits <= kPinsPerLane && s.start_bit + s.nbits <= kPinsPerLane;
  };
  // Lowest free contiguous run of the slice's width, scanning lanes then
  // start bits (runs never span a lane: the board packs per byte lane).
  const auto relocate = [&](LaneSlice& s, bool dut_driven) {
    for (std::uint8_t lane = 0; lane < kByteLanes; ++lane) {
      for (std::uint8_t start = 0; start + s.nbits <= kPinsPerLane; ++start) {
        const LaneSlice cand{lane, start, s.nbits};
        if (pins_free(cand, dut_driven)) {
          s = cand;
          return true;
        }
      }
    }
    return false;
  };
  const auto handle = [&](std::vector<LaneSlice>& slices,
                          const std::string& port, bool dut_driven) {
    for (std::size_t i = 0; i < slices.size(); ++i) {
      LaneSlice& s = slices[i];
      if (in_range(s) && pins_free(s, dut_driven)) {
        claim(s, dut_driven);  // first claimant keeps its pins
        continue;
      }
      SliceMove mv{port, i, s, s, false};
      if (s.nbits >= 1 && s.nbits <= kPinsPerLane) {
        LaneSlice target = s;
        if (relocate(target, dut_driven)) {
          mv.to = target;
          mv.ok = true;
          s = target;
          claim(s, dut_driven);
        }
      }
      out.changed |= mv.ok;
      out.complete &= mv.ok;
      out.moves.push_back(std::move(mv));
    }
  };

  for (auto& m : out.patched.inports) {
    handle(m.slices, "inport " + std::to_string(m.inport),
           /*dut_driven=*/false);
  }
  for (auto& m : out.patched.ctrlports) {
    handle(m.slices, "ctrlport " + std::to_string(m.ctrlport),
           /*dut_driven=*/false);
  }
  for (auto& m : out.patched.outports) {
    handle(m.slices, "outport " + std::to_string(m.outport),
           /*dut_driven=*/true);
  }
  return out;
}

std::string render_board_config(const board::ConfigDataSet& cfg) {
  std::ostringstream os;
  const auto slices_str = [](const std::vector<LaneSlice>& slices) {
    std::string out = "{";
    for (std::size_t i = 0; i < slices.size(); ++i) {
      if (i) out += ",";
      out += " " + slice_str(slices[i]);
    }
    return out + " }";
  };
  os << "gating_factor " << cfg.gating_factor << "\n";
  for (const InportMapping& m : cfg.inports) {
    os << "inport " << m.inport << " width " << m.width << " "
       << slices_str(m.slices) << "\n";
  }
  for (const CtrlportMapping& m : cfg.ctrlports) {
    os << "ctrlport " << m.ctrlport << " width " << m.width << " "
       << slices_str(m.slices) << " write_value " << m.write_value << "\n";
  }
  for (const OutportMapping& m : cfg.outports) {
    os << "outport " << m.outport << " width " << m.width << " "
       << slices_str(m.slices) << "\n";
  }
  for (const IoPortMapping& m : cfg.ioports) {
    os << "ioport in " << m.inport << " out " << m.outport << " ctrl "
       << m.ctrlport << " width " << m.width << " dut_drives_value "
       << m.dut_drives_value << "\n";
  }
  return os.str();
}

void analyze_board_config(const board::ConfigDataSet& cfg,
                          const std::string& scope, Report& report) {
  const PinRemap remap = propose_pin_remap(cfg);
  Ctx ctx{scope, report, remap.changed ? &remap : nullptr, {}, {}};

  if (cfg.gating_factor == 0) {
    report.add("BRD-GATING", Severity::kError, kFamily,
               qualify(scope, "config"),
               "clock gating factor is 0; the effective DUT clock (board "
               "clock / gating factor) is undefined",
               "use a gating factor >= 1");
  }

  for (const InportMapping& m : cfg.inports) {
    check_slices(ctx, "inport " + std::to_string(m.inport), m.slices, m.width,
                 /*dut_driven=*/false);
  }
  for (const CtrlportMapping& m : cfg.ctrlports) {
    const std::string port = "ctrlport " + std::to_string(m.ctrlport);
    check_slices(ctx, port, m.slices, m.width, /*dut_driven=*/false);
    if (m.width < 64 && (m.write_value >> m.width) != 0) {
      report.add("BRD-VALUE-OVERFLOW", Severity::kError, kFamily,
                 qualify(scope, port),
                 "write value " + std::to_string(m.write_value) +
                     " does not fit in the port's " +
                     std::to_string(m.width) + " bit(s)",
                 "truncate the write value or widen the ctrlport");
    }
  }
  for (const OutportMapping& m : cfg.outports) {
    check_slices(ctx, "outport " + std::to_string(m.outport), m.slices,
                 m.width, /*dut_driven=*/true);
  }

  check_duplicate_ids(ctx, cfg.inports, "inport", &InportMapping::inport);
  check_duplicate_ids(ctx, cfg.outports, "outport", &OutportMapping::outport);
  check_duplicate_ids(ctx, cfg.ctrlports, "ctrlport",
                      &CtrlportMapping::ctrlport);

  check_ioports(ctx, cfg);
}

}  // namespace castanet::lint

#include "src/lint/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace castanet::lint {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void Report::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void Report::add(std::string rule, Severity severity, std::string component,
                 std::string location, std::string message,
                 std::string fix_hint) {
  diags_.push_back({std::move(rule), severity, std::move(component),
                    std::move(location), std::move(message),
                    std::move(fix_hint)});
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

bool Report::has(std::string_view rule) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

std::vector<const Diagnostic*> Report::by_rule(std::string_view rule) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

void Report::merge(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  suppressed_ += other.suppressed_;
}

namespace {

void render_line(std::ostream& os, const Diagnostic& d) {
  os << to_string(d.severity) << "  " << d.rule << " [" << d.component
     << "] " << d.location << ": " << d.message;
  if (!d.fix_hint.empty()) os << " (fix: " << d.fix_hint << ")";
  os << "\n";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Errors first, then warnings, then notes; stable within a severity so
/// diagnostics keep analyzer order.
std::vector<const Diagnostic*> severity_sorted(
    const std::vector<Diagnostic>& diags) {
  std::vector<const Diagnostic*> ptrs;
  ptrs.reserve(diags.size());
  for (const Diagnostic& d : diags) ptrs.push_back(&d);
  std::stable_sort(ptrs.begin(), ptrs.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return static_cast<int>(a->severity) >
                            static_cast<int>(b->severity);
                   });
  return ptrs;
}

}  // namespace

std::string Report::to_text() const {
  std::ostringstream os;
  for (const Diagnostic* d : severity_sorted(diags_)) render_line(os, *d);
  os << "castanet-lint: " << errors() << " error(s), " << warnings()
     << " warning(s), " << notes() << " note(s)";
  if (suppressed_) os << ", " << suppressed_ << " suppressed";
  os << "\n";
  return os.str();
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic* d : severity_sorted(diags_)) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"rule\": \"" << json_escape(d->rule) << "\", \"severity\": \""
       << to_string(d->severity) << "\", \"component\": \""
       << json_escape(d->component) << "\", \"location\": \""
       << json_escape(d->location) << "\", \"message\": \""
       << json_escape(d->message) << "\", \"fix_hint\": \""
       << json_escape(d->fix_hint) << "\"}";
  }
  os << (first ? "" : "\n  ") << "],\n";
  os << "  \"errors\": " << errors() << ",\n  \"warnings\": " << warnings()
     << ",\n  \"notes\": " << notes() << ",\n  \"suppressed\": " << suppressed_
     << "\n}\n";
  return os.str();
}

json::Value Report::to_json_value() const {
  json::Array diags;
  for (const Diagnostic* d : severity_sorted(diags_)) {
    json::Object o;
    o.emplace_back("rule", json::Value(d->rule));
    o.emplace_back("severity", json::Value(to_string(d->severity)));
    o.emplace_back("component", json::Value(d->component));
    o.emplace_back("location", json::Value(d->location));
    o.emplace_back("message", json::Value(d->message));
    o.emplace_back("fix_hint", json::Value(d->fix_hint));
    diags.emplace_back(std::move(o));
  }
  json::Object root;
  root.emplace_back("diagnostics", json::Value(std::move(diags)));
  root.emplace_back("errors",
                    json::Value(static_cast<std::int64_t>(errors())));
  root.emplace_back("warnings",
                    json::Value(static_cast<std::int64_t>(warnings())));
  root.emplace_back("notes", json::Value(static_cast<std::int64_t>(notes())));
  root.emplace_back("suppressed",
                    json::Value(static_cast<std::int64_t>(suppressed_)));
  return json::Value(std::move(root));
}

Report Report::from_json(const json::Value& v) {
  const json::Value* diags = v.find("diagnostics");
  if (diags == nullptr || !diags->is_array()) {
    throw LintError("lint JSON: missing \"diagnostics\" array");
  }
  Report r;
  for (const json::Value& e : diags->as_array()) {
    if (!e.is_object()) {
      throw LintError("lint JSON: diagnostic entry is not an object");
    }
    Diagnostic d;
    d.rule = e.string_or("rule", "");
    const std::string sev = e.string_or("severity", "");
    if (sev == "note") {
      d.severity = Severity::kNote;
    } else if (sev == "warning") {
      d.severity = Severity::kWarning;
    } else if (sev == "error") {
      d.severity = Severity::kError;
    } else {
      throw LintError("lint JSON: unknown severity \"" + sev + "\"");
    }
    d.component = e.string_or("component", "");
    d.location = e.string_or("location", "");
    d.message = e.string_or("message", "");
    d.fix_hint = e.string_or("fix_hint", "");
    r.add(std::move(d));
  }
  const std::int64_t sup = v.int_or("suppressed", 0);
  for (std::int64_t i = 0; i < sup; ++i) r.note_suppressed();
  return r;
}

std::string validate_lint_json(const std::string& text) {
  const auto check_one = [](const json::Value& rep) -> std::string {
    const Report r = Report::from_json(rep);
    if (r.to_json_value().dump() != rep.dump()) {
      return "report does not round-trip (unknown keys, mis-ordered "
             "fields, or summary counts inconsistent with the "
             "diagnostics)";
    }
    return "";
  };
  try {
    const json::Value doc = json::parse(text);
    if (!doc.is_object()) return "lint JSON: top level is not an object";
    if (doc.find("diagnostics") != nullptr) return check_one(doc);
    if (doc.as_object().empty()) return "lint JSON: empty document";
    for (const auto& [name, rep] : doc.as_object()) {
      if (!rep.is_object() || rep.find("diagnostics") == nullptr) {
        return "lint JSON: design \"" + name + "\" is not a report object";
      }
      const std::string err = check_one(rep);
      if (!err.empty()) return "design \"" + name + "\": " + err;
    }
    return "";
  } catch (const std::exception& e) {
    return e.what();
  }
}

void Report::throw_if(Severity threshold) const {
  std::ostringstream os;
  std::size_t over = 0;
  for (const Diagnostic* d : severity_sorted(diags_)) {
    if (static_cast<int>(d->severity) >= static_cast<int>(threshold)) {
      ++over;
      render_line(os, *d);
    }
  }
  if (over == 0) return;
  throw LintError("castanet-lint: " + std::to_string(over) +
                  " diagnostic(s) at or above severity '" +
                  to_string(threshold) + "':\n" + os.str());
}

}  // namespace castanet::lint

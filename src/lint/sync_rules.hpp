// Sync-graph analyzers over a VerificationSession (DESIGN.md §10).
//
// The §3.1 protocol's liveness rests on static properties of the sync
// graph: every backend needs a positive effective lookahead δ_j·T (or
// window grants stop dead), every message type the gateway can emit must
// have a registered delay on every attached backend (ConservativeSync::push
// throws on undeclared types — at runtime, possibly hours in), and in
// pipelined mode the bounded SPSC channels must be sized against the
// largest response batch a backend can emit inside one grant.  All of that
// is checkable before the first network event runs; these analyzers do so.
#pragma once

#include "src/castanet/session.hpp"
#include "src/lint/diagnostic.hpp"

namespace castanet::lint {

/// Runs every sync rule on `session` (its gateway, params and attached
/// backends) and appends findings to `report`.  Call after every attach();
/// the session's elaboration hook runs this at exactly the right moment.
void analyze_session_sync(cosim::VerificationSession& session,
                          Report& report);

}  // namespace castanet::lint

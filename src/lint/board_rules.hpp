// Board-configuration analyzers over a board::ConfigDataSet (DESIGN.md §10).
//
// ConfigDataSet::validate() is the runtime gate: it throws on the first
// violation when a board is programmed.  The lint analyzer covers the same
// ground plus the cross-mapping rules validate() cannot afford to check on
// every download, and it *collects* every finding instead of stopping at the
// first — the difference between "the board refused this config" and a
// review of the whole configuration data set.
#pragma once

#include <string>

#include "src/board/config.hpp"
#include "src/lint/diagnostic.hpp"

namespace castanet::lint {

/// Runs every board rule on `cfg` and appends findings to `report`.
/// `scope` prefixes locations when several configs share one report (may be
/// empty).  Never throws on config defects — inspect the report.  When a
/// BRD-PIN-OVERLAP or BRD-LANE-RANGE finding has a concrete relocation in
/// the proposed remap (propose_pin_remap), the fix hint names it.
void analyze_board_config(const board::ConfigDataSet& cfg,
                          const std::string& scope, Report& report);

/// One slice relocation in a proposed pin remap.
struct SliceMove {
  std::string port;            ///< "inport 3", "ctrlport 1", "outport 0"
  std::size_t slice_index = 0; ///< index into that mapping's slices
  board::LaneSlice from;
  board::LaneSlice to;         ///< == from when no free run was found
  bool ok = true;
};

/// A concrete, non-overlapping lane remap for a defective configuration.
struct PinRemap {
  board::ConfigDataSet patched;  ///< cfg with every `ok` move applied
  std::vector<SliceMove> moves;
  bool changed = false;   ///< at least one move was proposed
  bool complete = true;   ///< every conflicting slice found a free run
};

/// Proposes a remap for the overlap/range defects BRD-PIN-OVERLAP and
/// BRD-LANE-RANGE report: walk the mappings in declaration order
/// (inports, ctrlports, then outports), let the first claimant of a pin
/// keep it, and move each conflicting or out-of-range slice to the lowest
/// free contiguous run of its width.  Tester-driven slices avoid other
/// tester pins; DUT-driven slices avoid both planes (the
/// ConfigDataSet::validate contract).  Slices whose width itself is
/// invalid (nbits 0 or > 8) cannot be relocated and are left in place
/// with `ok = false`.
PinRemap propose_pin_remap(const board::ConfigDataSet& cfg);

/// Renders a configuration data set as the text `castanet_lint
/// --fix-dry-run` prints (one line per mapping, slices as
/// "lane N bits [a..b)").
std::string render_board_config(const board::ConfigDataSet& cfg);

}  // namespace castanet::lint

// Board-configuration analyzers over a board::ConfigDataSet (DESIGN.md §10).
//
// ConfigDataSet::validate() is the runtime gate: it throws on the first
// violation when a board is programmed.  The lint analyzer covers the same
// ground plus the cross-mapping rules validate() cannot afford to check on
// every download, and it *collects* every finding instead of stopping at the
// first — the difference between "the board refused this config" and a
// review of the whole configuration data set.
#pragma once

#include <string>

#include "src/board/config.hpp"
#include "src/lint/diagnostic.hpp"

namespace castanet::lint {

/// Runs every board rule on `cfg` and appends findings to `report`.
/// `scope` prefixes locations when several configs share one report (may be
/// empty).  Never throws on config defects — inspect the report.
void analyze_board_config(const board::ConfigDataSet& cfg,
                          const std::string& scope, Report& report);

}  // namespace castanet::lint

// Rule suppressions shared by every analyzer family (DESIGN.md §10/§13).
//
// A suppression is the annotation mechanism for findings that are by
// design (tri-state buses, intentional tie-offs): withhold a specific rule
// on a specific net instead of ignoring the whole report.  Families apply
// suppressions *before* running a rule, so a fully suppressed rule skips
// its analysis entirely — the dataflow fixpoint is expensive enough that
// "analyze, then discard" would be wasted work.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/lint/diagnostic.hpp"

namespace castanet::lint {

/// One rule suppression: findings of `rule` anchored on a signal matching
/// `signal` are withheld (Report::note_suppressed counts them).  `signal`
/// is the bare kernel signal name — exact, or a trailing-'*' prefix glob
/// ("sw.rx0.*"); "*" matches every signal.  `rule` is a rule ID — exact, a
/// trailing-'*' prefix glob ("DF-*"), or empty/"*" for every rule.
struct RuleSuppression {
  std::string rule;
  std::string signal;
};

/// Exact match, or trailing-'*' prefix glob ("sw.rx*" matches "sw.rx0.q").
inline bool pattern_matches(std::string_view pattern, std::string_view name) {
  if (!pattern.empty() && pattern.back() == '*') {
    const std::size_t n = pattern.size() - 1;
    return name.size() >= n && name.compare(0, n, pattern.substr(0, n)) == 0;
  }
  return pattern == name;
}

inline bool rule_matches(std::string_view pattern, std::string_view rule) {
  if (pattern.empty() || pattern == "*") return true;
  return pattern_matches(pattern, rule);
}

/// True (and counted on the report) when a suppression covers this rule on
/// this signal.
inline bool is_suppressed(const std::vector<RuleSuppression>& suppressions,
                          std::string_view rule, std::string_view signal,
                          Report& report) {
  for (const RuleSuppression& s : suppressions) {
    if (!rule_matches(s.rule, rule)) continue;
    if (!pattern_matches(s.signal, signal)) continue;
    report.note_suppressed();
    return true;
  }
  return false;
}

/// True when a suppression withholds `rule` on *every* signal ("RULE@*"):
/// the family can skip the rule's analysis entirely.  Skipped-family
/// findings are not individually counted as suppressed (they were never
/// computed).
inline bool rule_fully_suppressed(
    const std::vector<RuleSuppression>& suppressions, std::string_view rule) {
  for (const RuleSuppression& s : suppressions) {
    if (rule_matches(s.rule, rule) && s.signal == "*") return true;
  }
  return false;
}

}  // namespace castanet::lint

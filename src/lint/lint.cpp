#include "src/lint/lint.hpp"

#include <utility>

#include "src/castanet/backend.hpp"

namespace castanet::lint {

Report analyze_session(cosim::VerificationSession& session,
                       const Options& opts) {
  Report report;
  analyze_session_sync(session, report);
  for (std::size_t i = 0; i < session.backend_count(); ++i) {
    cosim::DutBackend& b = session.backend(i);
    if (auto* r = dynamic_cast<cosim::RtlBackend*>(&b)) {
      NetlistOptions nopts;
      nopts.depth = opts.depth;
      nopts.scope = b.name();
      nopts.suppressions = opts.suppressions;
      if (opts.depth == NetlistDepth::kProbed) {
        settle(r->hdl(), r->sync().params().clock_period, opts.settle_cycles);
      }
      analyze_netlist(r->hdl(), nopts, report);
      if (opts.dataflow) {
        DataflowOptions dopts = opts.dataflow_options;
        dopts.scope = b.name();
        dopts.suppressions = opts.suppressions;
        const DataflowStats stats = analyze_dataflow(r->hdl(), dopts, report);
        if (opts.dataflow_stats != nullptr) {
          opts.dataflow_stats->processes_probed += stats.processes_probed;
          opts.dataflow_stats->probe_evaluations += stats.probe_evaluations;
          opts.dataflow_stats->fixpoint_passes += stats.fixpoint_passes;
          opts.dataflow_stats->degraded_processes += stats.degraded_processes;
          opts.dataflow_stats->constant_signals += stats.constant_signals;
          opts.dataflow_stats->wall_ns += stats.wall_ns;
        }
      }
    } else if (auto* brd = dynamic_cast<cosim::BoardBackend*>(&b)) {
      analyze_board_config(brd->board().config(), b.name(), report);
    }
  }
  if (opts.strict) report.throw_if(Severity::kError);
  return report;
}

void install_elaboration_hooks(HookConfig cfg) {
  // Each hook captures its own copy; the shared_ptr-free copies keep the
  // config alive for as long as the hooks are installed.
  const HookConfig sim_cfg = cfg;
  rtl::Simulator::set_elaboration_hook([sim_cfg](rtl::Simulator& sim) {
    Report report;
    analyze_netlist(sim, NetlistOptions{}, report);
    if (sim_cfg.dataflow) analyze_dataflow(sim, DataflowOptions{}, report);
    if (sim_cfg.sink) sim_cfg.sink(report);
    if (sim_cfg.strict) report.throw_if(Severity::kError);
  });
  cosim::VerificationSession::set_elaboration_hook(
      [cfg = std::move(cfg)](cosim::VerificationSession& session) {
        Options opts;
        opts.depth = NetlistDepth::kElaboration;
        opts.dataflow = cfg.dataflow;
        Report report = analyze_session(session, opts);
        if (cfg.sink) cfg.sink(report);
        if (cfg.strict) report.throw_if(Severity::kError);
      });
}

void clear_elaboration_hooks() {
  rtl::Simulator::set_elaboration_hook({});
  cosim::VerificationSession::set_elaboration_hook({});
}

}  // namespace castanet::lint

#include "src/lint/netlist.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace castanet::lint {

namespace {

constexpr const char* kFamily = "netlist";

std::string qualify(const std::string& scope, std::string loc) {
  if (scope.empty()) return loc;
  return scope + ": " + loc;
}

/// Shared suppression machinery (suppress.hpp), bound to this family's
/// options.
bool is_suppressed(const NetlistOptions& opts, std::string_view rule,
                   const std::string& signal, Report& report) {
  return lint::is_suppressed(opts.suppressions, rule, signal, report);
}

bool has_x(const rtl::LogicVector& v) {
  for (std::size_t i = 0; i < v.width(); ++i) {
    if (v.bit(i) == rtl::Logic::X || v.bit(i) == rtl::Logic::W) return true;
  }
  return false;
}

bool has_u(const rtl::LogicVector& v) {
  for (std::size_t i = 0; i < v.width(); ++i) {
    if (v.bit(i) == rtl::Logic::U) return true;
  }
  return false;
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += " -> ";
    out += path[i];
  }
  return out;
}

void check_drivers(const rtl::Simulator& sim, const NetlistOptions& opts,
                   Report& report) {
  for (rtl::SignalId s = 0; s < sim.signal_count(); ++s) {
    const std::vector<rtl::ProcessId> drivers = sim.drivers_of(s);
    if (drivers.size() < 2) continue;
    std::string who;
    for (std::size_t i = 0; i < drivers.size(); ++i) {
      if (i) who += ", ";
      who += drivers[i] == rtl::kExternalProcess
                 ? "<external>"
                 : "'" + sim.process_name(drivers[i]) + "'";
    }
    const std::string name = sim.signal_name(s);
    const std::string loc = qualify(opts.scope, "signal '" + name + "'");
    if (has_x(sim.value(s))) {
      if (is_suppressed(opts, "NET-CONTENTION", name, report)) continue;
      report.add("NET-CONTENTION", Severity::kError, kFamily, loc,
                 "bus contention: " + std::to_string(drivers.size()) +
                     " drivers (" + who + ") resolve to unknown bits (" +
                     sim.value(s).to_string() + ")",
                 "make all but one driver release the bus (drive 'Z') before "
                 "another drives a value");
    } else {
      if (is_suppressed(opts, "NET-MULTI-DRIVEN", name, report)) continue;
      report.add("NET-MULTI-DRIVEN", Severity::kNote, kFamily, loc,
                 "resolved signal with " + std::to_string(drivers.size()) +
                     " drivers (" + who + ")",
                 "expected for tri-state buses; check the driver list if this "
                 "net is not a bus");
    }
  }
}

void check_bindings(const rtl::Simulator& sim, const NetlistOptions& opts,
                    Report& report) {
  for (const rtl::PortBinding& b : sim.port_bindings()) {
    if (b.expected_width == sim.width(b.sig)) continue;
    if (is_suppressed(opts, "NET-WIDTH-MISMATCH", sim.signal_name(b.sig),
                      report)) {
      continue;
    }
    report.add("NET-WIDTH-MISMATCH", Severity::kError, kFamily,
               qualify(opts.scope, "port " + b.context + " on signal '" +
                                       sim.signal_name(b.sig) + "'"),
               "port expects width " + std::to_string(b.expected_width) +
                   " but the bound signal is " +
                   std::to_string(sim.width(b.sig)) + " bit(s) wide",
               "bind a signal of the declared width or fix the port "
               "declaration");
  }
}

void check_undriven(const rtl::Simulator& sim, const NetlistOptions& opts,
                    Report& report) {
  // One diagnostic per undriven signal, naming every input port bound to it.
  std::vector<bool> reported(sim.signal_count(), false);
  for (const rtl::PortBinding& b : sim.port_bindings()) {
    if (b.dir != rtl::PortDir::kIn) continue;
    if (reported[b.sig] || !sim.drivers_of(b.sig).empty()) continue;
    reported[b.sig] = true;
    std::string ports = b.context;
    for (const rtl::PortBinding& o : sim.port_bindings()) {
      if (&o != &b && o.sig == b.sig && o.dir == rtl::PortDir::kIn) {
        ports += ", " + o.context;
      }
    }
    const std::string name = sim.signal_name(b.sig);
    const std::string loc = qualify(opts.scope, "signal '" + name + "'");
    if (has_u(sim.value(b.sig))) {
      if (is_suppressed(opts, "NET-UNDRIVEN", name, report)) continue;
      report.add("NET-UNDRIVEN", Severity::kError, kFamily, loc,
                 "input port(s) " + ports +
                     " read this signal but nothing drives it and it is "
                     "uninitialized (" +
                     sim.value(b.sig).to_string() + ")",
                 "connect a driver or give the signal a defined init value");
    } else {
      if (is_suppressed(opts, "NET-UNDRIVEN-CONST", name, report)) continue;
      report.add("NET-UNDRIVEN-CONST", Severity::kNote, kFamily, loc,
                 "input port(s) " + ports +
                     " read this signal; it has no driver and holds its init "
                     "value (" +
                     sim.value(b.sig).to_string() + ")",
                 "fine for tie-offs; connect a driver if this should toggle");
    }
  }
}

}  // namespace

void settle(rtl::Simulator& sim, SimTime clock_period, std::uint64_t cycles) {
  sim.set_read_tracking(true);
  sim.initialize();
  if (clock_period > SimTime::zero() && cycles > 0) {
    sim.run_until(sim.now() + clock_period * cycles);
  }
}

void analyze_netlist(rtl::Simulator& sim, const NetlistOptions& opts,
                     Report& report) {
  sim.initialize();

  check_bindings(sim, opts, report);
  check_drivers(sim, opts, report);

  // Suppressions gate the *analysis*, not just the reporting: a rule
  // suppressed on every signal never runs its graph search (suppress.hpp).
  if (!rule_fully_suppressed(opts.suppressions, "NET-COMB-LOOP")) {
    const std::vector<std::string> comb_cycle =
        rtl::find_combinational_cycle(sim);
    if (!comb_cycle.empty()) {
      report.add("NET-COMB-LOOP", Severity::kError, kFamily,
                 qualify(opts.scope, comb_cycle.front()),
                 "combinational loop: " + join_path(comb_cycle),
                 "break the loop with a clocked process or remove the "
                 "back-path from the sensitivity list");
    }
  }

  if (opts.depth == NetlistDepth::kProbed) {
    check_undriven(sim, opts, report);
    if (!rule_fully_suppressed(opts.suppressions, "NET-TOPOLOGY")) {
      const TopologyInfo topo = classify_topology(sim);
      if (topo.feed_forward) {
        report.add("NET-TOPOLOGY", Severity::kNote, kFamily,
                   qualify(opts.scope, "design"),
                   "dataflow topology is feed-forward: pipelined "
                   "co-simulation preserves bit-identity with serial mode "
                   "(DESIGN.md §7)",
                   "");
      } else {
        report.add("NET-TOPOLOGY", Severity::kNote, kFamily,
                   qualify(opts.scope, "design"),
                   "dataflow topology has feedback (" + join_path(topo.cycle) +
                       "): the §7 bit-identity guarantee for pipelined mode "
                       "does not apply automatically",
                   "verify responses do not influence later stimulus, or use "
                   "serial mode for signoff");
      }
    }

    // Name every region the two-phase scheduler refuses to levelize
    // (DESIGN.md §7.7): these processes evaluate under the delta loop on
    // every wake, so they are where a redesign buys simulation speed.
    if (!rule_fully_suppressed(opts.suppressions, "LEVELIZE-FALLBACK")) {
      const rtl::LevelSchedule sched = rtl::levelize(sim);
      for (const rtl::FallbackRegion& region : sched.fallback_regions) {
        std::string members;
        for (std::size_t i = 0; i < region.members.size(); ++i) {
          if (i) members += ", ";
          members += "'" + sim.process_name(region.members[i]) + "'";
        }
        report.add("LEVELIZE-FALLBACK", Severity::kNote, kFamily,
                   qualify(opts.scope, "design"),
                   "combinational region {" + members +
                       "} is cyclic: the levelized two-phase scheduler falls "
                       "back to delta iteration for time points that wake it",
                   "break the combinational cycle (register one path) to let "
                   "the kernel evaluate these processes in one ranked pass");
      }
    }
  }
}

}  // namespace castanet::lint

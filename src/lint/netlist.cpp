#include "src/lint/netlist.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace castanet::lint {

namespace {

constexpr const char* kFamily = "netlist";

std::string qualify(const std::string& scope, std::string loc) {
  if (scope.empty()) return loc;
  return scope + ": " + loc;
}

bool signal_matches(const std::string& pattern, const std::string& name) {
  if (!pattern.empty() && pattern.back() == '*') {
    const std::size_t n = pattern.size() - 1;
    return name.size() >= n && name.compare(0, n, pattern, 0, n) == 0;
  }
  return pattern == name;
}

/// True (and counted on the report) when a suppression entry covers this
/// rule on this signal.
bool is_suppressed(const NetlistOptions& opts, std::string_view rule,
                   const std::string& signal, Report& report) {
  for (const RuleSuppression& s : opts.suppressions) {
    if (!s.rule.empty() && s.rule != "*" && s.rule != rule) continue;
    if (!signal_matches(s.signal, signal)) continue;
    report.note_suppressed();
    return true;
  }
  return false;
}

bool has_x(const rtl::LogicVector& v) {
  for (std::size_t i = 0; i < v.width(); ++i) {
    if (v.bit(i) == rtl::Logic::X || v.bit(i) == rtl::Logic::W) return true;
  }
  return false;
}

bool has_u(const rtl::LogicVector& v) {
  for (std::size_t i = 0; i < v.width(); ++i) {
    if (v.bit(i) == rtl::Logic::U) return true;
  }
  return false;
}

/// One dataflow edge: following `sig`, control/data reaches process `to`.
struct Edge {
  rtl::ProcessId to;
  rtl::SignalId sig;
};
using Graph = std::vector<std::vector<Edge>>;

/// Process-granularity cycle search (iterative DFS with an explicit stack so
/// deep designs cannot overflow the call stack).  Returns the first cycle
/// found as alternating "process -> signal -> process" path elements, or an
/// empty vector when the graph is acyclic.
std::vector<std::string> find_cycle(const rtl::Simulator& sim,
                                    const Graph& g) {
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(g.size(), kWhite);
  struct Frame {
    rtl::ProcessId pid;
    std::size_t next_edge;
  };
  for (rtl::ProcessId root = 0; root < g.size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    // via[i] is the signal that led from stack[i-1] to stack[i].
    std::vector<rtl::SignalId> via{0};
    color[root] = kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_edge < g[f.pid].size()) {
        const Edge& e = g[f.pid][f.next_edge++];
        if (color[e.to] == kGray) {
          // Found a back edge: unwind the stack to the cycle entry.
          std::size_t start = stack.size();
          while (start > 0 && stack[start - 1].pid != e.to) --start;
          std::vector<std::string> path;
          for (std::size_t i = start - 1; i < stack.size(); ++i) {
            path.push_back("process '" + sim.process_name(stack[i].pid) + "'");
            const rtl::SignalId s =
                i + 1 < stack.size() ? via[i + 1] : e.sig;
            path.push_back("signal '" + sim.signal_name(s) + "'");
          }
          path.push_back("process '" + sim.process_name(e.to) + "'");
          return path;
        }
        if (color[e.to] == kWhite) {
          color[e.to] = kGray;
          stack.push_back({e.to, 0});
          via.push_back(e.sig);
        }
      } else {
        color[f.pid] = kBlack;
        stack.pop_back();
        via.pop_back();
      }
    }
  }
  return {};
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += " -> ";
    out += path[i];
  }
  return out;
}

/// Combinational dependency graph: P -> Q when P (a real process) drives a
/// signal Q is *sensitive* to.  All kernel writes are zero-delay, so a cycle
/// here is genuine delta-cycle feedback; clocked processes are only
/// sensitive to their clock, which the clock generator drives from the
/// external slot, so register loops do not appear.
Graph comb_graph(const rtl::Simulator& sim) {
  Graph g(sim.process_count());
  for (rtl::SignalId s = 0; s < sim.signal_count(); ++s) {
    for (rtl::ProcessId p : sim.drivers_of(s)) {
      if (p == rtl::kExternalProcess) continue;
      for (rtl::ProcessId q : sim.sensitive_processes(s)) {
        if (q == rtl::kExternalProcess) continue;
        g[p].push_back({q, s});
      }
    }
  }
  return g;
}

/// Dataflow graph for the topology classifier: P -> Q when P drives a signal
/// Q is sensitive to *or reads* (read tracking).  Cycles here mean some
/// process's outputs eventually influence its own inputs — the design has
/// feedback across the module graph even if every individual path is
/// registered.
Graph dataflow_graph(const rtl::Simulator& sim) {
  Graph g(sim.process_count());
  for (rtl::SignalId s = 0; s < sim.signal_count(); ++s) {
    std::vector<rtl::ProcessId> sinks = sim.sensitive_processes(s);
    for (rtl::ProcessId r : sim.readers_of(s)) {
      if (std::find(sinks.begin(), sinks.end(), r) == sinks.end()) {
        sinks.push_back(r);
      }
    }
    for (rtl::ProcessId p : sim.drivers_of(s)) {
      if (p == rtl::kExternalProcess) continue;
      for (rtl::ProcessId q : sinks) {
        if (q == rtl::kExternalProcess || q == p) continue;
        g[p].push_back({q, s});
      }
    }
  }
  return g;
}

void check_drivers(const rtl::Simulator& sim, const NetlistOptions& opts,
                   Report& report) {
  for (rtl::SignalId s = 0; s < sim.signal_count(); ++s) {
    const std::vector<rtl::ProcessId> drivers = sim.drivers_of(s);
    if (drivers.size() < 2) continue;
    std::string who;
    for (std::size_t i = 0; i < drivers.size(); ++i) {
      if (i) who += ", ";
      who += drivers[i] == rtl::kExternalProcess
                 ? "<external>"
                 : "'" + sim.process_name(drivers[i]) + "'";
    }
    const std::string name = sim.signal_name(s);
    const std::string loc = qualify(opts.scope, "signal '" + name + "'");
    if (has_x(sim.value(s))) {
      if (is_suppressed(opts, "NET-CONTENTION", name, report)) continue;
      report.add("NET-CONTENTION", Severity::kError, kFamily, loc,
                 "bus contention: " + std::to_string(drivers.size()) +
                     " drivers (" + who + ") resolve to unknown bits (" +
                     sim.value(s).to_string() + ")",
                 "make all but one driver release the bus (drive 'Z') before "
                 "another drives a value");
    } else {
      if (is_suppressed(opts, "NET-MULTI-DRIVEN", name, report)) continue;
      report.add("NET-MULTI-DRIVEN", Severity::kNote, kFamily, loc,
                 "resolved signal with " + std::to_string(drivers.size()) +
                     " drivers (" + who + ")",
                 "expected for tri-state buses; check the driver list if this "
                 "net is not a bus");
    }
  }
}

void check_bindings(const rtl::Simulator& sim, const NetlistOptions& opts,
                    Report& report) {
  for (const rtl::PortBinding& b : sim.port_bindings()) {
    if (b.expected_width == sim.width(b.sig)) continue;
    if (is_suppressed(opts, "NET-WIDTH-MISMATCH", sim.signal_name(b.sig),
                      report)) {
      continue;
    }
    report.add("NET-WIDTH-MISMATCH", Severity::kError, kFamily,
               qualify(opts.scope, "port " + b.context + " on signal '" +
                                       sim.signal_name(b.sig) + "'"),
               "port expects width " + std::to_string(b.expected_width) +
                   " but the bound signal is " +
                   std::to_string(sim.width(b.sig)) + " bit(s) wide",
               "bind a signal of the declared width or fix the port "
               "declaration");
  }
}

void check_undriven(const rtl::Simulator& sim, const NetlistOptions& opts,
                    Report& report) {
  // One diagnostic per undriven signal, naming every input port bound to it.
  std::vector<bool> reported(sim.signal_count(), false);
  for (const rtl::PortBinding& b : sim.port_bindings()) {
    if (b.dir != rtl::PortDir::kIn) continue;
    if (reported[b.sig] || !sim.drivers_of(b.sig).empty()) continue;
    reported[b.sig] = true;
    std::string ports = b.context;
    for (const rtl::PortBinding& o : sim.port_bindings()) {
      if (&o != &b && o.sig == b.sig && o.dir == rtl::PortDir::kIn) {
        ports += ", " + o.context;
      }
    }
    const std::string name = sim.signal_name(b.sig);
    const std::string loc = qualify(opts.scope, "signal '" + name + "'");
    if (has_u(sim.value(b.sig))) {
      if (is_suppressed(opts, "NET-UNDRIVEN", name, report)) continue;
      report.add("NET-UNDRIVEN", Severity::kError, kFamily, loc,
                 "input port(s) " + ports +
                     " read this signal but nothing drives it and it is "
                     "uninitialized (" +
                     sim.value(b.sig).to_string() + ")",
                 "connect a driver or give the signal a defined init value");
    } else {
      if (is_suppressed(opts, "NET-UNDRIVEN-CONST", name, report)) continue;
      report.add("NET-UNDRIVEN-CONST", Severity::kNote, kFamily, loc,
                 "input port(s) " + ports +
                     " read this signal; it has no driver and holds its init "
                     "value (" +
                     sim.value(b.sig).to_string() + ")",
                 "fine for tie-offs; connect a driver if this should toggle");
    }
  }
}

}  // namespace

void settle(rtl::Simulator& sim, SimTime clock_period, std::uint64_t cycles) {
  sim.set_read_tracking(true);
  sim.initialize();
  if (clock_period > SimTime::zero() && cycles > 0) {
    sim.run_until(sim.now() + clock_period * cycles);
  }
}

TopologyInfo classify_topology(const rtl::Simulator& sim) {
  TopologyInfo info;
  info.cycle = find_cycle(sim, dataflow_graph(sim));
  info.feed_forward = info.cycle.empty();
  return info;
}

void analyze_netlist(rtl::Simulator& sim, const NetlistOptions& opts,
                     Report& report) {
  sim.initialize();

  check_bindings(sim, opts, report);
  check_drivers(sim, opts, report);

  const std::vector<std::string> comb_cycle =
      find_cycle(sim, comb_graph(sim));
  if (!comb_cycle.empty()) {
    report.add("NET-COMB-LOOP", Severity::kError, kFamily,
               qualify(opts.scope, comb_cycle.front()),
               "combinational loop: " + join_path(comb_cycle),
               "break the loop with a clocked process or remove the "
               "back-path from the sensitivity list");
  }

  if (opts.depth == NetlistDepth::kProbed) {
    check_undriven(sim, opts, report);
    const TopologyInfo topo = classify_topology(sim);
    if (topo.feed_forward) {
      report.add("NET-TOPOLOGY", Severity::kNote, kFamily,
                 qualify(opts.scope, "design"),
                 "dataflow topology is feed-forward: pipelined co-simulation "
                 "preserves bit-identity with serial mode (DESIGN.md §7)",
                 "");
    } else {
      report.add("NET-TOPOLOGY", Severity::kNote, kFamily,
                 qualify(opts.scope, "design"),
                 "dataflow topology has feedback (" + join_path(topo.cycle) +
                     "): the §7 bit-identity guarantee for pipelined mode "
                     "does not apply automatically",
                 "verify responses do not influence later stimulus, or use "
                 "serial mode for signoff");
    }
  }
}

}  // namespace castanet::lint

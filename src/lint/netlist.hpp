// Netlist analyzers over an elaborated rtl::Simulator (DESIGN.md §10).
//
// The analyzers walk the process/signal graph the kernel exposes: static
// sensitivity lists, driver slots harvested while processes execute, the
// port-binding contracts modules declare at construction, and (optionally)
// read-tracked dataflow edges.  Because driver and reader edges are
// harvested from execution, the caller chooses an analysis depth:
//
//   kElaboration — only initialize() ran (every process executed once).
//                  Combinational logic has driven its outputs; clocked
//                  processes have not seen an edge yet, so rules that need
//                  their drive sets (undriven inputs, the feed-forward
//                  classifier) are skipped.  This is the depth the opt-in
//                  elaboration hook runs at.
//   kProbed      — settle() ran: a short settling window with read tracking
//                  enabled, long enough for clocked processes to fire.  The
//                  full rule set applies.  This is what castanet_lint does.
//
// Either way the analysis is static with respect to the workload: no
// stimulus is applied, and a settling window of a few clock periods is
// negligible next to a co-simulation run.
#pragma once

#include "src/lint/diagnostic.hpp"
#include "src/lint/suppress.hpp"
#include "src/rtl/levelize.hpp"
#include "src/rtl/simulator.hpp"

namespace castanet::lint {

enum class NetlistDepth { kElaboration, kProbed };

struct NetlistOptions {
  NetlistDepth depth = NetlistDepth::kElaboration;
  /// Prefix for diagnostic locations when analyzing several simulators in
  /// one report (e.g. the backend name).
  std::string scope;
  /// Allowlist applied by every signal-anchored rule.
  std::vector<RuleSuppression> suppressions;
};

/// The §3.2/§7 topology classification now lives in the shared rtl
/// elaboration facility (src/rtl/levelize.hpp) — the kernel's two-phase
/// scheduler and these rules consume one implementation.  The lint names
/// stay valid for existing callers.
using TopologyInfo = rtl::TopologyInfo;
using rtl::classify_topology;

/// Prepares `sim` for a kProbed analysis: enables read tracking, runs
/// initialize(), then `cycles` periods of `clock_period` so clocked
/// processes execute and populate their driver/reader edges.  Leaves read
/// tracking enabled (harvest continues if the caller keeps simulating).
void settle(rtl::Simulator& sim, SimTime clock_period,
            std::uint64_t cycles = 4);

/// Runs every netlist rule applicable at `opts.depth` and appends the
/// findings to `report`.  Calls sim.initialize() if the caller has not.
void analyze_netlist(rtl::Simulator& sim, const NetlistOptions& opts,
                     Report& report);

}  // namespace castanet::lint

#include "src/lint/sync_rules.hpp"

#include <string>

#include "src/castanet/backend.hpp"

namespace castanet::lint {

namespace {

constexpr const char* kFamily = "sync";

std::string backend_loc(const cosim::DutBackend& b) {
  return "backend '" + b.name() + "'";
}

void check_backend_lookahead(const cosim::DutBackend& b, Report& report) {
  const cosim::ConservativeSync& sync = b.sync();
  const SimTime period = sync.params().clock_period;
  if (period <= SimTime::zero()) {
    report.add("SYN-LOOKAHEAD", Severity::kError, kFamily, backend_loc(b),
               "sync clock period is " + period.to_string() +
                   ": every effective lookahead δ_j·T is zero or negative, "
                   "so window grants can never advance past network time",
               "set ConservativeSync::Params::clock_period to the backend's "
               "real clock period");
    return;  // the per-input products below would all fire redundantly
  }
  for (const auto& in : sync.declared_inputs()) {
    if (in.delta_cycles == 0 || period * in.delta_cycles <= SimTime::zero()) {
      report.add("SYN-LOOKAHEAD", Severity::kError, kFamily,
                 backend_loc(b) + ", input type " + std::to_string(in.type),
                 "effective lookahead δ·T = " +
                     std::to_string(in.delta_cycles) + " x " +
                     period.to_string() +
                     " is not positive; the time-window policy degenerates "
                     "for this queue",
                 "declare the input with a processing delay of at least one "
                 "clock cycle");
    }
  }
  if (sync.declared_inputs().empty()) {
    report.add("SYN-NO-INPUTS", Severity::kWarning, kFamily, backend_loc(b),
               "no input types declared: the first data message fanned out "
               "to this backend will throw ProtocolError",
               "declare every gateway stream type on this backend, or "
               "detach it");
  }
}

void check_declared_types(const cosim::VerificationSession& session,
                          const cosim::DutBackend& b, Report& report) {
  const cosim::GatewayProcess& gw = session.gateway();
  for (unsigned s = 0; s < gw.streams(); ++s) {
    const cosim::MessageType type = gw.type_for_stream(s);
    if (b.sync().input_declared(type)) continue;
    if (b.sync().declared_inputs().empty()) continue;  // SYN-NO-INPUTS fired
    report.add("SYN-UNDECLARED", Severity::kError, kFamily,
               backend_loc(b),
               "gateway stream " + std::to_string(s) +
                   " emits message type " + std::to_string(type) +
                   ", which has no registered processing delay on this "
                   "backend; the first such message throws ProtocolError",
               "register the type (register_input / register_cell_input / "
               "declare_input) with its δ before running");
  }
}

void check_transport(cosim::VerificationSession& session, Report& report) {
  const auto& p = session.params();
  if (p.transport == cosim::TransportKind::kSocket &&
      p.ipc_overhead_per_message <= SimTime::zero()) {
    report.add("SYN-TRANSPORT", Severity::kWarning, kFamily, "session",
               "socket transport with zero modeled ipc_overhead_per_message: "
               "every gateway message crosses a real kernel boundary whose "
               "cost the simulated clock never sees",
               "model the IPC cost (ipc_overhead_per_message > 0) so socket "
               "and in-process runs make the same timing claims");
  }
}

void check_channels(cosim::VerificationSession& session, Report& report) {
  const auto& p = session.params();
  if (!p.pipelined) return;
  if (p.fanout_batch_messages > p.channel_capacity) {
    report.add("SYN-CAPACITY", Severity::kWarning, kFamily, "session",
               "fan-out batch of " + std::to_string(p.fanout_batch_messages) +
                   " messages exceeds the SPSC channel capacity " +
                   std::to_string(p.channel_capacity) +
                   ": every coalesced flush back-pressures the session "
                   "thread mid-batch",
               "keep fanout_batch_messages at or below channel_capacity");
  }
  if (p.channel_capacity < 2) {
    report.add("SYN-CAPACITY", Severity::kWarning, kFamily, "session",
               "pipelined mode with channel capacity " +
                   std::to_string(p.channel_capacity) +
                   ": every command/response transfer blocks on the full "
                   "channel, serializing the pipeline",
               "use a channel capacity well above the per-grant message "
               "batch (default 256)");
  }
  for (std::size_t i = 0; i < session.backend_count(); ++i) {
    const auto* brd =
        dynamic_cast<const cosim::BoardBackend*>(&session.backend(i));
    if (brd == nullptr) continue;
    if (brd->params().cells_per_batch > p.channel_capacity) {
      report.add(
          "SYN-CAPACITY", Severity::kWarning, kFamily,
          backend_loc(session.backend(i)),
          "board batch size " + std::to_string(brd->params().cells_per_batch) +
              " exceeds the SPSC channel capacity " +
              std::to_string(p.channel_capacity) +
              ": a batch that responds per cell back-pressures its worker "
              "mid-batch",
          "raise channel_capacity above cells_per_batch (or shrink the "
          "batch)");
    }
  }
}

}  // namespace

void analyze_session_sync(cosim::VerificationSession& session,
                          Report& report) {
  for (std::size_t i = 0; i < session.backend_count(); ++i) {
    const cosim::DutBackend& b = session.backend(i);
    check_backend_lookahead(b, report);
    check_declared_types(session, b, report);
  }
  if (session.backend_count() == 0) {
    report.add("SYN-NO-BACKENDS", Severity::kWarning, kFamily, "session",
               "no backends attached: run_until will advance the network "
               "side with nothing to verify",
               "attach at least one DutBackend before running");
  }
  check_transport(session, report);
  check_channels(session, report);
}

}  // namespace castanet::lint

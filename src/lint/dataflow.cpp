#include "src/lint/dataflow.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/telemetry.hpp"
#include "src/rtl/levelize.hpp"

namespace castanet::lint {

namespace {

constexpr const char* kFamily = "dataflow";

// Per-bit abstract value: a set of the concrete classes a bit may take at a
// settled time point.  'X' stands for every non-01 std_logic value (U, X,
// Z, W, '-'): the IEEE 1164 operators and the to_bool/read_bool accessors
// treat those identically whenever the result is 0/1-determined, so one
// unknown class is enough (DESIGN.md §13).
constexpr std::uint8_t kMay0 = 1;
constexpr std::uint8_t kMay1 = 2;
constexpr std::uint8_t kMayX = 4;
constexpr std::uint8_t kTop = kMay0 | kMay1 | kMayX;

constexpr rtl::SignalId kNone = static_cast<rtl::SignalId>(-1);

std::uint8_t alpha_bit(rtl::Logic l) {
  if (rtl::is_01(l)) return rtl::to_bool(l) ? kMay1 : kMay0;
  return kMayX;
}

rtl::Logic candidate_logic(std::uint8_t c) {
  switch (c) {
    case kMay0:
      return rtl::Logic::L0;
    case kMay1:
      return rtl::Logic::L1;
    default:
      return rtl::Logic::X;
  }
}

int mask_size(std::uint8_t m) {
  return ((m >> 0) & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
}

std::string qualify(const std::string& scope, std::string loc) {
  if (scope.empty()) return loc;
  return scope + ": " + loc;
}

void insert_unique(std::vector<rtl::SignalId>& v, rtl::SignalId s) {
  const auto it = std::lower_bound(v.begin(), v.end(), s);
  if (it == v.end() || *it != s) v.insert(it, s);
}

bool contains_sorted(const std::vector<rtl::SignalId>& v, rtl::SignalId s) {
  return std::binary_search(v.begin(), v.end(), s);
}

struct ProcInfo {
  rtl::ProcKind kind = rtl::ProcKind::kExternal;
  std::uint32_t rank = 0;
  bool degraded = false;
  bool counted = false;
  std::vector<rtl::SignalId> inputs;   ///< sorted; grows via probe harvest
  std::vector<rtl::SignalId> outputs;  ///< sorted; driver slots + probe writes
  std::vector<std::uint8_t> snapshot;  ///< input abstraction at last probe
};

/// The whole analysis for one simulator; see dataflow.hpp for the contract.
class Engine {
 public:
  Engine(rtl::Simulator& sim, const DataflowOptions& opts, Report& report)
      : sim_(sim), opts_(opts), report_(report) {}

  DataflowStats run() {
    const auto t0 = std::chrono::steady_clock::now();
    const bool prev_tracking = sim_.read_tracking();
    sim_.set_read_tracking(true);
    sim_.initialize();

    const bool value_rules =
        !rule_fully_suppressed(opts_.suppressions, "DF-STUCK") ||
        !rule_fully_suppressed(opts_.suppressions, "DF-DEAD-BRANCH") ||
        !rule_fully_suppressed(opts_.suppressions, "DF-X-SOURCE") ||
        !rule_fully_suppressed(opts_.suppressions, "DF-X-SINK") ||
        !rule_fully_suppressed(opts_.suppressions, "DF-UNREACHABLE-STATE");
    const bool cone_rules =
        !rule_fully_suppressed(opts_.suppressions, "DF-CDC") ||
        !rule_fully_suppressed(opts_.suppressions, "DF-RESET");

    if (value_rules || cone_rules) classify();
    if (value_rules) {
      seed();
      fixpoint();
      restore();
      report_stuck();
      report_dead_branches();
      report_x();
      report_unreachable_states();
    }
    if (cone_rules) report_clock_cones();

    sim_.set_read_tracking(prev_tracking);
    stats_.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    publish_telemetry();
    return stats_;
  }

 private:
  // --- structure ---------------------------------------------------------

  void classify() {
    const rtl::LevelSchedule ls = rtl::levelize(sim_);
    info_.assign(sim_.process_count(), {});
    for (std::size_t p = 0; p < info_.size(); ++p) {
      info_[p].kind = ls.kind[p];
      info_[p].rank = p < ls.rank.size() ? ls.rank[p] : 0;
    }
    // Driver slots give each process its (harvested) write set; sensitivity
    // lists plus read tracking give its read set.  Probes extend both.
    for (rtl::SignalId s = 0; s < sim_.signal_count(); ++s) {
      for (rtl::ProcessId p : sim_.drivers_of(s)) {
        if (p != rtl::kExternalProcess) insert_unique(info_[p].outputs, s);
      }
      for (rtl::ProcessId p : sim_.sensitive_processes(s)) {
        insert_unique(info_[p].inputs, s);
      }
      for (rtl::ProcessId p : sim_.readers_of(s)) {
        insert_unique(info_[p].inputs, s);
      }
    }
    comb_order_.clear();
    for (rtl::ProcessId p = 1; p < info_.size(); ++p) {
      if (info_[p].kind == rtl::ProcKind::kCombinational) {
        comb_order_.push_back(p);
      }
    }
    std::stable_sort(comb_order_.begin(), comb_order_.end(),
                     [&](rtl::ProcessId a, rtl::ProcessId b) {
                       return info_[a].rank < info_[b].rank;
                     });
  }

  // --- seeding -----------------------------------------------------------

  void seed() {
    const std::size_t n = sim_.signal_count();
    abs_.assign(n, {});
    locked_.assign(n, 0);
    origin_.assign(n, kNone);
    pred_.assign(n, kNone);
    saved_.clear();
    saved_.reserve(n);
    std::vector<std::uint8_t> has_in_binding(n, 0);
    for (const rtl::PortBinding& b : sim_.port_bindings()) {
      if (b.dir == rtl::PortDir::kIn) has_in_binding[b.sig] = 1;
    }
    for (rtl::SignalId s = 0; s < n; ++s) {
      const rtl::LogicVector& v = sim_.value(s);
      saved_.push_back(v);
      const std::size_t w = v.width();
      abs_[s].assign(w, 0);
      const std::vector<rtl::ProcessId> drivers = sim_.drivers_of(s);
      const bool external =
          std::find(drivers.begin(), drivers.end(), rtl::kExternalProcess) !=
          drivers.end();
      if (external || drivers.size() >= 2) {
        // Environment-driven or resolved (multi-driver) nets: anything may
        // appear, including injected X — never reported, never narrowed.
        std::fill(abs_[s].begin(), abs_[s].end(), kTop);
        locked_[s] = 1;
        continue;
      }
      for (std::size_t b = 0; b < w; ++b) abs_[s][b] = alpha_bit(v.bit(b));
      // X-origin roots: undriven, uninitialized, and *declared* as an input
      // (PortDir::kIn).  An internal conditionally-driven net legitimately
      // idles at U until qualified (a cell bus before its first valid
      // pulse) and must not taint.
      if (drivers.empty() && has_in_binding[s]) {
        bool xish = false;
        for (std::size_t b = 0; b < w; ++b) xish |= (abs_[s][b] == kMayX);
        if (xish) origin_[s] = s;
      }
    }
    // Pinned constants (BRD config values, tie-off assertions).
    for (const auto& [name, val] : opts_.seeds) {
      for (rtl::SignalId s = 0; s < n; ++s) {
        if (sim_.signal_name(s) != name || sim_.width(s) != val.width()) {
          continue;
        }
        for (std::size_t b = 0; b < val.width(); ++b) {
          abs_[s][b] = alpha_bit(val.bit(b));
        }
        locked_[s] = 1;
        origin_[s] = kNone;
      }
    }
    // Everything the engine will not probe — sequential bodies (internal
    // C++ state), fallback (cyclic) regions — degrades its outputs to ⊤ up
    // front: those values are whatever execution makes them.
    for (rtl::ProcessId p = 1; p < info_.size(); ++p) {
      if (info_[p].kind == rtl::ProcKind::kCombinational) continue;
      for (rtl::SignalId o : info_[p].outputs) join_top(o);
    }
  }

  // --- fixpoint ----------------------------------------------------------

  void fixpoint() {
    changed_ = true;
    std::size_t pass = 0;
    while (changed_ && pass < opts_.max_fixpoint_passes) {
      changed_ = false;
      ++pass;
      for (rtl::ProcessId p : comb_order_) {
        if (!info_[p].degraded) maybe_probe(p);
      }
    }
    stats_.fixpoint_passes = pass;
    if (changed_) {
      // Convergence cap hit: drop every still-probing process to ⊤ rather
      // than report from a non-fixpoint (soundness over precision).
      for (rtl::ProcessId p : comb_order_) {
        if (!info_[p].degraded) degrade(p);
      }
    }
  }

  std::vector<std::uint8_t> input_key(const ProcInfo& pi) const {
    std::vector<std::uint8_t> key;
    for (rtl::SignalId s : pi.inputs) {
      key.push_back(origin_[s] != kNone ? 1 : 0);
      key.insert(key.end(), abs_[s].begin(), abs_[s].end());
    }
    return key;
  }

  void maybe_probe(rtl::ProcessId p) {
    ProcInfo& pi = info_[p];
    std::vector<std::uint8_t> key = input_key(pi);
    if (!pi.snapshot.empty() && key == pi.snapshot) return;
    probe_enumerate(p);
    if (!pi.degraded) pi.snapshot = input_key(pi);
  }

  void probe_enumerate(rtl::ProcessId p) {
    ProcInfo& pi = info_[p];
    if (!pi.counted) {
      pi.counted = true;
      ++stats_.processes_probed;
    }
    // The read set can grow while probing (a mux arm read only under some
    // select value); each growth restarts the enumeration over the larger
    // input set.  Growth is monotone and bounded by the signal count, but
    // cap the restarts defensively.
    for (int attempt = 0; attempt < 16; ++attempt) {
      struct FreeBit {
        std::size_t input;  ///< index into pi.inputs
        std::size_t bit;
        std::uint8_t cands[3];
        std::size_t ncand;
      };
      std::vector<FreeBit> free_bits;
      std::size_t combos = 1;
      bool over_budget = false;
      std::vector<rtl::LogicVector> vals;
      vals.reserve(pi.inputs.size());
      for (std::size_t i = 0; i < pi.inputs.size() && !over_budget; ++i) {
        const rtl::SignalId s = pi.inputs[i];
        const std::size_t w = sim_.width(s);
        rtl::LogicVector v(w, rtl::Logic::X);
        for (std::size_t b = 0; b < w; ++b) {
          const std::uint8_t m = abs_[s][b];
          if (mask_size(m) <= 1) {
            v.set_bit(b, candidate_logic(m));
            continue;
          }
          FreeBit fb{i, b, {0, 0, 0}, 0};
          for (std::uint8_t c : {kMay0, kMay1, kMayX}) {
            if (m & c) fb.cands[fb.ncand++] = c;
          }
          combos *= fb.ncand;
          if (combos > opts_.max_probe_evals_per_process) {
            over_budget = true;
            break;
          }
          free_bits.push_back(fb);
        }
        vals.push_back(std::move(v));
      }
      if (over_budget) {
        degrade(p);
        return;
      }
      std::vector<std::size_t> digit(free_bits.size(), 0);
      bool grew = false;
      while (true) {
        for (std::size_t f = 0; f < free_bits.size(); ++f) {
          const FreeBit& fb = free_bits[f];
          vals[fb.input].set_bit(fb.bit, candidate_logic(fb.cands[digit[f]]));
        }
        for (std::size_t i = 0; i < pi.inputs.size(); ++i) {
          sim_.set_value_for_analysis(pi.inputs[i], vals[i]);
        }
        rtl::Simulator::ProbeResult pr = sim_.probe_process(p);
        ++stats_.probe_evaluations;
        if (!pr.clean) {
          degrade(p);
          return;
        }
        for (rtl::SignalId r : pr.reads) {
          if (!contains_sorted(pi.inputs, r)) {
            insert_unique(pi.inputs, r);
            grew = true;
          }
        }
        if (grew) break;
        // Which uninitialized-origin input carried an X into this combo?
        rtl::SignalId taint_root = kNone;
        rtl::SignalId taint_pred = kNone;
        for (std::size_t i = 0; i < pi.inputs.size() && taint_root == kNone;
             ++i) {
          const rtl::SignalId s = pi.inputs[i];
          if (origin_[s] == kNone) continue;
          for (std::size_t b = 0; b < vals[i].width(); ++b) {
            if (!rtl::is_01(vals[i].bit(b))) {
              taint_root = origin_[s];
              taint_pred = s;
              break;
            }
          }
        }
        for (rtl::Simulator::ProbeWrite& w : pr.writes) {
          insert_unique(pi.outputs, w.sig);
          join_write(w.sig, w.value, taint_root, taint_pred);
        }
        // Advance the mixed-radix combination counter.
        std::size_t f = 0;
        for (; f < free_bits.size(); ++f) {
          if (++digit[f] < free_bits[f].ncand) break;
          digit[f] = 0;
        }
        if (f == free_bits.size()) break;  // enumeration complete
      }
      if (!grew) return;
      changed_ = true;
    }
    degrade(p);
  }

  void join_write(rtl::SignalId s, const rtl::LogicVector& v,
                  rtl::SignalId taint_root, rtl::SignalId taint_pred) {
    if (locked_[s]) return;
    bool wrote_x = false;
    for (std::size_t b = 0; b < v.width(); ++b) {
      const std::uint8_t m = alpha_bit(v.bit(b));
      if (m & ~abs_[s][b]) {
        abs_[s][b] |= m;
        changed_ = true;
      }
      wrote_x |= (m == kMayX);
    }
    if (wrote_x && taint_root != kNone && origin_[s] == kNone && s != taint_root) {
      origin_[s] = taint_root;
      pred_[s] = taint_pred;
      changed_ = true;
    }
  }

  void join_top(rtl::SignalId s) {
    if (locked_[s]) return;
    for (std::uint8_t& m : abs_[s]) {
      if (m != kTop) {
        m = kTop;
        changed_ = true;
      }
    }
  }

  void degrade(rtl::ProcessId p) {
    ProcInfo& pi = info_[p];
    if (pi.degraded) return;
    pi.degraded = true;
    ++stats_.degraded_processes;
    for (rtl::SignalId o : pi.outputs) join_top(o);
    changed_ = true;
  }

  void restore() {
    for (rtl::SignalId s = 0; s < saved_.size(); ++s) {
      sim_.set_value_for_analysis(s, saved_[s]);
    }
  }

  // --- rules -------------------------------------------------------------

  bool suppressed(std::string_view rule, const std::string& signal) {
    return is_suppressed(opts_.suppressions, rule, signal, report_);
  }

  /// True when every driver of `s` is a combinational process the engine
  /// enumerated completely — the precondition for claiming "provably".
  bool proven_cone(rtl::SignalId s) const {
    const std::vector<rtl::ProcessId> drivers = sim_.drivers_of(s);
    if (drivers.empty()) return false;
    for (rtl::ProcessId p : drivers) {
      if (p == rtl::kExternalProcess) return false;
      if (info_[p].kind != rtl::ProcKind::kCombinational) return false;
      if (info_[p].degraded) return false;
    }
    return true;
  }

  void report_stuck() {
    if (rule_fully_suppressed(opts_.suppressions, "DF-STUCK")) return;
    for (rtl::SignalId s = 0; s < abs_.size(); ++s) {
      if (locked_[s] || !proven_cone(s)) continue;
      bool constant = true;
      for (const std::uint8_t m : abs_[s]) {
        constant &= (m == kMay0 || m == kMay1);
      }
      if (!constant || abs_[s].empty()) continue;
      rtl::LogicVector v(abs_[s].size(), rtl::Logic::L0);
      for (std::size_t b = 0; b < abs_[s].size(); ++b) {
        v.set_bit(b, abs_[s][b] == kMay1 ? rtl::Logic::L1 : rtl::Logic::L0);
      }
      ++stats_.constant_signals;
      if (opts_.facts) opts_.facts->stuck.push_back({s, v});
      const std::string name = sim_.signal_name(s);
      if (suppressed("DF-STUCK", name)) continue;
      report_.add("DF-STUCK", Severity::kWarning, kFamily,
                  qualify(opts_.scope, "signal '" + name + "'"),
                  "provably constant at \"" + v.to_string() +
                      "\" under every input valuation of its combinational "
                      "cone — dead logic",
                  "remove the dead cone or fix the logic that should be "
                  "driving it");
    }
  }

  void report_dead_branches() {
    if (rule_fully_suppressed(opts_.suppressions, "DF-DEAD-BRANCH")) return;
    const std::vector<rtl::GuardDecl>& guards = sim_.guards();
    for (std::size_t i = 0; i < guards.size(); ++i) {
      const rtl::GuardDecl& g = guards[i];
      // The guard value must be a *proof*, not an assumption: a fully
      // enumerated combinational cone, or a seed the user pinned.  An
      // undriven tie-off (a reset the test bench simply has not driven
      // yet) is NET-UNDRIVEN-CONST territory, not a dead branch.
      if (!proven_cone(g.sig) && !locked_[g.sig]) continue;
      const std::uint8_t m = abs_[g.sig][0];
      // Conservative: the branch is dead only when the guard bit has
      // exactly the inactive polarity (an X could still read as either
      // under a to_bool fallback the declaration does not record).
      const bool dead = g.active_high ? (m == kMay0) : (m == kMay1);
      if (!dead) continue;
      if (opts_.facts) opts_.facts->dead_guards.push_back(i);
      const std::string name = sim_.signal_name(g.sig);
      if (suppressed("DF-DEAD-BRANCH", name)) continue;
      const char* what = g.kind == rtl::GuardKind::kReset ? "reset " : "";
      report_.add(
          "DF-DEAD-BRANCH", Severity::kWarning, kFamily,
          qualify(opts_.scope, "signal '" + name + "'"),
          "process '" + sim_.process_name(g.pid) + "' declares " + what +
              "guard '" + g.label + "' (" +
              (g.active_high ? "active-high" : "active-low") +
              ") on this signal, but it provably never reads " +
              (g.active_high ? "'1'" : "'0'") + ": the guarded branch is dead",
          "connect the guard to a toggling source or remove the dead branch");
    }
  }

  void report_x() {
    const bool want_source =
        !rule_fully_suppressed(opts_.suppressions, "DF-X-SOURCE");
    const bool want_sink =
        !rule_fully_suppressed(opts_.suppressions, "DF-X-SINK");
    if (!want_source && !want_sink) return;
    std::vector<std::uint8_t> reached(abs_.size(), 0);
    for (rtl::SignalId s = 0; s < abs_.size(); ++s) {
      if (origin_[s] == kNone) continue;
      std::string sink_desc;
      for (rtl::ProcessId p : sim_.readers_of(s)) {
        if (p != rtl::kExternalProcess &&
            info_[p].kind == rtl::ProcKind::kSequential) {
          sink_desc = "register process '" + sim_.process_name(p) + "'";
          break;
        }
      }
      if (sink_desc.empty()) {
        for (const rtl::PortBinding& b : sim_.port_bindings()) {
          if (b.sig == s && b.dir != rtl::PortDir::kIn) {
            sink_desc = "output port " + b.context;
            break;
          }
        }
      }
      if (sink_desc.empty()) continue;
      reached[origin_[s]] = 1;
      if (!want_sink) continue;
      const std::string name = sim_.signal_name(s);
      if (suppressed("DF-X-SINK", name)) continue;
      std::string path = "'" + sim_.signal_name(s) + "'";
      for (rtl::SignalId cur = s; cur != origin_[s] && pred_[cur] != kNone;
           cur = pred_[cur]) {
        path = "'" + sim_.signal_name(pred_[cur]) + "' -> " + path;
      }
      report_.add(
          "DF-X-SINK", Severity::kWarning, kFamily,
          qualify(opts_.scope, "signal '" + name + "'"),
          "unknown value from uninitialized/undriven input '" +
              sim_.signal_name(origin_[s]) + "' reaches " + sink_desc +
              " (propagation: " + path + ")",
          "drive or initialize the source input; the unknown value will be "
          "latched/exported here");
    }
    if (!want_source) return;
    for (rtl::SignalId r = 0; r < abs_.size(); ++r) {
      if (origin_[r] != r || reached[r]) continue;
      const bool consumed = !sim_.readers_of(r).empty() ||
                            !sim_.sensitive_processes(r).empty();
      if (!consumed) continue;
      const std::string name = sim_.signal_name(r);
      if (suppressed("DF-X-SOURCE", name)) continue;
      report_.add("DF-X-SOURCE", Severity::kWarning, kFamily,
                  qualify(opts_.scope, "signal '" + name + "'"),
                  "declared input has no driver and an uninitialized value "
                  "(\"" +
                      saved_[r].to_string() +
                      "\"); its unknown bits feed the logic reading it",
                  "connect a driver, give the signal a defined init value, "
                  "or pin it with an analysis seed");
    }
  }

  void report_unreachable_states() {
    if (rule_fully_suppressed(opts_.suppressions, "DF-UNREACHABLE-STATE")) {
      return;
    }
    for (const rtl::FsmDecl& f : sim_.fsms()) {
      // Meaningful only when the next-state cone was fully enumerated;
      // otherwise its abstraction is ⊤ and every encoding is producible.
      for (const rtl::LogicVector& enc : f.states) {
        bool producible = true;
        for (std::size_t b = 0; b < enc.width() && producible; ++b) {
          const std::uint8_t need =
              rtl::to_bool(enc.bit(b)) ? kMay1 : kMay0;
          producible = (abs_[f.next][b] & need) != 0;
        }
        if (producible) continue;
        const std::string name = sim_.signal_name(f.state);
        if (suppressed("DF-UNREACHABLE-STATE", name)) continue;
        report_.add(
            "DF-UNREACHABLE-STATE", Severity::kWarning, kFamily,
            qualify(opts_.scope, "signal '" + name + "'"),
            "FSM '" + f.context + "': state encoding \"" + enc.to_string() +
                "\" is never produced by its next-state cone ('" +
                sim_.signal_name(f.next) + "')",
            "remove the unreachable state or fix the next-state logic that "
            "should reach it");
      }
    }
  }

  // --- clock-cone rules (DF-CDC / DF-RESET) ------------------------------

  using Domain = std::set<rtl::SignalId>;

  std::vector<rtl::SignalId> clocks_of(rtl::ProcessId p) const {
    std::vector<rtl::SignalId> out;
    for (rtl::SignalId s = 0; s < sim_.signal_count(); ++s) {
      const auto& procs = sim_.sensitive_processes(s);
      const auto& rising = sim_.sensitive_rising(s);
      for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i] == p && rising[i]) {
          out.push_back(s);
          break;
        }
      }
    }
    return out;
  }

  /// Root clock sources of signal `s`: externally driven nets reached by
  /// walking drivers backwards — through combinational logic via its reads,
  /// through a sequential divider via that divider's own clocks.
  const Domain& clock_roots(rtl::SignalId s) {
    auto it = roots_memo_.find(s);
    if (it != roots_memo_.end()) return it->second;
    // In-progress marker (cycle guard): an empty domain.
    Domain& out = roots_memo_[s];
    const std::vector<rtl::ProcessId> drivers = sim_.drivers_of(s);
    bool external = drivers.empty();
    for (rtl::ProcessId p : drivers) {
      if (p == rtl::kExternalProcess) {
        external = true;
        continue;
      }
      if (info_[p].kind == rtl::ProcKind::kSequential) {
        for (rtl::SignalId c : clocks_of(p)) {
          const Domain d = clock_roots(c);
          out.insert(d.begin(), d.end());
        }
      } else {
        for (rtl::SignalId i : info_[p].inputs) {
          const Domain d = clock_roots(i);
          out.insert(d.begin(), d.end());
        }
      }
    }
    if (external) out.insert(s);
    return roots_memo_[s];
  }

  /// Clock domains of the sequential producers feeding `s`, traced through
  /// combinational logic.  Externally driven data contributes nothing.
  const Domain& seq_taint(rtl::SignalId s) {
    auto it = taint_memo_.find(s);
    if (it != taint_memo_.end()) return it->second;
    Domain& out = taint_memo_[s];
    for (rtl::ProcessId p : sim_.drivers_of(s)) {
      if (p == rtl::kExternalProcess) continue;
      if (info_[p].kind == rtl::ProcKind::kSequential) {
        const Domain d = domain_of(p);
        out.insert(d.begin(), d.end());
      } else {
        for (rtl::SignalId i : info_[p].inputs) {
          const Domain d = seq_taint(i);
          out.insert(d.begin(), d.end());
        }
      }
    }
    return taint_memo_[s];
  }

  Domain domain_of(rtl::ProcessId p) {
    Domain out;
    for (rtl::SignalId c : clocks_of(p)) {
      const Domain d = clock_roots(c);
      out.insert(d.begin(), d.end());
    }
    return out;
  }

  std::string domain_names(const Domain& d) {
    std::string out = "{";
    bool first = true;
    for (rtl::SignalId s : d) {
      if (!first) out += ", ";
      first = false;
      out += "'" + sim_.signal_name(s) + "'";
    }
    return out + "}";
  }

  void report_clock_cones() {
    const bool want_cdc = !rule_fully_suppressed(opts_.suppressions, "DF-CDC");
    const bool want_reset =
        !rule_fully_suppressed(opts_.suppressions, "DF-RESET");
    for (rtl::ProcessId p = 1; p < info_.size(); ++p) {
      if (info_[p].kind != rtl::ProcKind::kSequential) continue;
      const Domain dom = domain_of(p);
      if (dom.empty()) continue;  // clockless process: nothing to compare
      std::set<rtl::SignalId> reset_sigs;
      for (const rtl::GuardDecl& g : sim_.guards()) {
        if (g.pid == p && g.kind == rtl::GuardKind::kReset) {
          reset_sigs.insert(g.sig);
        }
      }
      const std::vector<rtl::SignalId> clks = clocks_of(p);
      if (want_cdc) {
        for (rtl::SignalId s : info_[p].inputs) {
          if (std::find(clks.begin(), clks.end(), s) != clks.end()) continue;
          if (reset_sigs.count(s)) continue;  // DF-RESET owns reset nets
          const Domain& t = seq_taint(s);
          Domain foreign;
          std::set_difference(t.begin(), t.end(), dom.begin(), dom.end(),
                              std::inserter(foreign, foreign.begin()));
          if (foreign.empty()) continue;
          const std::string name = sim_.signal_name(s);
          if (suppressed("DF-CDC", name)) continue;
          report_.add(
              "DF-CDC", Severity::kWarning, kFamily,
              qualify(opts_.scope, "signal '" + name + "'"),
              "register process '" + sim_.process_name(p) +
                  "' (clock domain " + domain_names(dom) +
                  ") samples this signal, which is derived from clock "
                  "domain " +
                  domain_names(foreign) +
                  " — clock-domain crossing without a declared synchronizer",
              "add a two-flop synchronizer in the sampling domain or move "
              "the producer onto the same clock");
        }
      }
      if (want_reset) {
        for (rtl::SignalId r : reset_sigs) {
          const Domain& t = seq_taint(r);
          Domain foreign;
          std::set_difference(t.begin(), t.end(), dom.begin(), dom.end(),
                              std::inserter(foreign, foreign.begin()));
          if (foreign.empty()) continue;
          const std::string name = sim_.signal_name(r);
          if (suppressed("DF-RESET", name)) continue;
          report_.add(
              "DF-RESET", Severity::kWarning, kFamily,
              qualify(opts_.scope, "signal '" + name + "'"),
              "reset of process '" + sim_.process_name(p) +
                  "' (clock domain " + domain_names(dom) +
                  ") is derived from clock domain " + domain_names(foreign) +
                  " — cross-domain reset release is unsynchronized",
              "generate the reset in the consuming clock domain or "
              "synchronize its deassertion");
        }
      }
    }
  }

  void publish_telemetry() {
    if (!telemetry::enabled()) return;
    auto& hub = telemetry::Hub::instance();
    hub.counter("lint.dataflow.runs").add(1);
    hub.counter("lint.dataflow.probe_evals").add(stats_.probe_evaluations);
    hub.counter("lint.dataflow.wall_ns").add(stats_.wall_ns);
    hub.gauge("lint.dataflow.processes_probed")
        .set(static_cast<double>(stats_.processes_probed));
    hub.gauge("lint.dataflow.degraded")
        .set(static_cast<double>(stats_.degraded_processes));
    hub.gauge("lint.dataflow.constants")
        .set(static_cast<double>(stats_.constant_signals));
  }

  rtl::Simulator& sim_;
  const DataflowOptions& opts_;
  Report& report_;
  DataflowStats stats_;
  std::vector<ProcInfo> info_;
  std::vector<rtl::ProcessId> comb_order_;
  std::vector<std::vector<std::uint8_t>> abs_;
  std::vector<std::uint8_t> locked_;
  std::vector<rtl::SignalId> origin_;
  std::vector<rtl::SignalId> pred_;
  std::vector<rtl::LogicVector> saved_;
  bool changed_ = false;
  std::map<rtl::SignalId, Domain> roots_memo_;
  std::map<rtl::SignalId, Domain> taint_memo_;
};

}  // namespace

DataflowStats analyze_dataflow(rtl::Simulator& sim,
                               const DataflowOptions& opts, Report& report) {
  Engine engine(sim, opts, report);
  return engine.run();
}

}  // namespace castanet::lint

// castanet-lint — static analysis for co-verification setups (DESIGN.md §10).
//
// Umbrella API over the three analyzer families:
//   netlist (src/lint/netlist.hpp)     — NET-* rules over an rtl::Simulator
//   board   (src/lint/board_rules.hpp) — BRD-* rules over a ConfigDataSet
//   sync    (src/lint/sync_rules.hpp)  — SYN-* rules over a session
//
// analyze_session() runs all three over a fully attached
// VerificationSession: sync rules on the session, netlist rules on every
// RtlBackend's HDL kernel, board rules on every BoardBackend's
// configuration.  The castanet_lint CLI and the lint tests use this.
//
// install_elaboration_hooks() arms the opt-in hooks so analysis runs
// automatically inside normal execution: every rtl::Simulator is checked at
// the end of initialize(), every VerificationSession at its first
// run_until (after attach / comparator wiring, before any network event).
// With `strict` set, error-severity findings abort elaboration with a
// LintError instead of surfacing hours later as a runtime throw.
#pragma once

#include <cstdint>
#include <functional>

#include "src/castanet/session.hpp"
#include "src/lint/board_rules.hpp"
#include "src/lint/dataflow.hpp"
#include "src/lint/diagnostic.hpp"
#include "src/lint/netlist.hpp"
#include "src/lint/sync_rules.hpp"

namespace castanet::lint {

struct Options {
  /// Netlist analysis depth for RTL backends.  kProbed runs settle() on
  /// each backend kernel (read tracking + a short settling window) to
  /// enable the undriven-input and topology rules; use kElaboration to
  /// analyze without advancing any kernel.
  NetlistDepth depth = NetlistDepth::kProbed;
  /// Settling window per RTL backend, in that backend's sync clock periods
  /// (kProbed only).
  std::uint64_t settle_cycles = 4;
  /// Throw LintError if the finished report contains error-severity
  /// diagnostics.
  bool strict = false;
  /// Per-signal rule suppressions, forwarded to every backend's netlist
  /// and dataflow analyses (see suppress.hpp).  Suppressed findings are
  /// counted on the report, not silently absent.
  std::vector<RuleSuppression> suppressions;
  /// Run the DF-* abstract-interpretation rules (src/lint/dataflow.hpp) on
  /// every RTL backend after the netlist rules.  Off by default: the probe
  /// fixpoint costs more than the structural rules.
  bool dataflow = false;
  /// Budget knobs and constant seeds forwarded to analyze_dataflow when
  /// `dataflow` is set (scope/suppressions are filled per backend).
  DataflowOptions dataflow_options;
  /// When non-null, accumulates the per-backend dataflow stats (the CLI
  /// uses this for the metrics snapshot).
  DataflowStats* dataflow_stats = nullptr;
};

/// Runs every analyzer family over `session` and its attached backends.
/// Attach every backend first.  With opts.strict, throws LintError on
/// error-severity findings; otherwise inspect the returned report.
Report analyze_session(cosim::VerificationSession& session,
                       const Options& opts = {});

struct HookConfig {
  /// Promote error-severity findings to LintError, aborting elaboration.
  bool strict = false;
  /// Also run the DF-* dataflow rules in both hooks (default-budget
  /// DataflowOptions).  DF findings are warnings, so strict mode stays
  /// safe on clean designs.
  bool dataflow = false;
  /// Invoked with every finished (possibly clean) report, before the strict
  /// check; use to log or collect findings in non-strict mode.
  std::function<void(const Report&)> sink;
};

/// Installs the process-wide elaboration hooks on rtl::Simulator and
/// cosim::VerificationSession (see file comment).  The simulator hook runs
/// the netlist rules at kElaboration depth; the session hook runs the full
/// analyze_session at kElaboration depth (no kernel is advanced behind the
/// caller's back).  Install before elaborating; not thread-safe.
void install_elaboration_hooks(HookConfig cfg);

/// Removes both hooks.
void clear_elaboration_hooks();

}  // namespace castanet::lint

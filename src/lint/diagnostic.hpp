// The diagnostic model of castanet-lint (DESIGN.md §10).
//
// Every analyzer finding is a Diagnostic: a stable rule ID, a severity, the
// analyzer family it came from, the elaborated object it points at, a
// message and an optional fix hint.  A Report collects diagnostics across
// analyzer families, renders them as text or JSON (for the castanet_lint
// CLI), and can promote errors to exceptions (the `strict` elaboration
// hooks).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/error.hpp"
#include "src/core/json.hpp"

namespace castanet::lint {

enum class Severity { kNote, kWarning, kError };

const char* to_string(Severity s);

struct Diagnostic {
  std::string rule;       ///< stable rule ID, e.g. "NET-COMB-LOOP"
  Severity severity = Severity::kWarning;
  std::string component;  ///< analyzer family: "netlist", "board", "sync"
  std::string location;   ///< elaborated object, e.g. "signal 'sw.rx0.state'"
  std::string message;    ///< what is wrong
  std::string fix_hint;   ///< how to fix it (optional)
};

/// Thrown by Report::throw_if (strict mode): static analysis found
/// diagnostics at or above the requested severity.
class LintError : public Error {
 public:
  explicit LintError(const std::string& what) : Error(what) {}
};

class Report {
 public:
  void add(Diagnostic d);
  /// Convenience builder used by the analyzers.
  void add(std::string rule, Severity severity, std::string component,
           std::string location, std::string message,
           std::string fix_hint = "");

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }
  std::size_t notes() const { return count(Severity::kNote); }
  bool empty() const { return diags_.empty(); }

  /// Analyzers call this when a suppression withheld a finding, so reports
  /// still show that findings were silenced rather than absent.
  void note_suppressed() { ++suppressed_; }
  std::size_t suppressed() const { return suppressed_; }

  /// True if any diagnostic carries rule ID `rule`.
  bool has(std::string_view rule) const;
  /// All diagnostics with rule ID `rule`.
  std::vector<const Diagnostic*> by_rule(std::string_view rule) const;

  /// Appends another report's diagnostics (CLI: one report per rig).
  void merge(const Report& other);

  /// One line per diagnostic — "severity rule [component] location: message
  /// (fix: ...)" — ordered errors first, then a summary line.
  std::string to_text() const;
  /// Machine-readable form: {"diagnostics": [...], "errors": N, ...}.
  std::string to_json() const;
  /// Structured form of to_json(): same fields, same order, as a
  /// json::Value document (the CLI --json schema gate round-trips it).
  json::Value to_json_value() const;
  /// Rebuilds a report from to_json()/to_json_value() output.  Throws
  /// LintError when the document is not a lint report (missing
  /// "diagnostics", unknown severity).
  static Report from_json(const json::Value& v);

  /// Throws LintError listing the offending diagnostics when any diagnostic
  /// has severity >= `threshold` (strict elaboration hooks).
  void throw_if(Severity threshold) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t suppressed_ = 0;
};

/// Schema gate for CLI lint JSON (castanet_lint --json / --validate).
/// Accepts a bare report document or an object of design-name -> report,
/// checks structural identity the way castanet_report --validate does:
/// every report must parse back (Report::from_json) and re-serialize to the
/// same document — unknown keys, mis-ordered fields or summary counts that
/// disagree with the diagnostics all fail.  Returns "" when valid, else a
/// one-line description of the first problem.
std::string validate_lint_json(const std::string& text);

}  // namespace castanet::lint

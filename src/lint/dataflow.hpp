// Abstract interpretation over the elaborated netlist (DESIGN.md §13).
//
// analyze_dataflow() propagates a per-bit ternary lattice — may-be-0,
// may-be-1, may-be-unknown — through the combinational cones of an
// elaborated rtl::Simulator to a fixpoint, then reports defects no
// stimulus is needed to expose:
//
//   DF-STUCK             signal provably constant under all inputs
//   DF-DEAD-BRANCH       declared process guard provably never taken
//   DF-X-SOURCE          uninitialized/undriven net consumed by logic
//   DF-X-SINK            such a net's unknown value reaching a register
//                        or output port (with the propagation path)
//   DF-UNREACHABLE-STATE declared FSM encoding never produced by its
//                        next-state cone
//   DF-CDC               register sampling data from a foreign clock cone
//   DF-RESET             declared reset derived from a foreign clock cone
//
// Process bodies are opaque C++ lambdas, so abstract transfer functions
// are obtained by *probing*: sandboxed concrete execution of acyclic
// combinational processes (Simulator::probe_process) over every candidate
// valuation of their free input bits, joining the captured writes.  This
// is sound only under the combinational purity contract; sequential
// bodies carry internal C++ state and are never probed.  Everything the
// engine cannot prove — sequential outputs, fallback (cyclic) regions,
// externally driven nets, over-budget enumerations, probes that threw or
// consulted edge state — degrades to the full ⊤ = {0, 1, X} and is never
// reported.  Zero false positives is the design goal; the randomized
// oracle test (tests/lint/test_dataflow_oracle.cpp) checks every DF-STUCK
// and DF-DEAD-BRANCH verdict against concrete simulation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/lint/diagnostic.hpp"
#include "src/lint/suppress.hpp"
#include "src/rtl/simulator.hpp"

namespace castanet::lint {

/// Work/precision counters for one analyze_dataflow run.  The suppression
/// fast path is observable here: a fully suppressed value-rule family does
/// zero probe work.
struct DataflowStats {
  std::uint64_t processes_probed = 0;    ///< comb processes enumerated
  std::uint64_t probe_evaluations = 0;   ///< sandboxed body executions
  std::uint64_t fixpoint_passes = 0;     ///< rank-order sweeps run
  std::uint64_t degraded_processes = 0;  ///< enumerations abandoned to ⊤
  std::uint64_t constant_signals = 0;    ///< signals proved constant
  std::uint64_t wall_ns = 0;             ///< analysis wall time
};

/// Test/introspection hook: the machine-readable facts behind the
/// diagnostics, filled when DataflowOptions::facts is set.
struct DataflowFacts {
  /// Signals proved constant (DF-STUCK eligible, before suppressions).
  std::vector<std::pair<rtl::SignalId, rtl::LogicVector>> stuck;
  /// Indices into Simulator::guards() proved never taken.
  std::vector<std::size_t> dead_guards;
};

struct DataflowOptions {
  /// Prefix for diagnostic locations (e.g. the backend name).
  std::string scope;
  /// Applied *before* rule families run: a rule suppressed on every signal
  /// skips its analysis entirely (suppress.hpp).
  std::vector<RuleSuppression> suppressions;
  /// Free-bit enumeration budget per process per pass; a process whose
  /// candidate combinations exceed it degrades to ⊤.
  std::size_t max_probe_evals_per_process = 64;
  /// Fixpoint sweep cap; on hitting it without convergence every signal
  /// still in flux degrades to ⊤ (soundness over precision).
  std::size_t max_fixpoint_passes = 8;
  /// Named constant seeds pinned before the fixpoint (BRD config values,
  /// tied-off mode pins): signal name -> value.  Unknown names are ignored.
  std::vector<std::pair<std::string, rtl::LogicVector>> seeds;
  /// When set, filled with the facts behind the report (oracle tests).
  DataflowFacts* facts = nullptr;
};

/// Runs the abstract interpreter and the DF-* rule family over `sim`,
/// appending findings to `report`.  Calls sim.initialize() if needed; all
/// poked signal values are restored, so the simulation can continue
/// exactly where it was.  Publishes telemetry (lint.dataflow.*) when the
/// hub is enabled.
DataflowStats analyze_dataflow(rtl::Simulator& sim,
                               const DataflowOptions& opts, Report& report);

}  // namespace castanet::lint

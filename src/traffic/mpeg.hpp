// Synthetic MPEG video source.
//
// The paper stimulates the hardware with "simulated real-world traces, for
// example MPEG traces" (§2).  Real traces are not available offline, so this
// model synthesizes a GoP-structured elementary stream: a repeating frame
// pattern (default IBBPBBPBB) at a fixed frame rate, with per-frame-type
// lognormal size distributions calibrated to published MPEG-1 trace
// statistics.  Each frame is AAL5-segmented and its cells emitted
// back-to-back at the link cell rate — reproducing the frame-scale burstiness
// that makes video traffic a hard test for switch buffers and policers.
#pragma once

#include <deque>
#include <string>

#include "src/atm/aal5.hpp"
#include "src/traffic/sources.hpp"

namespace castanet::traffic {

struct MpegParams {
  std::string gop_pattern = "IBBPBBPBB";
  double frames_per_sec = 25.0;
  /// Lognormal (mu, sigma) of frame size in *bytes* per frame type;
  /// defaults approximate the Bellcore "Star Wars" MPEG-1 trace statistics.
  double i_mu = 9.6, i_sigma = 0.25;   // median ~ 14.8 kB
  double p_mu = 8.8, p_sigma = 0.35;   // median ~  6.6 kB
  double b_mu = 8.1, b_sigma = 0.40;   // median ~  3.3 kB
  /// Cell spacing on the link while a frame drains (155.52 Mb/s STM-1 by
  /// default: one cell every ~2.73 us).
  SimTime link_cell_period = SimTime::from_ps(2'726'000);
};

class MpegSource : public CellSource {
 public:
  MpegSource(atm::VcId vc, std::uint8_t tag, MpegParams params, Rng rng);

  CellArrival next() override;

  std::uint64_t frames_emitted() const { return frames_; }

 private:
  void emit_next_frame();

  MpegParams p_;
  Rng rng_;
  std::size_t gop_pos_ = 0;
  std::uint64_t frames_ = 0;
  SimTime frame_time_ = SimTime::zero();
  std::deque<CellArrival> queue_;
};

}  // namespace castanet::traffic

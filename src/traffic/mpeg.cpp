#include "src/traffic/mpeg.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/error.hpp"

namespace castanet::traffic {

MpegSource::MpegSource(atm::VcId vc, std::uint8_t tag, MpegParams params,
                       Rng rng)
    : CellSource(vc, tag), p_(std::move(params)), rng_(rng) {
  require(!p_.gop_pattern.empty(), "MpegSource: empty GoP pattern");
  require(p_.frames_per_sec > 0.0, "MpegSource: frame rate must be positive");
  for (char c : p_.gop_pattern) {
    require(c == 'I' || c == 'P' || c == 'B',
            "MpegSource: GoP pattern may only contain I/P/B");
  }
}

void MpegSource::emit_next_frame() {
  const char type = p_.gop_pattern[gop_pos_];
  gop_pos_ = (gop_pos_ + 1) % p_.gop_pattern.size();

  double mu = p_.b_mu, sigma = p_.b_sigma;
  if (type == 'I') {
    mu = p_.i_mu;
    sigma = p_.i_sigma;
  } else if (type == 'P') {
    mu = p_.p_mu;
    sigma = p_.p_sigma;
  }
  const auto frame_bytes = static_cast<std::size_t>(
      std::max(1.0, std::min(65000.0, rng_.lognormal(mu, sigma))));

  // The frame's payload content is synthetic; what matters for the hardware
  // is the cell count and burst timing.  Sequence numbers still come from
  // make_cell() so loss detection works, but AAL5 segmentation defines the
  // cell count, so we segment a dummy frame and then stamp our sequence
  // numbers over the first payload bytes of each cell except the last
  // (which carries the AAL5 trailer; its sequence rides in bytes 40..43).
  std::vector<std::uint8_t> frame(frame_bytes, 0xA5);
  auto cells = atm::aal5_segment(frame, vc_);
  SimTime t = frame_time_;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    atm::Cell stamped = make_cell();
    // Preserve the AAL5 PTI marking and payload layout of the segmented
    // cell, but keep the sequence/tag bytes for the comparator.
    stamped.header.pti = cells[i].header.pti;
    queue_.push_back({t, stamped});
    t += p_.link_cell_period;
  }
  ++frames_;
  frame_time_ += SimTime::from_seconds(1.0 / p_.frames_per_sec);
}

CellArrival MpegSource::next() {
  while (queue_.empty()) emit_next_frame();
  CellArrival a = queue_.front();
  queue_.pop_front();
  return a;
}

}  // namespace castanet::traffic

// Netsim adapters: wraps a CellSource as an OPNET-style generator process,
// plus a measuring sink.  These are the "traffic source" node models of the
// network domain (§2).
#pragma once

#include <memory>

#include "src/netsim/process.hpp"
#include "src/traffic/sources.hpp"

namespace castanet::traffic {

using netsim::Interrupt;

/// Emits the cells of a CellSource on output stream 0 as packets, pacing
/// itself with self interrupts at the source's time stamps.
class GeneratorProcess : public netsim::FsmProcess {
 public:
  /// Stops after `max_cells` (0 = unbounded).
  GeneratorProcess(std::unique_ptr<CellSource> source,
                   std::uint64_t max_cells = 0);

  std::uint64_t cells_sent() const { return sent_; }

 private:
  void arm_next();
  void emit(const Interrupt& intr);

  std::unique_ptr<CellSource> source_;
  std::uint64_t max_cells_;
  std::uint64_t sent_ = 0;
  CellArrival pending_{};
  bool has_pending_ = false;
};

/// Counts and timestamps arriving cells; records end-to-end delay into the
/// simulation statistic "<name>.delay" and throughput into "<name>.count".
class SinkProcess : public netsim::FsmProcess {
 public:
  SinkProcess();

  std::uint64_t cells_received() const { return received_; }
  const std::vector<CellArrival>& log() const { return log_; }
  /// Keeps a copy of every received cell for comparison (default on).
  void set_keep_log(bool keep) { keep_log_ = keep; }

 private:
  std::uint64_t received_ = 0;
  bool keep_log_ = true;
  std::vector<CellArrival> log_;
};

}  // namespace castanet::traffic

// Conformance test vector generation (the "Customized / Standardized
// Conformance Test Vectors" stimuli of Fig. 1).
//
// Unlike the stochastic models, conformance vectors are deterministic
// patterns that probe protocol corner cases: header field sweeps, HEC error
// injection, and GCRA boundary timing (cells exactly at / just inside / just
// outside the contract).
#pragma once

#include <cstdint>
#include <vector>

#include "src/atm/connection.hpp"
#include "src/traffic/sources.hpp"

namespace castanet::traffic {

/// Sweeps VPI/VCI/PTI/CLP across their ranges (subsampled by `stride` on the
/// 16-bit VCI space) at a fixed cell period — exercises translation tables
/// and header encode/decode paths exhaustively.
std::vector<CellArrival> header_sweep_vectors(SimTime period,
                                              unsigned vci_stride = 257);

/// Emits cells on `vc` timed exactly at the GCRA(increment, limit) limits:
/// alternating maximally-early conforming arrivals and arrivals one tick too
/// early (which a correct policer must reject).  `violations_out` receives
/// the indices of the intentionally non-conforming cells.
std::vector<CellArrival> gcra_boundary_vectors(
    atm::VcId vc, SimTime increment, SimTime limit, std::size_t count,
    std::vector<std::size_t>& violations_out);

/// Corrupts single header bits of otherwise valid cells: cell i has header
/// bit (i mod 40) flipped after HEC computation, so a correction-mode
/// receiver must repair every one of them.
struct CorruptedCell {
  SimTime time;
  std::array<std::uint8_t, atm::kCellBytes> bytes;
};
std::vector<CorruptedCell> hec_single_bit_error_vectors(atm::VcId vc,
                                                        SimTime period,
                                                        std::size_t count);

}  // namespace castanet::traffic

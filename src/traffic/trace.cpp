#include "src/traffic/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/error.hpp"

namespace castanet::traffic {

namespace {
constexpr char kMagic[] = "castanet-trace v1";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw IoError("CellTrace: invalid hex digit");
}
}  // namespace

void CellTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("CellTrace::save: cannot open '" + path + "'");
  out << kMagic << "\n";
  for (const CellArrival& a : arrivals_) {
    out << a.time.ps() << " " << a.cell.header.vpi << " " << a.cell.header.vci
        << " " << static_cast<int>(a.cell.header.pti) << " "
        << (a.cell.header.clp ? 1 : 0) << " ";
    char hex[3];
    for (std::uint8_t b : a.cell.payload) {
      std::snprintf(hex, sizeof hex, "%02x", b);
      out << hex;
    }
    out << "\n";
  }
  if (!out) throw IoError("CellTrace::save: write failed for '" + path + "'");
}

CellTrace CellTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("CellTrace::load: cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw IoError("CellTrace::load: '" + path + "' is not a v1 cell trace");
  }
  CellTrace trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::int64_t ps;
    unsigned vpi, vci, pti, clp;
    std::string payload_hex;
    if (!(ls >> ps >> vpi >> vci >> pti >> clp >> payload_hex) ||
        payload_hex.size() != 2 * atm::kPayloadBytes) {
      throw IoError("CellTrace::load: malformed line in '" + path + "'");
    }
    CellArrival a;
    a.time = SimTime::from_ps(ps);
    a.cell.header.vpi = static_cast<std::uint16_t>(vpi);
    a.cell.header.vci = static_cast<std::uint16_t>(vci);
    a.cell.header.pti = static_cast<std::uint8_t>(pti);
    a.cell.header.clp = clp != 0;
    for (std::size_t i = 0; i < atm::kPayloadBytes; ++i) {
      a.cell.payload[i] = static_cast<std::uint8_t>(
          hex_val(payload_hex[2 * i]) * 16 + hex_val(payload_hex[2 * i + 1]));
    }
    trace.arrivals_.push_back(a);
  }
  return trace;
}

CellTrace CellTrace::record(CellSource& src, std::size_t n) {
  CellTrace trace;
  for (std::size_t i = 0; i < n; ++i) trace.append(src.next());
  return trace;
}

bool CellTrace::operator==(const CellTrace& o) const {
  if (arrivals_.size() != o.arrivals_.size()) return false;
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    if (arrivals_[i].time != o.arrivals_[i].time ||
        !(arrivals_[i].cell == o.arrivals_[i].cell)) {
      return false;
    }
  }
  return true;
}

TraceSource::TraceSource(CellTrace trace)
    : CellSource(trace.empty() ? atm::VcId{0, 0}
                               : atm::VcId{trace.arrivals()[0].cell.header.vpi,
                                           trace.arrivals()[0].cell.header.vci},
                 0),
      trace_(std::move(trace)) {}

CellArrival TraceSource::next() {
  if (pos_ >= trace_.size()) {
    throw LogicError("TraceSource: replayed past end of trace");
  }
  return trace_.arrivals()[pos_++];
}

}  // namespace castanet::traffic

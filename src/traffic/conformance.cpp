#include "src/traffic/conformance.hpp"

#include "src/core/error.hpp"

namespace castanet::traffic {

std::vector<CellArrival> header_sweep_vectors(SimTime period,
                                              unsigned vci_stride) {
  require(period > SimTime::zero(), "header_sweep: period must be positive");
  require(vci_stride > 0, "header_sweep: stride must be positive");
  std::vector<CellArrival> out;
  SimTime t = SimTime::zero();
  // VPI sweep (8-bit UNI) with fixed VCI.
  for (unsigned vpi = 0; vpi <= 0xFF; ++vpi) {
    CellArrival a;
    a.time = t;
    a.cell.header.vpi = static_cast<std::uint16_t>(vpi);
    a.cell.header.vci = 42;
    out.push_back(a);
    t += period;
  }
  // VCI sweep with fixed VPI.
  for (unsigned vci = 1; vci <= 0xFFFF; vci += vci_stride) {
    CellArrival a;
    a.time = t;
    a.cell.header.vpi = 1;
    a.cell.header.vci = static_cast<std::uint16_t>(vci);
    out.push_back(a);
    t += period;
  }
  // PTI x CLP sweep.
  for (unsigned pti = 0; pti <= 7; ++pti) {
    for (unsigned clp = 0; clp <= 1; ++clp) {
      CellArrival a;
      a.time = t;
      a.cell.header.vpi = 1;
      a.cell.header.vci = 42;
      a.cell.header.pti = static_cast<std::uint8_t>(pti);
      a.cell.header.clp = clp != 0;
      out.push_back(a);
      t += period;
    }
  }
  return out;
}

std::vector<CellArrival> gcra_boundary_vectors(
    atm::VcId vc, SimTime increment, SimTime limit, std::size_t count,
    std::vector<std::size_t>& violations_out) {
  require(increment > SimTime::zero(),
          "gcra_boundary: increment must be positive");
  violations_out.clear();
  std::vector<CellArrival> out;
  // Track the policer's TAT exactly as the reference GCRA will.
  SimTime tat = SimTime::zero();
  SimTime t = SimTime::zero();
  bool first = true;
  const SimTime tick = SimTime::from_ps(1);
  for (std::size_t i = 0; i < count; ++i) {
    CellArrival a;
    a.cell.header.vpi = vc.vpi;
    a.cell.header.vci = vc.vci;
    a.cell.payload[0] = static_cast<std::uint8_t>(i >> 8);
    a.cell.payload[1] = static_cast<std::uint8_t>(i & 0xFF);
    if (first) {
      a.time = t;
      tat = t + increment;
      first = false;
    } else if (i % 3 == 2 && tat - limit > t + tick) {
      // Deliberately one tick earlier than the earliest conforming time.
      a.time = tat - limit - tick;
      violations_out.push_back(i);
      // Non-conforming: TAT unchanged.
    } else {
      // Maximally early conforming arrival.
      a.time = tat - limit < t ? t : tat - limit;
      tat = (a.time > tat ? a.time : tat) + increment;
    }
    t = a.time;
    out.push_back(a);
  }
  return out;
}

std::vector<CorruptedCell> hec_single_bit_error_vectors(atm::VcId vc,
                                                        SimTime period,
                                                        std::size_t count) {
  std::vector<CorruptedCell> out;
  SimTime t = SimTime::zero();
  for (std::size_t i = 0; i < count; ++i) {
    atm::Cell c;
    c.header.vpi = vc.vpi;
    c.header.vci = vc.vci;
    c.payload[0] = static_cast<std::uint8_t>(i & 0xFF);
    CorruptedCell cc{t, c.to_bytes()};
    const std::size_t bit = i % 40;  // any of the 5 header octets
    cc.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    out.push_back(cc);
    t += period;
  }
  return out;
}

}  // namespace castanet::traffic

#include "src/traffic/processes.hpp"

#include "src/core/error.hpp"
#include "src/netsim/simulation.hpp"

namespace castanet::traffic {

GeneratorProcess::GeneratorProcess(std::unique_ptr<CellSource> source,
                                   std::uint64_t max_cells)
    : source_(std::move(source)), max_cells_(max_cells) {
  require(source_ != nullptr, "GeneratorProcess: null source");
  const int idle = add_state(
      "idle", [this](const Interrupt&) { arm_next(); }, false);
  const int emit_state = add_state(
      "emit", [this](const Interrupt& i) { emit(i); }, true);
  set_initial(idle);
  add_transition(idle, emit_state, [](const Interrupt& i) {
    return i.kind == netsim::InterruptKind::kSelf;
  });
  add_transition(emit_state, idle, nullptr);
}

void GeneratorProcess::arm_next() {
  if (max_cells_ != 0 && sent_ >= max_cells_) return;
  if (!has_pending_) {
    pending_ = source_->next();
    has_pending_ = true;
  }
  const SimTime delay =
      pending_.time > now() ? pending_.time - now() : SimTime::zero();
  schedule_self(delay, 0);
}

void GeneratorProcess::emit(const Interrupt&) {
  if (!has_pending_) return;
  netsim::Packet p = make_packet(pending_.cell);
  has_pending_ = false;
  send(0, std::move(p));
  ++sent_;
}

SinkProcess::SinkProcess() {
  const int collect = add_state("collect", nullptr, false);
  const int record = add_state(
      "record",
      [this](const Interrupt& i) {
        ++received_;
        auto& sim = simulation();
        sim.sample_stat(name() + ".delay")
            .record((now() - i.packet.creation_time()).seconds());
        sim.sample_stat(name() + ".count").record(1.0);
        if (keep_log_ && i.packet.has_cell()) {
          log_.push_back({now(), i.packet.cell()});
        }
      },
      true);
  set_initial(collect);
  add_transition(collect, record, [](const Interrupt& i) {
    return i.kind == netsim::InterruptKind::kStream;
  });
  add_transition(record, collect, nullptr);
}

}  // namespace castanet::traffic

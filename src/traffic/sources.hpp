// Stochastic traffic models (the "Traffic Models" box of Fig. 1).
//
// Network simulators are "optimized to support the modeling of traffic
// sources" (§2); CASTANET's whole point is reusing these models as hardware
// stimuli.  Every source produces a monotone stream of time-stamped ATM
// cells on one virtual connection; the same source object drives the
// system-level simulation, the RTL co-simulation and the hardware test
// board.
//
// Payload convention: bytes 0..3 carry a big-endian per-source sequence
// number, byte 4 the source tag — the response comparator uses these to
// detect loss, reordering and corruption.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/atm/cell.hpp"
#include "src/atm/connection.hpp"
#include "src/core/rng.hpp"
#include "src/dsim/time.hpp"

namespace castanet::traffic {

struct CellArrival {
  SimTime time;
  atm::Cell cell;
};

/// Abstract generator of time-stamped cells with nondecreasing time stamps.
class CellSource {
 public:
  virtual ~CellSource() = default;
  /// Produces the next cell.  Implementations never run dry; callers bound
  /// generation by count or time.
  virtual CellArrival next() = 0;
  const atm::VcId& vc() const { return vc_; }
  std::uint8_t tag() const { return tag_; }

 protected:
  CellSource(atm::VcId vc, std::uint8_t tag) : vc_(vc), tag_(tag) {}
  /// Builds the cell carrying sequence number `seq_`, then increments it.
  atm::Cell make_cell();

  atm::VcId vc_;
  std::uint8_t tag_;
  std::uint32_t seq_ = 0;
};

/// Extracts the sequence number a source wrote into `c`.
std::uint32_t cell_sequence(const atm::Cell& c);
/// Extracts the source tag a source wrote into `c`.
std::uint8_t cell_tag(const atm::Cell& c);

/// Constant bit rate: one cell every `period`.
class CbrSource : public CellSource {
 public:
  CbrSource(atm::VcId vc, std::uint8_t tag, SimTime period,
            SimTime start = SimTime::zero());
  CellArrival next() override;

 private:
  SimTime period_;
  SimTime next_time_;
};

/// Poisson arrivals with mean rate `cells_per_sec`.
class PoissonSource : public CellSource {
 public:
  PoissonSource(atm::VcId vc, std::uint8_t tag, double cells_per_sec,
                Rng rng);
  CellArrival next() override;

 private:
  double mean_gap_sec_;
  Rng rng_;
  SimTime time_ = SimTime::zero();
};

/// Interrupted Poisson / on-off source: exponential (or Pareto, for
/// self-similar aggregates) ON and OFF durations; during ON, cells at the
/// peak rate.
class OnOffSource : public CellSource {
 public:
  struct Params {
    SimTime peak_period;     ///< cell spacing while ON
    double mean_on_sec;      ///< mean ON duration
    double mean_off_sec;     ///< mean OFF duration
    bool pareto = false;     ///< heavy-tailed ON/OFF durations
    double pareto_shape = 1.5;
  };
  OnOffSource(atm::VcId vc, std::uint8_t tag, Params p, Rng rng);
  CellArrival next() override;

 private:
  double draw_duration(double mean);
  Params p_;
  Rng rng_;
  SimTime time_ = SimTime::zero();
  SimTime burst_end_ = SimTime::zero();
  bool in_burst_ = false;
};

/// Markov-modulated Poisson process: `rates[i]` cells/s in state i, with
/// exponential state holding times of mean `holding_sec[i]` and uniform
/// choice of next state.
class MmppSource : public CellSource {
 public:
  MmppSource(atm::VcId vc, std::uint8_t tag, std::vector<double> rates,
             std::vector<double> holding_sec, Rng rng);
  CellArrival next() override;

 private:
  std::vector<double> rates_;
  std::vector<double> holding_sec_;
  Rng rng_;
  std::size_t state_ = 0;
  SimTime time_ = SimTime::zero();
  SimTime state_end_ = SimTime::zero();
  bool state_initialized_ = false;
};

/// Merges several sources into one time-ordered stream (an ATM multiplexer
/// feeding one physical link).
class MergedSource : public CellSource {
 public:
  explicit MergedSource(std::vector<std::unique_ptr<CellSource>> inputs);
  CellArrival next() override;

 private:
  struct Pending {
    CellArrival arrival;
    CellSource* source;
  };
  std::vector<std::unique_ptr<CellSource>> inputs_;
  std::vector<Pending> pending_;
};

}  // namespace castanet::traffic

#include "src/traffic/sources.hpp"

#include <algorithm>

#include "src/core/error.hpp"

namespace castanet::traffic {

atm::Cell CellSource::make_cell() {
  atm::Cell c;
  c.header.vpi = vc_.vpi;
  c.header.vci = vc_.vci;
  c.payload[0] = static_cast<std::uint8_t>(seq_ >> 24);
  c.payload[1] = static_cast<std::uint8_t>(seq_ >> 16);
  c.payload[2] = static_cast<std::uint8_t>(seq_ >> 8);
  c.payload[3] = static_cast<std::uint8_t>(seq_ & 0xFF);
  c.payload[4] = tag_;
  ++seq_;
  return c;
}

std::uint32_t cell_sequence(const atm::Cell& c) {
  return static_cast<std::uint32_t>(c.payload[0]) << 24 |
         static_cast<std::uint32_t>(c.payload[1]) << 16 |
         static_cast<std::uint32_t>(c.payload[2]) << 8 |
         static_cast<std::uint32_t>(c.payload[3]);
}

std::uint8_t cell_tag(const atm::Cell& c) { return c.payload[4]; }

// --- CBR -------------------------------------------------------------------

CbrSource::CbrSource(atm::VcId vc, std::uint8_t tag, SimTime period,
                     SimTime start)
    : CellSource(vc, tag), period_(period), next_time_(start) {
  require(period > SimTime::zero(), "CbrSource: period must be positive");
}

CellArrival CbrSource::next() {
  CellArrival a{next_time_, make_cell()};
  next_time_ += period_;
  return a;
}

// --- Poisson ----------------------------------------------------------------

PoissonSource::PoissonSource(atm::VcId vc, std::uint8_t tag,
                             double cells_per_sec, Rng rng)
    : CellSource(vc, tag), mean_gap_sec_(1.0 / cells_per_sec), rng_(rng) {
  require(cells_per_sec > 0.0, "PoissonSource: rate must be positive");
}

CellArrival PoissonSource::next() {
  time_ += SimTime::from_seconds(rng_.exponential(mean_gap_sec_));
  return {time_, make_cell()};
}

// --- On/Off -----------------------------------------------------------------

OnOffSource::OnOffSource(atm::VcId vc, std::uint8_t tag, Params p, Rng rng)
    : CellSource(vc, tag), p_(p), rng_(rng) {
  require(p.peak_period > SimTime::zero(),
          "OnOffSource: peak period must be positive");
  require(p.mean_on_sec > 0.0 && p.mean_off_sec > 0.0,
          "OnOffSource: mean durations must be positive");
}

double OnOffSource::draw_duration(double mean) {
  if (p_.pareto) {
    // Pareto with the requested mean: xm = mean * (shape-1)/shape.
    const double xm = mean * (p_.pareto_shape - 1.0) / p_.pareto_shape;
    return rng_.pareto(p_.pareto_shape, xm);
  }
  return rng_.exponential(mean);
}

CellArrival OnOffSource::next() {
  for (;;) {
    if (!in_burst_) {
      time_ += SimTime::from_seconds(draw_duration(p_.mean_off_sec));
      burst_end_ = time_ + SimTime::from_seconds(draw_duration(p_.mean_on_sec));
      in_burst_ = true;
    }
    if (time_ < burst_end_) {
      CellArrival a{time_, make_cell()};
      time_ += p_.peak_period;
      return a;
    }
    in_burst_ = false;
  }
}

// --- MMPP -------------------------------------------------------------------

MmppSource::MmppSource(atm::VcId vc, std::uint8_t tag,
                       std::vector<double> rates,
                       std::vector<double> holding_sec, Rng rng)
    : CellSource(vc, tag), rates_(std::move(rates)),
      holding_sec_(std::move(holding_sec)), rng_(rng) {
  require(!rates_.empty() && rates_.size() == holding_sec_.size(),
          "MmppSource: rates and holding times must match and be non-empty");
  for (double r : rates_) {
    require(r >= 0.0, "MmppSource: negative rate");
  }
}

CellArrival MmppSource::next() {
  for (;;) {
    if (!state_initialized_) {
      state_end_ = time_ + SimTime::from_seconds(
                               rng_.exponential(holding_sec_[state_]));
      state_initialized_ = true;
    }
    const double rate = rates_[state_];
    if (rate > 0.0) {
      const SimTime candidate =
          time_ + SimTime::from_seconds(rng_.exponential(1.0 / rate));
      if (candidate < state_end_) {
        time_ = candidate;
        return {time_, make_cell()};
      }
    }
    // Hold time expired (or silent state): jump to a uniformly random other
    // state.
    time_ = state_end_;
    if (rates_.size() > 1) {
      std::size_t nxt = static_cast<std::size_t>(
          rng_.uniform_int(0, rates_.size() - 2));
      if (nxt >= state_) ++nxt;
      state_ = nxt;
    }
    state_initialized_ = false;
  }
}

// --- Merge -------------------------------------------------------------------

MergedSource::MergedSource(std::vector<std::unique_ptr<CellSource>> inputs)
    : CellSource(atm::VcId{0, 0}, 0), inputs_(std::move(inputs)) {
  require(!inputs_.empty(), "MergedSource: need at least one input");
  for (auto& in : inputs_) {
    pending_.push_back({in->next(), in.get()});
  }
}

CellArrival MergedSource::next() {
  auto it = std::min_element(pending_.begin(), pending_.end(),
                             [](const Pending& a, const Pending& b) {
                               return a.arrival.time < b.arrival.time;
                             });
  CellArrival out = it->arrival;
  it->arrival = it->source->next();
  return out;
}

}  // namespace castanet::traffic

// Cell trace recording and replay.
//
// §3 of the paper: "it is possible to run the simulation in the background
// while dumping the output data into a file and to re-run previously
// generated test vectors."  A CellTrace is the on-disk test-vector format;
// TraceSource replays one as a CellSource, so recorded stimuli are
// interchangeable with live traffic models everywhere.
#pragma once

#include <string>
#include <vector>

#include "src/traffic/sources.hpp"

namespace castanet::traffic {

class CellTrace {
 public:
  void append(const CellArrival& a) { arrivals_.push_back(a); }
  const std::vector<CellArrival>& arrivals() const { return arrivals_; }
  std::size_t size() const { return arrivals_.size(); }
  bool empty() const { return arrivals_.empty(); }

  /// Text format, one cell per line:
  ///   <time_ps> <vpi> <vci> <pti> <clp> <96 hex chars of payload>
  /// with a "castanet-trace v1" header line.
  void save(const std::string& path) const;
  static CellTrace load(const std::string& path);

  /// Captures the first `n` cells of `src`.
  static CellTrace record(CellSource& src, std::size_t n);

  bool operator==(const CellTrace& o) const;

 private:
  std::vector<CellArrival> arrivals_;
};

/// Replays a trace; `next()` past the end throws LogicError (use size()).
class TraceSource : public CellSource {
 public:
  explicit TraceSource(CellTrace trace);
  CellArrival next() override;
  std::size_t remaining() const { return trace_.size() - pos_; }

 private:
  CellTrace trace_;
  std::size_t pos_ = 0;
};

}  // namespace castanet::traffic

// Signaling message encoding over netsim packets.
//
// The paper's introduction places ATM's hardware functions against "the
// complexity of embedded control software, that implements higher-layer
// functionality, such as call admission control agents and signaling
// protocols".  This library models that software side at the algorithmic
// level: a Q.2931-flavoured connection-control exchange (SETUP / CONNECT /
// REJECT / RELEASE / RELEASE COMPLETE) carried as packet fields.
#pragma once

#include <cstdint>

#include "src/netsim/packet.hpp"
#include "src/netsim/process.hpp"

namespace castanet::signaling {

using netsim::Interrupt;

enum class SigKind : int {
  kSetup = 1,
  kConnect = 2,
  kReject = 3,
  kRelease = 4,
  kReleaseComplete = 5,
};

inline constexpr const char* kFieldKind = "sig.kind";
inline constexpr const char* kFieldCallId = "sig.call_id";
inline constexpr const char* kFieldPcr = "sig.pcr_cps";
inline constexpr const char* kFieldInPort = "sig.in_port";
inline constexpr const char* kFieldOutPort = "sig.out_port";
inline constexpr const char* kFieldVpi = "sig.vpi";
inline constexpr const char* kFieldVci = "sig.vci";
inline constexpr const char* kFieldCause = "sig.cause";

/// Cause codes carried on REJECT.
enum class RejectCause : int {
  kNoCapacity = 1,
  kNoVciAvailable = 2,
  kBadRequest = 3,
};

inline SigKind kind_of(const netsim::Packet& p) {
  return static_cast<SigKind>(static_cast<int>(p.field(kFieldKind)));
}

inline netsim::Packet make_setup(netsim::Packet p, std::uint64_t call_id,
                                 double pcr_cps, std::size_t in_port,
                                 std::size_t out_port) {
  p.set_field(kFieldKind, static_cast<double>(SigKind::kSetup));
  p.set_field(kFieldCallId, static_cast<double>(call_id));
  p.set_field(kFieldPcr, pcr_cps);
  p.set_field(kFieldInPort, static_cast<double>(in_port));
  p.set_field(kFieldOutPort, static_cast<double>(out_port));
  return p;
}

inline netsim::Packet make_release(netsim::Packet p, std::uint64_t call_id) {
  p.set_field(kFieldKind, static_cast<double>(SigKind::kRelease));
  p.set_field(kFieldCallId, static_cast<double>(call_id));
  return p;
}

}  // namespace castanet::signaling

// Call-level traffic: Poisson call arrivals with exponential holding times,
// exercising the signaling/CAC control plane the way subscriber behaviour
// would.  Blocking statistics follow the Erlang-B shape, which the CAC
// example sweeps.
#pragma once

#include <functional>
#include <unordered_map>

#include "src/atm/connection.hpp"
#include "src/netsim/process.hpp"
#include "src/signaling/messages.hpp"

namespace castanet::signaling {

class CallGenerator : public netsim::FsmProcess {
 public:
  struct Config {
    double calls_per_sec = 10.0;
    double mean_holding_sec = 0.5;
    double pcr_cps = 50'000.0;   ///< requested peak rate per call
    std::size_t in_port = 0;
    std::size_t out_port = 1;
    std::uint64_t max_calls = 0; ///< 0 = unbounded
  };

  explicit CallGenerator(Config cfg);

  /// Invoked when a call is admitted / ends, with the assigned VC — hooks
  /// for attaching bearer traffic.
  using CallUpFn = std::function<void(std::uint64_t call_id, atm::VcId vc)>;
  using CallDownFn = std::function<void(std::uint64_t call_id)>;
  void set_call_hooks(CallUpFn up, CallDownFn down);

  std::uint64_t offered() const { return offered_; }
  std::uint64_t connected() const { return connected_; }
  std::uint64_t blocked() const { return blocked_; }
  std::uint64_t completed() const { return completed_; }
  std::size_t active() const { return active_.size(); }

 private:
  void next_arrival();
  void place_call();
  void on_reply(const netsim::Interrupt& intr);
  void on_timer(const netsim::Interrupt& intr);

  Config cfg_;
  std::uint64_t next_call_id_ = 1;
  std::uint64_t offered_ = 0;
  std::uint64_t connected_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t completed_ = 0;
  std::unordered_map<std::uint64_t, atm::VcId> active_;
  CallUpFn on_up_;
  CallDownFn on_down_;

  static constexpr int kArrivalCode = 0;
  // Self codes >= 1 encode "release call id (code - 1)".
};

}  // namespace castanet::signaling

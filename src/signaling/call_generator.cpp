#include "src/signaling/call_generator.hpp"

#include "src/core/error.hpp"
#include "src/netsim/simulation.hpp"

namespace castanet::signaling {

CallGenerator::CallGenerator(Config cfg) : cfg_(cfg) {
  require(cfg_.calls_per_sec > 0 && cfg_.mean_holding_sec > 0,
          "CallGenerator: rates must be positive");
  // A single unforced hub ("idle") with no enter executive: entering it
  // after a forced state must not re-arm the arrival timer, or every reply
  // would spawn extra call arrivals.
  const int boot = add_state(
      "boot", [this](const Interrupt&) { next_arrival(); }, true);
  const int idle = add_state("idle", nullptr, false);
  const int arrival = add_state(
      "arrival",
      [this](const Interrupt&) {
        place_call();
        next_arrival();
      },
      true);
  const int reply = add_state(
      "reply", [this](const Interrupt& i) { on_reply(i); }, true);
  const int timer = add_state(
      "timer", [this](const Interrupt& i) { on_timer(i); }, true);
  set_initial(boot);
  add_transition(boot, idle, nullptr);
  add_transition(idle, arrival, [](const Interrupt& i) {
    return i.kind == netsim::InterruptKind::kSelf && i.code == kArrivalCode;
  });
  add_transition(idle, reply, [](const Interrupt& i) {
    return i.kind == netsim::InterruptKind::kStream;
  });
  add_transition(idle, timer, [](const Interrupt& i) {
    return i.kind == netsim::InterruptKind::kSelf && i.code != kArrivalCode;
  });
  add_transition(arrival, idle, nullptr);
  add_transition(reply, idle, nullptr);
  add_transition(timer, idle, nullptr);
}

void CallGenerator::set_call_hooks(CallUpFn up, CallDownFn down) {
  on_up_ = std::move(up);
  on_down_ = std::move(down);
}

void CallGenerator::next_arrival() {
  if (cfg_.max_calls != 0 && offered_ >= cfg_.max_calls) return;
  schedule_self(SimTime::from_seconds(
                    rng().exponential(1.0 / cfg_.calls_per_sec)),
                kArrivalCode);
}

void CallGenerator::place_call() {
  const std::uint64_t id = next_call_id_++;
  ++offered_;
  send(0, make_setup(make_packet(), id, cfg_.pcr_cps, cfg_.in_port,
                     cfg_.out_port));
}

void CallGenerator::on_reply(const netsim::Interrupt& intr) {
  const SigKind kind = kind_of(intr.packet);
  const auto id =
      static_cast<std::uint64_t>(intr.packet.field(kFieldCallId));
  switch (kind) {
    case SigKind::kConnect: {
      ++connected_;
      const atm::VcId vc{
          static_cast<std::uint16_t>(intr.packet.field(kFieldVpi)),
          static_cast<std::uint16_t>(intr.packet.field(kFieldVci))};
      active_[id] = vc;
      if (on_up_) on_up_(id, vc);
      schedule_self(
          SimTime::from_seconds(rng().exponential(cfg_.mean_holding_sec)),
          static_cast<int>(id) + 1);
      break;
    }
    case SigKind::kReject:
      ++blocked_;
      break;
    case SigKind::kReleaseComplete:
      break;
    default:
      break;
  }
}

void CallGenerator::on_timer(const netsim::Interrupt& intr) {
  const auto id = static_cast<std::uint64_t>(intr.code - 1);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  active_.erase(it);
  ++completed_;
  if (on_down_) on_down_(id);
  send(0, make_release(make_packet(), id));
}

}  // namespace castanet::signaling

#include "src/signaling/cac.hpp"

#include "src/core/error.hpp"
#include "src/netsim/simulation.hpp"

namespace castanet::signaling {

CacAgent::CacAgent(Config cfg, InstallFn install, RemoveFn remove)
    : cfg_(cfg), install_(std::move(install)), remove_(std::move(remove)),
      load_(cfg.ports, 0.0), next_vci_(cfg.ports, cfg.vci_base),
      free_vcis_(cfg.ports) {
  require(cfg_.ports > 0, "CacAgent: need at least one port");
  require(cfg_.link_capacity_cps > 0, "CacAgent: capacity must be positive");
  const int idle = add_state("idle", nullptr, false);
  const int setup = add_state(
      "setup", [this](const Interrupt& i) { on_setup(i); }, true);
  const int release = add_state(
      "release", [this](const Interrupt& i) { on_release(i); }, true);
  set_initial(idle);
  add_transition(idle, setup, [](const Interrupt& i) {
    return i.kind == netsim::InterruptKind::kStream &&
           kind_of(i.packet) == SigKind::kSetup;
  });
  add_transition(idle, release, [](const Interrupt& i) {
    return i.kind == netsim::InterruptKind::kStream &&
           kind_of(i.packet) == SigKind::kRelease;
  });
  add_transition(setup, idle, nullptr);
  add_transition(release, idle, nullptr);
}

double CacAgent::admitted_load(std::size_t out_port) const {
  require(out_port < load_.size(), "CacAgent: bad port");
  return load_[out_port];
}

void CacAgent::reply(unsigned stream, netsim::Packet p) {
  send(stream, std::move(p));
}

void CacAgent::on_setup(const netsim::Interrupt& intr) {
  ++offered_;
  const auto call_id =
      static_cast<std::uint64_t>(intr.packet.field(kFieldCallId));
  const double pcr = intr.packet.field(kFieldPcr);
  const auto in_port =
      static_cast<std::size_t>(intr.packet.field(kFieldInPort));
  const auto out_port =
      static_cast<std::size_t>(intr.packet.field(kFieldOutPort));

  netsim::Packet re = make_packet();
  re.set_field(kFieldCallId, static_cast<double>(call_id));

  if (in_port >= cfg_.ports || out_port >= cfg_.ports || pcr <= 0.0 ||
      calls_.contains(call_id)) {
    ++blocked_;
    re.set_field(kFieldKind, static_cast<double>(SigKind::kReject));
    re.set_field(kFieldCause, static_cast<double>(RejectCause::kBadRequest));
    reply(intr.stream, std::move(re));
    return;
  }
  if (load_[out_port] + pcr >
      cfg_.link_capacity_cps * cfg_.overbooking) {
    ++blocked_;
    re.set_field(kFieldKind, static_cast<double>(SigKind::kReject));
    re.set_field(kFieldCause, static_cast<double>(RejectCause::kNoCapacity));
    reply(intr.stream, std::move(re));
    return;
  }
  std::uint16_t vci;
  if (!free_vcis_[out_port].empty()) {
    vci = free_vcis_[out_port].back();
    free_vcis_[out_port].pop_back();
  } else if (next_vci_[out_port] < cfg_.vci_base + cfg_.vci_per_port) {
    vci = next_vci_[out_port]++;
  } else {
    ++blocked_;
    re.set_field(kFieldKind, static_cast<double>(SigKind::kReject));
    re.set_field(kFieldCause,
                 static_cast<double>(RejectCause::kNoVciAvailable));
    reply(intr.stream, std::move(re));
    return;
  }

  // Admit: allocate identifiers, install the translation route.
  const atm::VcId in_vc{cfg_.vpi, vci};
  const atm::VcId out_vc{static_cast<std::uint16_t>(cfg_.vpi + 1),
                         in_vc.vci};
  atm::Route route;
  route.out_port = static_cast<std::uint8_t>(out_port);
  route.out_vc = out_vc;
  route.contract.pcr_increment = SimTime::from_seconds(1.0 / pcr);
  install_(in_port, in_vc, route);
  load_[out_port] += pcr;
  calls_[call_id] = Call{in_port, out_port, pcr, in_vc};
  ++admitted_;

  re.set_field(kFieldKind, static_cast<double>(SigKind::kConnect));
  re.set_field(kFieldVpi, in_vc.vpi);
  re.set_field(kFieldVci, in_vc.vci);
  reply(intr.stream, std::move(re));
}

void CacAgent::on_release(const netsim::Interrupt& intr) {
  const auto call_id =
      static_cast<std::uint64_t>(intr.packet.field(kFieldCallId));
  netsim::Packet re = make_packet();
  re.set_field(kFieldCallId, static_cast<double>(call_id));
  re.set_field(kFieldKind,
               static_cast<double>(SigKind::kReleaseComplete));
  auto it = calls_.find(call_id);
  if (it != calls_.end()) {
    load_[it->second.out_port] -= it->second.pcr;
    if (load_[it->second.out_port] < 0) load_[it->second.out_port] = 0;
    remove_(it->second.in_port, it->second.in_vc);
    free_vcis_[it->second.out_port].push_back(it->second.in_vc.vci);
    calls_.erase(it);
    ++released_;
  }
  reply(intr.stream, std::move(re));
}

}  // namespace castanet::signaling

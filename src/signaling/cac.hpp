// Call admission control agent.
//
// Peak-rate allocation CAC: a new connection from switch input `in_port` to
// output `out_port` with peak cell rate PCR is admitted iff the sum of
// admitted PCRs on that output stays within capacity x overbooking.
// Admission allocates a VCI from the output's pool and installs the
// translation-table route (through caller-supplied callbacks, so the same
// agent manages the cell-level reference switch and the RTL switch — that
// is how the co-verification environment keeps both sides' configuration
// consistent).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/atm/connection.hpp"
#include "src/netsim/process.hpp"
#include "src/signaling/messages.hpp"

namespace castanet::signaling {

class CacAgent : public netsim::FsmProcess {
 public:
  struct Config {
    std::size_t ports = 4;
    double link_capacity_cps = 353'207.0;  ///< STM-1 cell rate
    double overbooking = 1.0;              ///< >1 = statistical multiplexing
    std::uint16_t vpi = 1;
    std::uint16_t vci_base = 1000;
    std::uint16_t vci_per_port = 256;
    unsigned streams = 1;  ///< paired in/out signaling streams (callers)
  };

  /// Installs/removes a route on input port `in_port` (both reference and
  /// RTL tables in a co-verification setup).
  using InstallFn =
      std::function<void(std::size_t in_port, atm::VcId, const atm::Route&)>;
  using RemoveFn = std::function<void(std::size_t in_port, atm::VcId)>;

  CacAgent(Config cfg, InstallFn install, RemoveFn remove);

  std::uint64_t calls_offered() const { return offered_; }
  std::uint64_t calls_admitted() const { return admitted_; }
  std::uint64_t calls_blocked() const { return blocked_; }
  std::uint64_t calls_released() const { return released_; }
  /// Currently admitted load on an output port, in cells/s.
  double admitted_load(std::size_t out_port) const;
  std::size_t active_calls() const { return calls_.size(); }

 private:
  void on_setup(const netsim::Interrupt& intr);
  void on_release(const netsim::Interrupt& intr);
  void reply(unsigned stream, netsim::Packet p);

  struct Call {
    std::size_t in_port;
    std::size_t out_port;
    double pcr;
    atm::VcId in_vc;
  };

  Config cfg_;
  InstallFn install_;
  RemoveFn remove_;
  std::vector<double> load_;         ///< per output port, cells/s
  std::vector<std::uint16_t> next_vci_;
  /// VCIs returned by released calls, reused before fresh allocation.
  std::vector<std::vector<std::uint16_t>> free_vcis_;
  std::unordered_map<std::uint64_t, Call> calls_;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace castanet::signaling

#!/bin/sh
# Runs every bench_e* binary with --json and composes the per-bench reports
# into one machine-readable file (default: BENCH_PR2.json in the repo root).
#
#   bench/run_all.sh [output.json]
#
# Environment:
#   BUILD_DIR          build tree containing bench/ binaries (default: build)
#   PR_NUMBER          stamped into the report and the default filename
#   CASTANET_E1_REPS   E1 repetitions per configuration (default here: 9 —
#                      E1 compares co-simulation modes, and single runs on a
#                      shared machine are too noisy for mode-vs-mode ratios)
set -eu

cd "$(dirname "$0")/.."
BUILD=${BUILD_DIR:-build}
PR=${PR_NUMBER:-2}
OUT=${1:-BENCH_PR${PR}.json}
: "${CASTANET_E1_REPS:=9}"
export CASTANET_E1_REPS

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Shield the benches from external scheduler noise when allowed to: mode
# comparisons (serial vs pipelined co-simulation) are decided by a few
# percent, and a background task preempting one rep skews the verdict.
NICE=""
if nice -n -10 true 2>/dev/null; then
  NICE="nice -n -10"
fi

BENCHES="e1_cosim_speed e2_coverify_flow e3_sync_protocol e4_abstraction_map \
         e5_board_cycles e6_event_ratio e7_testbench_reuse e8_buffer_ablation"

for b in $BENCHES; do
  bin="$BUILD/bench/bench_$b"
  if [ ! -x "$bin" ]; then
    echo "run_all: missing $bin (build the bench targets first)" >&2
    exit 1
  fi
  echo "== bench_$b"
  $NICE "$bin" --json "$tmp/$b.json"
done

{
  printf '{\n"pr": %s,\n"generated_by": "bench/run_all.sh",\n"benches": [\n' "$PR"
  first=1
  for b in $BENCHES; do
    [ $first -eq 1 ] || printf ',\n'
    first=0
    cat "$tmp/$b.json"
  done
  printf ']\n}\n'
} > "$OUT"

echo "wrote $OUT"

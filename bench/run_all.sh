#!/bin/sh
# Runs every bench_e* binary with --json and composes the per-bench reports
# into one machine-readable file (default: BENCH_PR8.json in the repo root).
# Each bench also runs with the telemetry hub enabled (--metrics); the flat
# metrics snapshots are archived next to the report as METRICS_PR<n>.json,
# together with a merged farm-telemetry run report (per-shard snapshots from
# the farm smoke experiment consolidated by the parent) under "farm".
#
#   bench/run_all.sh [output.json]
#
# Environment:
#   BUILD_DIR          build tree containing bench/ binaries (default: build)
#   PR_NUMBER          stamped into the report and the default filename
#   CASTANET_E1_REPS   E1 repetitions per configuration (default here: 9 —
#                      E1 compares co-simulation modes, and single runs on a
#                      shared machine are too noisy for mode-vs-mode ratios)
set -eu

cd "$(dirname "$0")/.."
BUILD=${BUILD_DIR:-build}
PR=${PR_NUMBER:-10}
OUT=${1:-BENCH_PR${PR}.json}
: "${CASTANET_E1_REPS:=9}"
export CASTANET_E1_REPS

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Host/compiler/commit metadata, embedded in both reports so cross-PR deltas
# are attributable (EXPERIMENTS.md E1 notes "machine drift" between PRs —
# without this a regression on a different box looks like a code change).
json_escape() {
  printf '%s' "$1" | sed 's/\\/\\\\/g; s/"/\\"/g'
}
META_HOST=$(hostname 2>/dev/null || echo unknown)
META_OS=$(uname -srm 2>/dev/null || echo unknown)
META_CPU=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo \
  2>/dev/null || echo unknown)
[ -n "$META_CPU" ] || META_CPU=unknown
META_NCPU=$(nproc 2>/dev/null || echo 0)
META_CXX=$(c++ --version 2>/dev/null | head -n 1 || echo unknown)
META_COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
META_DIRTY=false
if ! git diff --quiet HEAD 2>/dev/null; then META_DIRTY=true; fi
META_DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)
META=$(printf '"meta": {"host": "%s", "os": "%s", "cpu": "%s", "cpus": %s, "compiler": "%s", "commit": "%s", "dirty": %s, "generated_at": "%s"}' \
  "$(json_escape "$META_HOST")" "$(json_escape "$META_OS")" \
  "$(json_escape "$META_CPU")" "$META_NCPU" "$(json_escape "$META_CXX")" \
  "$(json_escape "$META_COMMIT")" "$META_DIRTY" "$META_DATE")

# Shield the benches from external scheduler noise when allowed to: mode
# comparisons (serial vs pipelined co-simulation) are decided by a few
# percent, and a background task preempting one rep skews the verdict.
NICE=""
if nice -n -10 true 2>/dev/null; then
  NICE="nice -n -10"
fi

BENCHES="e1_cosim_speed e2_coverify_flow e3_sync_protocol e4_abstraction_map \
         e5_board_cycles e6_event_ratio e7_testbench_reuse e8_buffer_ablation \
         e9_sched_scale"

for b in $BENCHES; do
  bin="$BUILD/bench/bench_$b"
  if [ ! -x "$bin" ]; then
    echo "run_all: missing $bin (build the bench targets first)" >&2
    exit 1
  fi
  echo "== bench_$b"
  $NICE "$bin" --json "$tmp/$b.json"
done

# Farm speedup: 8 board-in-the-loop sessions whose real-time hardware waits
# the session farm overlaps — serial baseline vs 4 worker processes.  The
# per-session digests are byte-identical between the two runs (the farm_smoke
# ctest asserts this); here only the wall-clock ratio is measured.
FARM_JSON=""
FARM_BIN="$BUILD/tools/castanet_farm"
if [ -x "$FARM_BIN" ]; then
  echo "== castanet_farm board_speedup (serial, then -j4)"
  $NICE "$FARM_BIN" --experiment experiments/board_speedup.json --serial \
    --out "$tmp/farm_serial.json" 2>/dev/null
  $NICE "$FARM_BIN" --experiment experiments/board_speedup.json -j4 \
    --out "$tmp/farm_j4.json" 2>/dev/null
  farm_serial_s=$(grep -m1 '"wall_seconds"' "$tmp/farm_serial.json" \
    | sed 's/[^0-9.]//g')
  farm_j4_s=$(grep -m1 '"wall_seconds"' "$tmp/farm_j4.json" \
    | sed 's/[^0-9.]//g')
  farm_speedup=$(awk "BEGIN {printf \"%.3f\", $farm_serial_s / $farm_j4_s}")
  farm_sessions=$(grep -c '"id"' "$tmp/farm_serial.json")
  printf '{\n"bench": "farm_speedup",\n"rows": [\n{"config": "serial", "metrics": {"sessions": %s, "wall_seconds": %s}},\n{"config": "farm -j4", "metrics": {"sessions": %s, "wall_seconds": %s, "speedup_vs_serial": %s}}\n]\n}\n' \
    "$farm_sessions" "$farm_serial_s" "$farm_sessions" "$farm_j4_s" \
    "$farm_speedup" > "$tmp/farm.json"
  FARM_JSON="$tmp/farm.json"
else
  echo "run_all: missing $FARM_BIN (farm bench skipped)" >&2
fi

# Separate telemetry pass: --metrics enables the hub, which perturbs the
# timing fast path, so the snapshots must not come from the runs that
# produced the numbers above.  One repetition suffices for counters.  Not
# every bench is telemetry-instrumented (bench::TelemetryCli); the ones
# that are not simply write no snapshot and are skipped.
METRICS_OUT=${METRICS_OUT:-METRICS_PR${PR}.json}
metrics_benches=""
for b in $BENCHES; do
  echo "== bench_$b --metrics"
  CASTANET_E1_REPS=1 "$BUILD/bench/bench_$b" --metrics "$tmp/$b.metrics.json" \
    > /dev/null
  if [ -s "$tmp/$b.metrics.json" ]; then
    metrics_benches="$metrics_benches $b"
  else
    echo "   (no telemetry hub in bench_$b; skipped)"
  fi
done

{
  printf '{\n"pr": %s,\n"generated_by": "bench/run_all.sh",\n%s,\n"benches": [\n' "$PR" "$META"
  first=1
  for b in $BENCHES; do
    [ $first -eq 1 ] || printf ',\n'
    first=0
    cat "$tmp/$b.json"
  done
  if [ -n "$FARM_JSON" ]; then
    printf ',\n'
    cat "$FARM_JSON"
  fi
  printf ']\n}\n'
} > "$OUT"

# Merged farm telemetry: the smoke experiment with per-worker metrics
# shipping enabled; the parent merges the per-shard snapshots into one run
# report (counters summed, histograms bucket-merged) which is archived
# verbatim under "farm" in METRICS_PR<n>.json.
FARM_REPORT=""
if [ -x "$FARM_BIN" ]; then
  echo "== castanet_farm farm_smoke --report (merged shard telemetry)"
  $NICE "$FARM_BIN" --experiment experiments/farm_smoke.json -j2 \
    --metrics "$tmp/farm_smoke.metrics.json" \
    --report "$tmp/farm_report.json" > /dev/null 2>&1
  [ -s "$tmp/farm_report.json" ] && FARM_REPORT="$tmp/farm_report.json"
fi

{
  printf '{\n"pr": %s,\n"generated_by": "bench/run_all.sh",\n%s,\n"metrics": {\n' "$PR" "$META"
  first=1
  for b in $metrics_benches; do
    [ $first -eq 1 ] || printf ',\n'
    first=0
    printf '"%s": ' "$b"
    cat "$tmp/$b.metrics.json"
  done
  printf '}\n'
  if [ -n "$FARM_REPORT" ]; then
    printf ',\n"farm": '
    cat "$FARM_REPORT"
  fi
  printf '}\n'
} > "$METRICS_OUT"

echo "wrote $OUT and $METRICS_OUT"

// Experiment E1 — the paper's §2 speed evaluation.
//
// "The simulation run time for processing 10,000 ATM cells arriving at an
//  ATM switch consisting of four port modules, one global control unit …
//  is approx. 130 seconds … equivalent to approx. 1,300 clock cycles per
//  second.  Taking the simulation time needed to simulate solely an RTL
//  representation of the global control unit this results in approx. 300
//  clock-cycles per second."
//
// We measure achieved simulated-clock-cycles per wall-clock second for:
//   (A) pure-HDL regression bench: RTL stimulus generators and RTL response
//       checkers around the full RTL switch — everything event-driven at
//       clock granularity, the style CASTANET replaces;
//   (B) CASTANET co-simulation: the same traffic from the network simulator
//       through the coupling into the full RTL switch, checking at the
//       abstract level;
//   (C) CASTANET co-simulation with only the global control unit in RTL and
//       the port modules abstracted into the network model (the paper's
//       hybrid configuration).
//
// Absolute numbers reflect this machine, not a 1997 UltraSPARC; the paper's
// *shape* is that (B) and (C) beat (A), with (C) fastest.
//
// Scale with CASTANET_E1_CELLS (default 2000; the paper used 10,000).
#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>

#include "bench/bench_util.hpp"
#include "src/atm/hec.hpp"
#include "src/castanet/comparator.hpp"
#include "src/castanet/coverify.hpp"
#include "src/hw/atm_switch.hpp"
#include "src/hw/cell_bits.hpp"
#include "src/hw/reference.hpp"
#include "src/traffic/processes.hpp"
#include "src/traffic/trace.hpp"

using namespace castanet;
using bench::WallTimer;

namespace {

constexpr std::size_t kPorts = 4;
const SimTime kClk = clock_period_hz(20'000'000);
bool g_quiet = false;  // suppress per-run chatter when repeating runs

// --- RTL test bench modules (configuration A) --------------------------------

/// VHDL-style stimulus process: serializes a preloaded cell list onto the
/// physical port with clock-granular bookkeeping — a byte counter, a
/// serially updated CRC register and an LFSR (used for the inter-cell gap),
/// all as signals, the way a synthesizable/behavioral VHDL bench would keep
/// them.
class RtlStimulus : public rtl::Module {
 public:
  RtlStimulus(rtl::Simulator& sim, std::string name, rtl::Signal clk,
              hw::CellPort out, std::vector<traffic::CellArrival> cells)
      : Module(sim, std::move(name)), clk_(clk), out_(out),
        cells_(std::move(cells)) {
    byte_cnt = make_bus("byte_cnt", 6, rtl::Logic::L0);
    crc_state = make_bus("crc_state", 8, rtl::Logic::L0);
    lfsr = make_bus("lfsr", 16, rtl::Logic::L1);
    clocked("stim", clk_, [this] { on_clk(); });
  }

  bool done() const { return index_ >= cells_.size(); }
  std::uint64_t cells_sent() const { return index_; }

  rtl::Bus byte_cnt, crc_state, lfsr;

 private:
  void on_clk() {
    // LFSR ticks every clock (taps 16,14,13,11) — test-bench activity.
    std::uint64_t l = lfsr.read().is_defined() ? lfsr.read_uint() : 1;
    const std::uint64_t bit =
        ((l >> 15) ^ (l >> 13) ^ (l >> 12) ^ (l >> 10)) & 1;
    l = (l << 1 | bit) & 0xFFFF;
    lfsr.write_uint(l);

    if (index_ >= cells_.size()) {
      out_.valid.write(rtl::Logic::L0);
      out_.sync.write(rtl::Logic::L0);
      return;
    }
    // Honour the trace's timing: wait until the cell's start time.
    if (phase_ == 0 && sim().now() < cells_[index_].time) {
      out_.valid.write(rtl::Logic::L0);
      out_.sync.write(rtl::Logic::L0);
      return;
    }
    if (phase_ == 0) bytes_ = cells_[index_].cell.to_bytes();
    const std::uint8_t b = bytes_[phase_];
    out_.data.write(hw::byte_to_bits(b));
    out_.sync.write(phase_ == 0 ? rtl::Logic::L1 : rtl::Logic::L0);
    out_.valid.write(rtl::Logic::L1);
    byte_cnt.write_uint(phase_);
    // Serial CRC-8 update, one octet per clock, kept as a signal.
    std::uint8_t crc = static_cast<std::uint8_t>(
        crc_state.read().is_defined() ? crc_state.read_uint() : 0);
    crc = static_cast<std::uint8_t>(crc ^ b);
    for (int k = 0; k < 8; ++k) {
      crc = static_cast<std::uint8_t>((crc & 0x80) ? (crc << 1) ^ 0x07
                                                   : crc << 1);
    }
    crc_state.write_uint(crc);
    if (++phase_ == atm::kCellBytes) {
      phase_ = 0;
      ++index_;
    }
  }

  rtl::Signal clk_;
  hw::CellPort out_;
  std::vector<traffic::CellArrival> cells_;
  std::array<std::uint8_t, atm::kCellBytes> bytes_{};
  std::size_t index_ = 0;
  std::size_t phase_ = 0;
};

/// VHDL-style response checker: reassembles octets in a 424-bit shift
/// register signal, recomputes the HEC serially and flags mismatches — all
/// per clock.
class RtlChecker : public rtl::Module {
 public:
  RtlChecker(rtl::Simulator& sim, std::string name, rtl::Signal clk,
             hw::CellPort in)
      : Module(sim, std::move(name)), clk_(clk), in_(in) {
    shift = make_bus("shift", hw::kCellBits, rtl::Logic::L0);
    byte_cnt = make_bus("byte_cnt", 6, rtl::Logic::L0);
    error_flag = make_signal("error", rtl::Logic::L0);
    clocked("check", clk_, [this] { on_clk(); });
  }

  std::uint64_t cells_checked() const { return checked_; }
  std::uint64_t errors() const { return errors_; }

  rtl::Bus shift, byte_cnt;
  rtl::Signal error_flag;

 private:
  void on_clk() {
    if (!in_.valid.read_bool()) return;
    if (in_.sync.read_bool()) count_ = 0;
    rtl::LogicVector s = shift.read();
    if (!s.is_defined()) s = rtl::LogicVector(hw::kCellBits, rtl::Logic::L0);
    s.set_slice(8 * count_, in_.data.read());
    shift.write(s);
    byte_cnt.write_uint(count_);
    if (++count_ < atm::kCellBytes) return;
    count_ = 0;
    ++checked_;
    // Recompute the HEC from the shifted header (serially, as gates would).
    std::uint8_t hdr[5];
    for (int j = 0; j < 5; ++j) {
      hdr[j] = static_cast<std::uint8_t>(
          s.slice(8 * static_cast<std::size_t>(j), 8).to_uint());
    }
    if (atm::check_and_correct(hdr) == atm::HecResult::kUncorrectable) {
      ++errors_;
      error_flag.write(rtl::Logic::L1);
    }
  }

  rtl::Signal clk_;
  hw::CellPort in_;
  std::size_t count_ = 0;
  std::uint64_t checked_ = 0;
  std::uint64_t errors_ = 0;
};

struct Row {
  const char* config;
  std::uint64_t cells;
  std::uint64_t cycles;
  double wall_sec;
  std::uint64_t kernel_events;
};

void print_row(const Row& r, double baseline_cps) {
  const double cps = static_cast<double>(r.cycles) / r.wall_sec;
  std::printf("%-34s %8llu %9llu %8.2f %12.0f %7.2fx\n", r.config,
              static_cast<unsigned long long>(r.cells),
              static_cast<unsigned long long>(r.cycles), r.wall_sec, cps,
              cps / baseline_cps);
}

std::vector<std::vector<traffic::CellArrival>> make_traffic(
    std::size_t total_cells) {
  // Per-port CBR at 3.2 us spacing (> one 2.65 us cell time: lossless).
  std::vector<std::vector<traffic::CellArrival>> per_port(kPorts);
  const std::size_t per = total_cells / kPorts;
  for (std::size_t p = 0; p < kPorts; ++p) {
    traffic::CbrSource src({1, static_cast<std::uint16_t>(100 + p)},
                           static_cast<std::uint8_t>(p), SimTime::from_ns(3200),
                           SimTime::from_ns(static_cast<std::int64_t>(p) * 800));
    for (std::size_t i = 0; i < per; ++i) per_port[p].push_back(src.next());
  }
  return per_port;
}

void install_routes(hw::AtmSwitch& sw) {
  for (std::size_t p = 0; p < kPorts; ++p) {
    sw.install_route(p, {1, static_cast<std::uint16_t>(100 + p)},
                     atm::Route{static_cast<std::uint8_t>((p + 1) % kPorts),
                                {2, static_cast<std::uint16_t>(200 + p)},
                                {}});
  }
}

SimTime horizon_of(const std::vector<std::vector<traffic::CellArrival>>& t) {
  SimTime h = SimTime::zero();
  for (const auto& v : t) {
    if (!v.empty()) h = std::max(h, v.back().time);
  }
  return h + SimTime::from_us(200);  // drain margin
}

// (A) Pure-HDL regression bench.
Row run_pure_rtl(const std::vector<std::vector<traffic::CellArrival>>& traffic) {
  rtl::Simulator hdl;
  rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
  rtl::Signal rst(&hdl, hdl.create_signal("rst", 1, rtl::Logic::L0));
  rtl::ClockGen clock(hdl, clk, kClk);
  hw::AtmSwitch sw(hdl, "sw", clk, rst);
  install_routes(sw);
  std::vector<std::unique_ptr<RtlStimulus>> stims;
  std::vector<std::unique_ptr<RtlChecker>> checkers;
  std::uint64_t cells = 0;
  for (std::size_t p = 0; p < kPorts; ++p) {
    cells += traffic[p].size();
    stims.push_back(std::make_unique<RtlStimulus>(
        hdl, "stim" + std::to_string(p), clk, sw.phys_in(p), traffic[p]));
    checkers.push_back(std::make_unique<RtlChecker>(
        hdl, "chk" + std::to_string(p), clk, sw.phys_out(p)));
  }
  const SimTime horizon = horizon_of(traffic);
  WallTimer timer;
  hdl.run_until(horizon);
  const double wall = timer.seconds();
  std::uint64_t checked = 0;
  for (const auto& c : checkers) checked += c->cells_checked();
  if (checked != cells) {
    std::printf("  !! pure-RTL bench checked %llu of %llu cells\n",
                static_cast<unsigned long long>(checked),
                static_cast<unsigned long long>(cells));
  }
  return {"A: pure-HDL bench (RTL switch)", cells, clock.rising_edges(), wall,
          hdl.stats().process_activations};
}

// (B) Co-simulation with the full RTL switch; optionally pipelined (the RTL
// kernel on its own worker thread, window grants over the SPSC channel).
Row run_cosim_full(const std::vector<std::vector<traffic::CellArrival>>& traffic,
                   bool pipelined) {
  netsim::Simulation net;
  netsim::Node& env = net.add_node("env");
  rtl::Simulator hdl;
  rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
  rtl::Signal rst(&hdl, hdl.create_signal("rst", 1, rtl::Logic::L0));
  rtl::ClockGen clock(hdl, clk, kClk);
  hw::AtmSwitch sw(hdl, "sw", clk, rst);
  install_routes(sw);

  cosim::CoVerification::Params params;
  params.sync.policy = cosim::SyncPolicy::kGlobalOrder;
  params.sync.clock_period = kClk;
  params.pipelined = pipelined;
  params.channel_capacity = 8192;
  cosim::CoVerification cov(net, hdl, env, kPorts, params);
  cov.set_response_handler([](const cosim::TimedMessage&) {});
  cosim::ResponseComparator cmp;

  std::vector<std::unique_ptr<hw::CellPortDriver>> drivers;
  std::vector<std::unique_ptr<hw::CellPortMonitor>> monitors;
  std::uint64_t cells = 0;
  for (std::size_t p = 0; p < kPorts; ++p) {
    cells += traffic[p].size();
    drivers.push_back(std::make_unique<hw::CellPortDriver>(
        hdl, "drv" + std::to_string(p), clk, sw.phys_in(p)));
    monitors.push_back(std::make_unique<hw::CellPortMonitor>(
        hdl, "mon" + std::to_string(p), clk, sw.phys_out(p)));
    monitors[p]->set_callback([&cmp](const atm::Cell& c) { cmp.actual(c); });
    cov.entity().register_input(
        static_cast<cosim::MessageType>(p), 53,
        [&, p](const cosim::TimedMessage& m) { drivers[p]->enqueue(*m.cell); });
    traffic::CellTrace trace;
    for (const auto& a : traffic[p]) trace.append(a);
    auto& gen = env.add_process<traffic::GeneratorProcess>(
        "gen" + std::to_string(p),
        std::make_unique<traffic::TraceSource>(trace), trace.size());
    net.connect(gen, 0, cov.gateway(), static_cast<unsigned>(p));
  }
  WallTimer timer;
  cov.run_until(horizon_of(traffic));
  const double wall = timer.seconds();
  if (g_quiet) {
  } else if (pipelined) {
    const auto cs = cov.stats();
    std::printf("  pipelined: %llu windows, %llu worker batches, %llu grant "
                "stalls, channel high-water %llu\n",
                static_cast<unsigned long long>(cs.windows),
                static_cast<unsigned long long>(cs.worker_batches),
                static_cast<unsigned long long>(cs.window_grant_stalls),
                static_cast<unsigned long long>(cs.max_channel_occupancy));
  } else {
    std::printf("  serial: %llu windows\n",
                static_cast<unsigned long long>(cov.stats().windows));
  }
  return {pipelined ? "B': co-sim pipelined (RTL switch)"
                    : "B: co-sim (RTL switch)",
          cells, clock.rising_edges(), wall, hdl.stats().process_activations};
}

// (C) Co-simulation with only the GCU in RTL; ports abstracted.
Row run_cosim_gcu(const std::vector<std::vector<traffic::CellArrival>>& traffic) {
  netsim::Simulation net;
  netsim::Node& env = net.add_node("env");
  rtl::Simulator hdl;
  rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
  rtl::Signal rst(&hdl, hdl.create_signal("rst", 1, rtl::Logic::L0));
  rtl::ClockGen clock(hdl, clk, kClk);

  std::vector<hw::GlobalControlUnit::InputIf> ifs;
  for (std::size_t p = 0; p < kPorts; ++p) {
    const std::string nm = "req" + std::to_string(p);
    hw::GlobalControlUnit::InputIf f;
    f.req = rtl::Signal(&hdl, hdl.create_signal(nm, 1, rtl::Logic::L0));
    f.dest = rtl::Bus(&hdl, hdl.create_signal(nm + ".dest", 4, rtl::Logic::L0));
    f.cell = rtl::Bus(&hdl, hdl.create_signal(nm + ".cell", hw::kCellBits,
                                              rtl::Logic::L0));
    ifs.push_back(f);
  }
  hw::GlobalControlUnit gcu(hdl, "gcu", clk, rst, ifs);

  // Abstract port model: header translation happens at the cell level; the
  // RTL GCU only sees head-of-line requests, with a grant handshake driven
  // by a thin per-port pending queue.
  hw::SwitchRef ref(kPorts);
  for (std::size_t p = 0; p < kPorts; ++p) {
    ref.table(p).install({1, static_cast<std::uint16_t>(100 + p)},
                         atm::Route{static_cast<std::uint8_t>((p + 1) % kPorts),
                                    {2, static_cast<std::uint16_t>(200 + p)},
                                    {}});
  }
  struct PortState {
    std::deque<std::pair<atm::Cell, std::uint8_t>> pending;
    bool in_flight = false;
    unsigned cooldown = 0;
  };
  std::vector<PortState> ports(kPorts);
  std::uint64_t delivered = 0;
  hdl.add_process("harness", {clk.id()}, [&] {
    if (!clk.rose()) return;
    for (std::size_t p = 0; p < kPorts; ++p) {
      PortState& st = ports[p];
      if (gcu.grant(p).read_bool()) {
        st.pending.pop_front();
        st.in_flight = false;
        st.cooldown = 1;
        ifs[p].req.write(rtl::Logic::L0);
        ++delivered;
        continue;
      }
      if (st.cooldown > 0) {
        --st.cooldown;
        continue;
      }
      if (!st.pending.empty() && !st.in_flight) {
        ifs[p].cell.write(hw::cell_to_bits(st.pending.front().first));
        ifs[p].dest.write_uint(st.pending.front().second);
        ifs[p].req.write(rtl::Logic::L1);
        st.in_flight = true;
      }
    }
  });

  cosim::CoVerification::Params params;
  params.sync.policy = cosim::SyncPolicy::kGlobalOrder;
  params.sync.clock_period = kClk;
  cosim::CoVerification cov(net, hdl, env, kPorts, params);
  cov.set_response_handler([](const cosim::TimedMessage&) {});
  std::uint64_t cells = 0;
  for (std::size_t p = 0; p < kPorts; ++p) {
    cells += traffic[p].size();
    cov.entity().register_input(
        static_cast<cosim::MessageType>(p), 2,
        [&, p](const cosim::TimedMessage& m) {
          const auto routed = ref.route(p, *m.cell);
          if (routed) {
            ports[p].pending.emplace_back(
                routed->cell, static_cast<std::uint8_t>(routed->out_port));
          }
        });
    traffic::CellTrace trace;
    for (const auto& a : traffic[p]) trace.append(a);
    auto& gen = env.add_process<traffic::GeneratorProcess>(
        "gen" + std::to_string(p),
        std::make_unique<traffic::TraceSource>(trace), trace.size());
    net.connect(gen, 0, cov.gateway(), static_cast<unsigned>(p));
  }
  WallTimer timer;
  cov.run_until(horizon_of(traffic));
  const double wall = timer.seconds();
  if (delivered != cells) {
    std::printf("  !! GCU harness delivered %llu of %llu cells\n",
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(cells));
  }
  return {"C: co-sim (RTL GCU only)", cells, clock.rising_edges(), wall,
          hdl.stats().process_activations};
}

}  // namespace

void record(bench::JsonReport& report, const Row& r, double baseline_cps) {
  report.begin_row(r.config);
  report.metric("cells", r.cells);
  report.metric("clk_cycles", r.cycles);
  report.metric("wall_seconds", r.wall_sec);
  report.metric("clk_cycles_per_sec",
                static_cast<double>(r.cycles) / r.wall_sec);
  report.metric("speedup_vs_a",
                static_cast<double>(r.cycles) / r.wall_sec / baseline_cps);
  report.metric("kernel_activations", r.kernel_events);
}

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e1_cosim_speed");
  bench::TelemetryCli telemetry_cli(argc, argv);
  std::size_t total = 2000;
  if (const char* env = std::getenv("CASTANET_E1_CELLS")) {
    total = std::strtoull(env, nullptr, 10);
  }
  const auto traffic = make_traffic(total);
  // Restrict to a subset of configurations for profiling one mode in
  // isolation: CASTANET_E1_ONLY is any combination of the letters
  // A (pure HDL), B (serial co-sim), P (pipelined co-sim), C (GCU only).
  std::string only;
  if (const char* env = std::getenv("CASTANET_E1_ONLY")) only = env;
  const auto want = [&only](char key) {
    return only.empty() || only.find(key) != std::string::npos;
  };

  std::printf("E1: co-simulation vs pure-HDL test bench speed (paper §2)\n");
  std::printf("paper: co-sim ~1300 clk/s vs pure-RTL GCU bench ~300 clk/s "
              "(~4.3x) on an UltraSPARC\n");
  bench::rule('=');
  std::printf("%-34s %8s %9s %8s %12s %8s\n", "configuration", "cells",
              "clk cyc", "wall s", "clk cyc/s", "speedup");
  bench::rule();
  // CASTANET_E1_REPS > 1 runs the selected configurations round-robin
  // (A,B,B',C, A,B,B',C, ...) and reports each configuration's
  // best-by-wall-clock row, which is what BENCH_PR*.json records.
  // Alternation matters: single runs on a shared box are too noisy for
  // mode-vs-mode comparisons, and sequential blocks would fold machine
  // drift into the comparison.  The minimum (not the median) is the
  // estimator because external load is strictly additive noise: the
  // fastest sample is the least-contaminated one each configuration got.
  std::size_t reps = 1;
  if (const char* env = std::getenv("CASTANET_E1_REPS")) {
    reps = std::strtoull(env, nullptr, 10);
    if (reps == 0) reps = 1;
  }
  g_quiet = reps > 1;
  std::vector<std::function<Row()>> runs;
  if (want('A')) runs.push_back([&] { return run_pure_rtl(traffic); });
  if (want('B')) {
    runs.push_back([&] { return run_cosim_full(traffic, /*pipelined=*/false); });
  }
  if (want('P')) {
    runs.push_back([&] { return run_cosim_full(traffic, /*pipelined=*/true); });
  }
  if (want('C')) runs.push_back([&] { return run_cosim_gcu(traffic); });

  // Rotate the within-round order each round: with a fixed order, later
  // slots run deeper into the sustained-busy window (frequency/thermal
  // decay, background scan kick-in) and pick up a small systematic
  // penalty that min-of-N cannot remove.
  std::vector<std::vector<Row>> samples(runs.size());
  for (std::size_t i = 0; i < reps; ++i) {
    for (std::size_t c = 0; c < runs.size(); ++c) {
      const std::size_t k = (c + i) % runs.size();
      samples[k].push_back(runs[k]());
    }
  }
  std::vector<Row> rows;
  for (auto& s : samples) {
    std::sort(s.begin(), s.end(),
              [](const Row& x, const Row& y) { return x.wall_sec < y.wall_sec; });
    rows.push_back(s.front());
  }
  const double base = rows.empty()
                          ? 1.0
                          : static_cast<double>(rows[0].cycles) / rows[0].wall_sec;
  for (const Row& r : rows) print_row(r, base);
  bench::rule();
  std::printf("HDL kernel process activations:");
  for (const Row& r : rows) {
    std::printf(" %llu", static_cast<unsigned long long>(r.kernel_events));
  }
  std::printf("\n");
  for (const Row& r : rows) record(report, r, base);
  return 0;
}

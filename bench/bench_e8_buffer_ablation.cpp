// Ablation — switch output-buffer dimensioning, abstract vs RTL.
//
// DESIGN.md's design-choice list: "there exists strong dependencies between
// decisions at the system level and hardware costs of their actual
// implementation" (§2) — buffer sizing is *the* canonical example.  The
// same bursty traffic drives (a) the abstract single-server queue model in
// the network simulator and (b) the RTL switch whose output FIFO depth is
// the hardware cost knob.  Both must show the same shape: cell loss falls
// steeply with buffer depth at a given utilisation, and the co-verification
// environment is what lets a designer read both curves from one test bench.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/hw/atm_switch.hpp"
#include "src/netsim/queue.hpp"
#include "src/netsim/simulation.hpp"
#include "src/traffic/processes.hpp"
#include "src/traffic/trace.hpp"

using namespace castanet;

namespace {

const SimTime kClk = clock_period_hz(20'000'000);
const SimTime kCellTime = kClk * 53;  // output service time

traffic::OnOffSource::Params bursty_params() {
  traffic::OnOffSource::Params p;
  p.peak_period = kCellTime;        // on: full link rate
  p.mean_on_sec = 120e-6;           // ~45-cell bursts
  p.mean_off_sec = 160e-6;          // duty ~0.43 per source, 2 sources
  return p;
}

struct LossPoint {
  std::uint64_t offered;
  std::uint64_t lost;
  double loss_rate() const {
    return offered ? static_cast<double>(lost) / static_cast<double>(offered)
                   : 0.0;
  }
};

/// Abstract model: two bursty sources into one finite queue at cell rate.
LossPoint run_abstract(std::size_t depth, std::size_t cells_per_source,
                       std::uint64_t seed) {
  netsim::Simulation sim(seed);
  netsim::Node& n = sim.add_node("n");
  netsim::QueueProcess::Config qc;
  qc.service_time = kCellTime;
  qc.capacity = depth;
  auto& q = n.add_process<netsim::QueueProcess>("q", qc);
  auto& sink = n.add_process<traffic::SinkProcess>("sink");
  sink.set_keep_log(false);
  sim.connect(q, 0, sink, 0);
  for (int s = 0; s < 2; ++s) {
    auto& gen = n.add_process<traffic::GeneratorProcess>(
        "gen" + std::to_string(s),
        std::make_unique<traffic::OnOffSource>(
            atm::VcId{1, static_cast<std::uint16_t>(100 + s)},
            static_cast<std::uint8_t>(s), bursty_params(),
            Rng(seed * 17 + static_cast<std::uint64_t>(s))),
        cells_per_source);
    // A fresh intermediate stream per generator: the queue has one input
    // stream, so multiplex through distinct in-stream indices.
    sim.connect(gen, 0, q, 0);
  }
  sim.run();
  return {q.arrivals(), q.drops()};
}

/// RTL: the same sources into switch inputs 0/1, both routed to output 0;
/// the tx FIFO of port 0 with the swept depth is the loss point.  Cells are
/// injected at their source times through scheduled callbacks so the burst
/// gaps survive.
LossPoint run_rtl_timed(std::size_t depth, std::size_t cells_per_source,
                        std::uint64_t seed) {
  rtl::Simulator hdl;
  rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
  rtl::Signal rst(&hdl, hdl.create_signal("rst", 1, rtl::Logic::L0));
  rtl::ClockGen clock(hdl, clk, kClk);
  hw::AtmSwitch::Config cfg;
  cfg.ports = 2;
  cfg.port.tx_fifo_depth = depth;
  cfg.port.rx_fifo_depth = 64;
  hw::AtmSwitch sw(hdl, "sw", clk, rst, cfg);
  std::vector<std::unique_ptr<hw::CellPortDriver>> drivers;
  SimTime horizon = SimTime::zero();
  std::uint64_t offered = 0;
  for (int s = 0; s < 2; ++s) {
    sw.install_route(static_cast<std::size_t>(s),
                     {1, static_cast<std::uint16_t>(100 + s)},
                     atm::Route{0, {2, static_cast<std::uint16_t>(200 + s)},
                                {}});
    drivers.push_back(std::make_unique<hw::CellPortDriver>(
        hdl, "drv" + std::to_string(s), clk,
        sw.phys_in(static_cast<std::size_t>(s))));
    traffic::OnOffSource src(
        atm::VcId{1, static_cast<std::uint16_t>(100 + s)},
        static_cast<std::uint8_t>(s), bursty_params(),
        Rng(seed * 17 + static_cast<std::uint64_t>(s)));
    hw::CellPortDriver* drv = drivers.back().get();
    for (std::size_t i = 0; i < cells_per_source; ++i) {
      const traffic::CellArrival a = src.next();
      hdl.schedule_callback(a.time, [drv, cell = a.cell] {
        drv->enqueue(cell);
      });
      horizon = std::max(horizon, a.time);
      ++offered;
    }
  }
  hdl.run_until(horizon + kCellTime * 200);
  return {offered, sw.port(0).tx_fifo().drops()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e8_buffer_ablation");
  constexpr std::size_t kCellsPerSource = 1500;
  std::printf("Buffer-depth ablation: loss vs output FIFO depth "
              "(2 bursty sources -> 1 output, utilisation ~0.86)\n");
  bench::rule('=');
  std::printf("%8s %16s %16s\n", "depth", "abstract loss", "RTL loss");
  bench::rule();
  for (std::size_t depth : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const LossPoint a = run_abstract(depth, kCellsPerSource, 5);
    const LossPoint r = run_rtl_timed(depth, kCellsPerSource, 5);
    report.begin_row("depth_" + std::to_string(depth));
    report.metric("abstract_loss_rate", a.loss_rate());
    report.metric("rtl_loss_rate", r.loss_rate());
    std::printf("%8zu %15.2f%% %15.2f%%\n", depth, 100.0 * a.loss_rate(),
                100.0 * r.loss_rate());
  }
  bench::rule();
  std::printf("both curves must fall with depth; the system-level model\n"
              "predicts the dimensioning the RTL confirms (Fig. 1's loop)\n");
  return 0;
}

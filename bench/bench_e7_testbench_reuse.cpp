// Experiment E8 — §2's motivation: test-bench reuse.
//
// "The main motivation is to model and reuse test benches at a higher level
//  of abstraction in order to cope with the increasing test bench
//  complexity … This approach significantly reduces the time to construct
//  test benches because it reuses existing test patterns and model
//  descriptions that are available in the network simulation environment."
//
// Table 1: stimulus families available for free from the traffic-model
// library, with generation throughput (vectors/second of wall time) — the
// cost of *having* a test bench once models are reused.
//
// Table 2: one recorded trace reused at all three verification levels
// (reference model, RTL co-simulation, hardware test board) with identical
// verdicts — zero additional test-bench construction per level.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/castanet/board_driver.hpp"
#include "src/castanet/coverify.hpp"
#include "src/hw/accounting.hpp"
#include "src/hw/reference.hpp"
#include "src/traffic/conformance.hpp"
#include "src/traffic/mpeg.hpp"
#include "src/traffic/processes.hpp"
#include "src/traffic/trace.hpp"

using namespace castanet;
using bench::WallTimer;

namespace {

const SimTime kClk = clock_period_hz(20'000'000);

bench::JsonReport* g_report = nullptr;

template <typename MakeSource>
void bench_source(const char* label, MakeSource make) {
  constexpr std::size_t kVectors = 200'000;
  auto src = make();
  WallTimer timer;
  SimTime last;
  for (std::size_t i = 0; i < kVectors; ++i) last = src->next().time;
  const double wall = timer.seconds();
  if (g_report) {
    g_report->begin_row(label);
    g_report->metric("vectors", static_cast<std::uint64_t>(kVectors));
    g_report->metric("vectors_per_sec",
                     static_cast<double>(kVectors) / wall);
    g_report->metric("sim_span_sec", last.seconds());
  }
  std::printf("%-30s %10zu %12.0f %14.3f\n", label, kVectors,
              static_cast<double>(kVectors) / wall, last.seconds());
}

std::uint64_t run_cosim_level(const traffic::CellTrace& trace) {
  netsim::Simulation net;
  netsim::Node& env = net.add_node("env");
  rtl::Simulator hdl;
  rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
  rtl::Signal rst(&hdl, hdl.create_signal("rst", 1, rtl::Logic::L0));
  rtl::ClockGen clock(hdl, clk, kClk);
  hw::CellPort snoop = hw::make_cell_port(hdl, "snoop");
  hw::CellPortDriver driver(hdl, "drv", clk, snoop);
  hw::AccountingUnit acct(hdl, "acct", clk, rst, snoop, 8);
  acct.set_tariff(0, hw::Tariff{2, 1});
  acct.bind_connection({1, 100}, 0, 0);
  cosim::CoVerification::Params params;
  params.sync.policy = cosim::SyncPolicy::kGlobalOrder;
  params.sync.clock_period = kClk;
  cosim::CoVerification cov(net, hdl, env, 1, params);
  cov.set_response_handler([](const cosim::TimedMessage&) {});
  cov.entity().register_input(0, 53, [&](const cosim::TimedMessage& m) {
    driver.enqueue(*m.cell);
  });
  auto& gen = env.add_process<traffic::GeneratorProcess>(
      "gen", std::make_unique<traffic::TraceSource>(trace), trace.size());
  net.connect(gen, 0, cov.gateway(), 0);
  cov.run_until(trace.arrivals().back().time + SimTime::from_ms(1));
  return acct.charge(0);
}

std::uint64_t run_board_level(const traffic::CellTrace& trace) {
  board::HardwareTestBoard board;
  board.configure(cosim::make_cell_stream_config());
  cosim::AccountingBoardDut dut = cosim::build_accounting_dut(8);
  dut.unit->set_tariff(0, hw::Tariff{2, 1});
  dut.unit->bind_connection({1, 100}, 0, 0);
  dut.adapter->reset();
  cosim::BoardCellStream stream(board, {4096, board::kMaxBoardClockHz});
  stream.run(*dut.adapter, trace.arrivals());
  return dut.unit->charge(0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e7_testbench_reuse");
  g_report = &report;
  std::printf("E8: test-bench reuse from the network-simulation level "
              "(§2)\n");
  bench::rule('=');
  std::printf("%-30s %10s %12s %14s\n", "stimulus family", "vectors",
              "vectors/s", "sim span s");
  bench::rule();
  Rng rng(5);
  bench_source("CBR (cell period 3us)", [] {
    return std::make_unique<traffic::CbrSource>(atm::VcId{1, 1}, 0,
                                                SimTime::from_us(3));
  });
  bench_source("Poisson (300k cells/s)", [&] {
    return std::make_unique<traffic::PoissonSource>(atm::VcId{1, 1}, 0,
                                                    300'000.0, rng.fork());
  });
  bench_source("On/Off bursty", [&] {
    traffic::OnOffSource::Params p;
    p.peak_period = SimTime::from_us(3);
    p.mean_on_sec = 1e-3;
    p.mean_off_sec = 1e-3;
    return std::make_unique<traffic::OnOffSource>(atm::VcId{1, 1}, 0, p,
                                                  rng.fork());
  });
  bench_source("MMPP 2-state", [&] {
    return std::make_unique<traffic::MmppSource>(
        atm::VcId{1, 1}, 0, std::vector<double>{400'000.0, 40'000.0},
        std::vector<double>{1e-3, 1e-3}, rng.fork());
  });
  bench_source("MPEG GoP video", [&] {
    return std::make_unique<traffic::MpegSource>(atm::VcId{1, 1}, 0,
                                                 traffic::MpegParams{},
                                                 rng.fork());
  });
  {
    // Conformance vectors are generated in bulk, not streamed.
    WallTimer timer;
    std::vector<std::size_t> bad;
    const auto sweep = traffic::header_sweep_vectors(SimTime::from_us(3));
    const auto gcra = traffic::gcra_boundary_vectors(
        {1, 1}, SimTime::from_us(10), SimTime::from_us(25), 10'000, bad);
    const double wall = timer.seconds();
    std::printf("%-30s %10zu %12.0f %14s\n", "conformance (sweep + GCRA)",
                sweep.size() + gcra.size(),
                static_cast<double>(sweep.size() + gcra.size()) / wall, "-");
  }
  bench::rule();

  std::printf("\none recorded trace reused across all verification levels\n");
  bench::rule('=');
  traffic::CbrSource src({1, 100}, 1, SimTime::from_us(4));
  traffic::CellTrace trace;
  Rng clp(9);
  for (int i = 0; i < 150; ++i) {
    traffic::CellArrival a = src.next();
    a.cell.header.clp = clp.bernoulli(0.2);
    trace.append(a);
  }
  hw::AccountingRef ref(8);
  ref.set_tariff(0, hw::Tariff{2, 1});
  ref.bind_connection({1, 100}, 0, 0);
  for (const auto& a : trace.arrivals()) ref.observe(a.cell);

  const std::uint64_t ref_charge = ref.charge(0);
  const std::uint64_t cosim_charge = run_cosim_level(trace);
  const std::uint64_t board_charge = run_board_level(trace);
  std::printf("%-42s charge = %llu units\n", "level 1: algorithm reference",
              static_cast<unsigned long long>(ref_charge));
  std::printf("%-42s charge = %llu units\n",
              "level 2: RTL DUT via simulator coupling",
              static_cast<unsigned long long>(cosim_charge));
  std::printf("%-42s charge = %llu units\n",
              "level 3: device on the hardware test board",
              static_cast<unsigned long long>(board_charge));
  const bool agree = ref_charge == cosim_charge && ref_charge == board_charge;
  bench::rule();
  std::printf("cross-level agreement: %s (the reuse guarantee of Fig. 1)\n",
              agree ? "EXACT" : "BROKEN");
  return agree ? 0 : 1;
}

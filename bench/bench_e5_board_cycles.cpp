// Experiment E6 — §3.3 and Fig. 5: hardware test board throughput.
//
// Table 1: hardware-test-cycle duration sweep.  Each test cycle pays a
// software activity (stimulus generation + SCSI store) before and a SCSI
// readback after the real-time hardware activity; short cycles are
// overhead-dominated, long cycles amortize it — the reason the board's
// vector memories support durations up to 2^20 clocks.
//
// Table 2: clock gating factor sweep (a DUT slower than the board's 20 MHz
// is still verifiable at real time, at proportional cost).
//
// Table 3: pin-mapping configurations (Fig. 5): packed multi-port lanes vs
// one port per lane — the configuration data set abstracts both.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/castanet/board_driver.hpp"
#include "src/traffic/sources.hpp"

using namespace castanet;

namespace {

std::vector<traffic::CellArrival> make_cells(std::size_t n) {
  traffic::CbrSource src({1, 100}, 1, SimTime::from_ns(50 * 53));
  std::vector<traffic::CellArrival> cells;
  for (std::size_t i = 0; i < n; ++i) cells.push_back(src.next());
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e5_board_cycles");
  constexpr std::size_t kCells = 200;
  const auto cells = make_cells(kCells);

  std::printf("E6: hardware test board (Fig. 5, §3.3)\n");
  std::printf("DUT: accounting unit behind the pin adapter; %zu cells "
              "back-to-back at 20 MHz\n", kCells);
  bench::rule('=');
  std::printf("%12s %10s %12s %12s %10s %10s\n", "cycle len", "HW cycles",
              "HW time ms", "SW time ms", "SW share", "cells/s*");
  bench::rule();
  for (std::uint64_t len : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    board::HardwareTestBoard board;
    board.configure(cosim::make_cell_stream_config());
    cosim::AccountingBoardDut dut = cosim::build_accounting_dut(8);
    dut.unit->bind_connection({1, 100}, 0, 0);
    dut.unit->set_tariff(0, hw::Tariff{1, 0});
    dut.adapter->reset();
    cosim::BoardCellStream stream(board, {len, board::kMaxBoardClockHz});
    const auto r = stream.run(*dut.adapter, cells);
    const double hw_ms = r.totals.hw_time.seconds() * 1e3;
    const double sw_ms = r.totals.sw_time.seconds() * 1e3;
    const double total_s = r.totals.total().seconds();
    report.begin_row("cycle_len_" + std::to_string(len));
    report.metric("hw_cycles", r.test_cycles);
    report.metric("hw_time_ms", hw_ms);
    report.metric("sw_time_ms", sw_ms);
    report.metric("cells_per_sec", static_cast<double>(kCells) / total_s);
    std::printf("%12llu %10llu %12.3f %12.3f %9.1f%% %10.0f\n",
                static_cast<unsigned long long>(len),
                static_cast<unsigned long long>(r.test_cycles), hw_ms, sw_ms,
                100.0 * sw_ms / (hw_ms + sw_ms),
                static_cast<double>(kCells) / total_s);
    if (dut.unit->count(0) != kCells) {
      std::printf("  !! miscount: %llu\n",
                  static_cast<unsigned long long>(dut.unit->count(0)));
    }
  }
  std::printf("(*modeled verification-time throughput: SCSI + real-time "
              "activity)\n");
  bench::rule();

  std::printf("\nclock gating factor sweep (board at 20 MHz)\n");
  bench::rule('=');
  std::printf("%8s %12s %12s %12s\n", "gating", "DUT clock", "HW time ms",
              "counted");
  bench::rule();
  for (unsigned g : {1u, 2u, 4u, 8u}) {
    board::HardwareTestBoard board;
    board.configure(cosim::make_cell_stream_config(g));
    cosim::AccountingBoardDut dut = cosim::build_accounting_dut(8);
    dut.unit->bind_connection({1, 100}, 0, 0);
    dut.unit->set_tariff(0, hw::Tariff{1, 0});
    dut.adapter->reset();
    cosim::BoardCellStream stream(board, {4096, board::kMaxBoardClockHz});
    const auto r = stream.run(*dut.adapter, cells);
    std::printf("%8u %9.1f MHz %12.3f %12llu\n", g,
                20.0 / static_cast<double>(g),
                r.totals.hw_time.seconds() * 1e3,
                static_cast<unsigned long long>(dut.unit->count(0)));
  }
  bench::rule();

  std::printf("\npin-mapping configurations (Fig. 5 configuration data set)\n");
  bench::rule('=');
  {
    using namespace castanet::board;
    // Packed: three logical ports share byte lane 0.
    ConfigDataSet packed;
    packed.inports.push_back({0, 4, {{0, 0, 4}}});
    packed.inports.push_back({1, 3, {{0, 4, 3}}});
    packed.inports.push_back({2, 1, {{0, 7, 1}}});
    packed.outports.push_back({0, 8, {{8, 0, 8}}});
    packed.validate();
    std::printf("  packed:   3 inports (4+3+1 bits) on byte lane 0 ... valid\n");
    // Spread: one port per lane, a 16-bit port across two lanes.
    ConfigDataSet spread;
    spread.inports.push_back({0, 8, {{0, 0, 8}}});
    spread.inports.push_back({1, 16, {{1, 0, 8}, {2, 0, 8}}});
    spread.outports.push_back({0, 16, {{8, 0, 8}, {9, 0, 8}}});
    spread.validate();
    std::printf("  spread:   8-bit + 16-bit inports across lanes 0-2 ... valid\n");
    // The pack/unpack path is bit-exact either way:
    std::uint8_t lanes[kByteLanes] = {};
    pack_slices(packed.inports[0].slices, 0xA, lanes);
    pack_slices(packed.inports[1].slices, 0x5, lanes);
    pack_slices(packed.inports[2].slices, 0x1, lanes);
    const bool ok = unpack_slices(packed.inports[0].slices, lanes) == 0xA &&
                    unpack_slices(packed.inports[1].slices, lanes) == 0x5 &&
                    unpack_slices(packed.inports[2].slices, lanes) == 0x1;
    std::printf("  pack/unpack round trip on shared lane: %s\n",
                ok ? "exact" : "BROKEN");
  }
  bench::rule();
  return 0;
}

// Experiment E7 — the paper's conclusions:
//
// "the number of events that event-driven simulators have to evaluate is an
//  order of magnitude higher compared to the system-level simulation in
//  OPNET.  Thus, the integration of cycle-based simulation techniques is
//  required."
//
// Table 1: events per cell at the three modeling levels — network simulator
// (abstract), event-driven HDL kernel (delta cycles, activations, signal
// updates), and the cycle-based engine.
//
// Table 2: event-driven vs cycle-based simulation of the *same* GCU
// arbitration core (bit-identical behaviour, shared gcu_arbitrate), in
// evaluated cycles per wall second.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/hw/atm_switch.hpp"
#include "src/hw/cell_bits.hpp"
#include "src/hw/gcu.hpp"
#include "src/netsim/simulation.hpp"
#include "src/traffic/processes.hpp"

using namespace castanet;
using bench::WallTimer;

namespace {

const SimTime kClk = clock_period_hz(20'000'000);

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e6_event_ratio");
  constexpr std::size_t kCells = 400;

  std::printf("E7: event ratio across modeling levels (paper conclusions)\n");
  bench::rule('=');
  std::printf("%-34s %10s %12s %14s\n", "level", "cells", "events",
              "events/cell");
  bench::rule();

  // --- network level ----------------------------------------------------
  {
    netsim::Simulation net;
    netsim::Node& env = net.add_node("env");
    auto& gen = env.add_process<traffic::GeneratorProcess>(
        "gen",
        std::make_unique<traffic::CbrSource>(atm::VcId{1, 100}, 1,
                                             SimTime::from_us(3)),
        kCells);
    auto& sink = env.add_process<traffic::SinkProcess>("sink");
    sink.set_keep_log(false);
    net.connect(gen, 0, sink, 0);
    net.run();
    report.begin_row("network_abstract");
    report.metric("events", net.scheduler().events_executed());
    report.metric("events_per_cell",
                  static_cast<double>(net.scheduler().events_executed()) /
                      kCells);
    std::printf("%-34s %10zu %12llu %14.1f\n",
                "network simulator (abstract)", kCells,
                static_cast<unsigned long long>(
                    net.scheduler().events_executed()),
                static_cast<double>(net.scheduler().events_executed()) /
                    kCells);
  }

  // --- event-driven HDL level -------------------------------------------
  {
    rtl::Simulator hdl;
    rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
    rtl::Signal rst(&hdl, hdl.create_signal("rst", 1, rtl::Logic::L0));
    rtl::ClockGen clock(hdl, clk, kClk);
    hw::AtmSwitch sw(hdl, "sw", clk, rst);
    sw.install_route(0, {1, 100}, atm::Route{1, {2, 200}, {}});
    hw::CellPortDriver drv(hdl, "drv", clk, sw.phys_in(0));
    hw::CellPortMonitor mon(hdl, "mon", clk, sw.phys_out(1));
    traffic::CbrSource src({1, 100}, 1, SimTime::from_us(3));
    for (std::size_t i = 0; i < kCells; ++i) drv.enqueue(src.next().cell);
    hdl.run_until(SimTime::from_us(3 * kCells + 100));
    const auto& st = hdl.stats();
    const std::uint64_t events =
        st.process_activations + st.value_changes;
    report.begin_row("event_driven_hdl");
    report.metric("events", events);
    report.metric("events_per_cell", static_cast<double>(events) / kCells);
    std::printf("%-34s %10zu %12llu %14.1f\n",
                "event-driven HDL (RTL switch)", kCells,
                static_cast<unsigned long long>(events),
                static_cast<double>(events) / kCells);
    std::printf("    (%llu activations, %llu signal changes, %llu deltas)\n",
                static_cast<unsigned long long>(st.process_activations),
                static_cast<unsigned long long>(st.value_changes),
                static_cast<unsigned long long>(st.delta_cycles));
  }

  // --- cycle-based level ---------------------------------------------------
  {
    rtl::CycleEngine eng(kClk);
    hw::GcuCycleModel gcu(4);
    eng.add(gcu);
    // One evaluation per clock: a cell occupies 53 clocks on the lane.
    eng.run_cycles(kCells * 53);
    report.begin_row("cycle_based_gcu");
    report.metric("events", eng.evaluations());
    report.metric("events_per_cell",
                  static_cast<double>(eng.evaluations()) / kCells);
    std::printf("%-34s %10zu %12llu %14.1f\n", "cycle-based engine (GCU)",
                kCells,
                static_cast<unsigned long long>(eng.evaluations()),
                static_cast<double>(eng.evaluations()) / kCells);
  }
  bench::rule();

  // --- engine shoot-out on identical arbitration behaviour -----------------
  std::printf("\nevent-driven vs cycle-based simulation of the same GCU "
              "core\n");
  bench::rule('=');
  std::printf("%-34s %12s %10s %14s\n", "engine", "cycles", "wall s",
              "cycles/s");
  bench::rule();
  constexpr std::uint64_t kCycles = 200'000;
  double ev_cps = 0, cy_cps = 0;
  {
    rtl::Simulator hdl;
    rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
    rtl::Signal rst(&hdl, hdl.create_signal("rst", 1, rtl::Logic::L0));
    rtl::ClockGen clock(hdl, clk, kClk);
    std::vector<hw::GlobalControlUnit::InputIf> ifs;
    for (int p = 0; p < 4; ++p) {
      const std::string nm = "i" + std::to_string(p);
      hw::GlobalControlUnit::InputIf f;
      f.req = rtl::Signal(&hdl, hdl.create_signal(nm, 1, rtl::Logic::L1));
      f.dest =
          rtl::Bus(&hdl, hdl.create_signal(nm + ".d", 4,
                                           rtl::Logic::L0));
      f.cell = rtl::Bus(&hdl, hdl.create_signal(nm + ".c", hw::kCellBits,
                                                rtl::Logic::L0));
      ifs.push_back(f);
    }
    hw::GlobalControlUnit gcu(hdl, "gcu", clk, rst, ifs);
    WallTimer timer;
    hdl.run_until(kClk * static_cast<std::int64_t>(kCycles));
    const double wall = timer.seconds();
    ev_cps = static_cast<double>(kCycles) / wall;
    std::printf("%-34s %12llu %10.3f %14.0f\n", "event-driven kernel",
                static_cast<unsigned long long>(kCycles), wall, ev_cps);
  }
  {
    rtl::CycleEngine eng(kClk);
    hw::GcuCycleModel gcu(4);
    for (std::size_t p = 0; p < 4; ++p) {
      gcu.in_req[p].req = true;
      gcu.in_req[p].dest = 0;
    }
    eng.add(gcu);
    WallTimer timer;
    eng.run_cycles(kCycles);
    const double wall = timer.seconds();
    cy_cps = static_cast<double>(kCycles) / wall;
    std::printf("%-34s %12llu %10.3f %14.0f\n", "cycle-based engine",
                static_cast<unsigned long long>(kCycles), wall, cy_cps);
  }
  bench::rule();
  std::printf("cycle-based speedup: %.1fx — the integration the paper calls "
              "for\n", cy_cps / ev_cps);
  return 0;
}

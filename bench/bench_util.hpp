// Shared helpers for the experiment benches: wall-clock timing and table
// printing.  Every bench_e* binary regenerates one element of the paper's
// evaluation; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <chrono>
#include <cstdio>

namespace castanet::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace castanet::bench

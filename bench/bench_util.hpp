// Shared helpers for the experiment benches: wall-clock timing and table
// printing.  Every bench_e* binary regenerates one element of the paper's
// evaluation; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/core/telemetry.hpp"

namespace castanet::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Machine-readable results alongside the human tables.  Every bench binary
/// accepts `--json <path>`; when present, the report writes one JSON object
/// per run:
///
///   {"bench": "e1_cosim_speed",
///    "rows": [{"config": "...", "metrics": {"wall_seconds": 1.5, ...}}]}
///
/// bench/run_all.sh composes the per-bench files into BENCH_PR<n>.json.
/// Without --json the report is inert, so benches stay runnable by hand.
class JsonReport {
 public:
  JsonReport(int argc, char** argv, std::string bench_name)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    }
  }
  ~JsonReport() { write(); }

  bool active() const { return !path_.empty(); }

  /// Starts a result row; subsequent metric() calls attach to it.
  void begin_row(std::string config) {
    rows_.push_back(RowData{std::move(config), {}});
  }
  void metric(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    add(key, buf);
  }
  void metric(const char* key, std::uint64_t v) {
    add(key, std::to_string(v));
  }

  /// Idempotent; also called by the destructor.
  void write() {
    if (path_.empty() || written_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [",
                 escape(bench_).c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n    {\"config\": \"%s\", \"metrics\": {",
                   r ? "," : "", escape(rows_[r].config).c_str());
      for (std::size_t k = 0; k < rows_[r].kv.size(); ++k) {
        std::fprintf(f, "%s\"%s\": %s", k ? ", " : "",
                     escape(rows_[r].kv[k].first).c_str(),
                     rows_[r].kv[k].second.c_str());
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    written_ = true;
  }

 private:
  struct RowData {
    std::string config;
    std::vector<std::pair<std::string, std::string>> kv;
  };

  void add(const char* key, std::string rendered) {
    if (rows_.empty()) begin_row("default");
    rows_.back().kv.emplace_back(key, std::move(rendered));
  }

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<RowData> rows_;
  bool written_ = false;
};

/// Opt-in telemetry for benches: `--trace <path>` enables the hub and writes
/// a Chrome trace at destruction, `--trace-out <path>` streams the trace
/// ring to disk as it fills (no drop-oldest; use for runs longer than the
/// ring), `--metrics <path>` writes the flat metrics snapshot (JSON).
/// Without any flag the hub stays disabled, so the default bench numbers
/// measure the enabled()-check fast path only.
class TelemetryCli {
 public:
  TelemetryCli(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--trace") trace_path_ = argv[i + 1];
      if (std::string(argv[i]) == "--trace-out") stream_path_ = argv[i + 1];
      if (std::string(argv[i]) == "--metrics") metrics_path_ = argv[i + 1];
    }
    if (active()) telemetry::Hub::instance().enable();
    if (!stream_path_.empty() &&
        !telemetry::Hub::instance().stream_trace_to(stream_path_)) {
      std::fprintf(stderr, "TelemetryCli: cannot open %s\n",
                   stream_path_.c_str());
    }
  }
  ~TelemetryCli() {
    if (!active()) return;
    auto& hub = telemetry::Hub::instance();
    if (!stream_path_.empty()) hub.stop_trace_stream();
    if (!trace_path_.empty() && !hub.write_chrome_trace(trace_path_))
      std::fprintf(stderr, "TelemetryCli: cannot write %s\n",
                   trace_path_.c_str());
    if (!metrics_path_.empty()) {
      if (std::FILE* f = std::fopen(metrics_path_.c_str(), "w")) {
        const std::string json = hub.snapshot().to_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "TelemetryCli: cannot write %s\n",
                     metrics_path_.c_str());
      }
    }
    hub.disable();
  }
  bool active() const {
    return !trace_path_.empty() || !stream_path_.empty() ||
           !metrics_path_.empty();
  }

 private:
  std::string trace_path_;
  std::string stream_path_;
  std::string metrics_path_;
};

}  // namespace castanet::bench

// Experiment E9 — event-list scalability (PR 10).
//
// The paper's co-verification loop leans on the network simulator's event
// list for every cell hop, timer, and synchronization message; §2 attributes
// the event-driven kernel's cost to exactly this machinery.  E9 measures the
// data structure directly: schedule/pop and cancel/re-schedule churn at a
// pinned backlog of 1k .. 1M pending events, calendar queue (dsim::Scheduler)
// vs the retained binary-heap reference (dsim::HeapScheduler) in the same
// run.  The heap's per-op cost grows ~log N with the backlog; the calendar
// queue should stay flat — the smoke gate asserts wheel throughput at the
// largest backlog stays within 2x of the smallest.
//
// Workloads:
//   hold   — timer-farm shape: P events spread over a horizon; each pop
//            re-arms one event at the back of the horizon (constant backlog,
//            overflow-wheel cascading exercised continuously).
//   cancel — signaling shape: cancel a random pending event and re-schedule
//            it (the O(1)-cancel path the heap only handles lazily).
//
// Env knobs: CASTANET_E9_MAX_PENDING (default 1000000) caps the backlog
// ladder; CASTANET_E9_OPS (default 200000) sets ops per measurement.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/rng.hpp"
#include "src/dsim/heap_scheduler.hpp"
#include "src/dsim/scheduler.hpp"

using namespace castanet;
using bench::WallTimer;

namespace {

constexpr std::int64_t kSpacingPs = 1000;  // one event per ns of backlog

std::uint64_t env_or(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

/// Pin `pending` events on the scheduler, spaced kSpacingPs apart.
template <typename S>
void populate(S& s, std::uint64_t pending, std::vector<EventHandle>* handles) {
  for (std::uint64_t i = 0; i < pending; ++i) {
    EventHandle h = s.schedule_at(
        s.now() + SimTime::from_ps(static_cast<std::int64_t>(i + 1) *
                                   kSpacingPs),
        [] {});
    if (handles != nullptr) handles->push_back(h);
  }
}

/// Publishes wheel telemetry when the hub is on (--metrics); HeapScheduler
/// has no wheel, so its overload is a no-op.
inline void publish_wheel(const Scheduler& s) { s.publish_telemetry(); }
inline void publish_wheel(const HeapScheduler&) {}

/// Timer-farm churn: pop the earliest event, re-arm one at the horizon.
template <typename S>
double run_hold(std::uint64_t pending, std::uint64_t ops) {
  S s;
  populate(s, pending, nullptr);
  const SimTime horizon =
      SimTime::from_ps(static_cast<std::int64_t>(pending) * kSpacingPs);
  WallTimer timer;
  for (std::uint64_t i = 0; i < ops; ++i) {
    s.schedule_at(s.now() + horizon, [] {});
    s.step();
  }
  const double wall = timer.seconds();
  publish_wheel(s);
  return wall;
}

/// Cancellation churn: cancel a pseudo-random pending event, re-schedule it.
template <typename S>
double run_cancel(std::uint64_t pending, std::uint64_t ops) {
  S s;
  std::vector<EventHandle> handles;
  handles.reserve(pending);
  populate(s, pending, &handles);
  const SimTime horizon =
      SimTime::from_ps(static_cast<std::int64_t>(pending) * kSpacingPs);
  Rng rng(7);
  WallTimer timer;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::size_t victim =
        static_cast<std::size_t>(rng.uniform_int(0, pending - 1));
    s.cancel(handles[victim]);
    handles[victim] = s.schedule_at(
        s.now() + SimTime::from_ps(static_cast<std::int64_t>(
                      rng.uniform_int(1, static_cast<std::uint64_t>(
                                             horizon.ps())))),
        [] {});
  }
  const double wall = timer.seconds();
  publish_wheel(s);
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e9_sched_scale");
  bench::TelemetryCli telemetry(argc, argv);
  const std::uint64_t max_pending = env_or("CASTANET_E9_MAX_PENDING", 1'000'000);
  const std::uint64_t ops = env_or("CASTANET_E9_OPS", 200'000);

  std::printf("E9: event-list scalability — calendar queue vs binary heap\n");
  std::printf("churn of %llu ops at a pinned backlog of pending events\n",
              static_cast<unsigned long long>(ops));
  bench::rule('=');
  std::printf("%-10s %12s %16s %16s %9s\n", "workload", "pending",
              "wheel ev/s", "heap ev/s", "wheel/heap");
  bench::rule();

  for (const std::uint64_t pending : {1'000ull, 10'000ull, 100'000ull,
                                      1'000'000ull}) {
    if (pending > max_pending) continue;
    for (const bool cancel_mix : {false, true}) {
      const double wheel_s =
          cancel_mix ? run_cancel<Scheduler>(pending, ops)
                     : run_hold<Scheduler>(pending, ops);
      const double heap_s =
          cancel_mix ? run_cancel<HeapScheduler>(pending, ops)
                     : run_hold<HeapScheduler>(pending, ops);
      const double wheel_eps = static_cast<double>(ops) / wheel_s;
      const double heap_eps = static_cast<double>(ops) / heap_s;
      const char* workload = cancel_mix ? "cancel" : "hold";
      char config[64];
      std::snprintf(config, sizeof(config), "%s_p%llu", workload,
                    static_cast<unsigned long long>(pending));
      report.begin_row(config);
      report.metric("pending", pending);
      report.metric("ops", ops);
      report.metric("wheel_wall_seconds", wheel_s);
      report.metric("heap_wall_seconds", heap_s);
      report.metric("wheel_events_per_sec", wheel_eps);
      report.metric("heap_events_per_sec", heap_eps);
      report.metric("wheel_vs_heap", wheel_eps / heap_eps);
      std::printf("%-10s %12llu %16.0f %16.0f %8.2fx\n", workload,
                  static_cast<unsigned long long>(pending), wheel_eps,
                  heap_eps, wheel_eps / heap_eps);
    }
  }
  bench::rule();
  std::printf("flat wheel rows (vs log-N heap decay) are the win; the smoke\n"
              "gate checks hold_p1000000 wheel throughput >= 0.5x hold_p1000\n");
  return 0;
}

// Experiment E5 — §3.2 and Fig. 4: abstraction interfaces.
//
// Table 1: mapping an abstract ATM cell (a C structure, instantaneous at
// the network level) onto cycle-timed bit-level signals and back, at lane
// widths of 8/16/32 bits.  Reported per width: clocks per cell, abstract
// events per cell vs HDL events per cell, and round-trip throughput.
//
// Table 2: the time-scale ratio the paper quotes ("a ratio of 1:100 for a
// simulation time step in OPNET and VSS"): how many HDL kernel activations
// one network-level cell event expands into.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/castanet/mapping.hpp"
#include "src/hw/cell_port.hpp"

using namespace castanet;
using bench::WallTimer;

namespace {

const SimTime kClk = clock_period_hz(20'000'000);

struct WidthResult {
  std::size_t lane_bytes;
  std::size_t clocks_per_cell;
  double cells_per_sec;
  double hdl_activations_per_cell;
  double hdl_value_changes_per_cell;
  bool lossless;
};

WidthResult run_width(std::size_t lane_bytes, std::size_t cells) {
  rtl::Simulator hdl;
  rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
  rtl::ClockGen clock(hdl, clk, kClk);
  rtl::Bus data(&hdl, hdl.create_signal("data", 8 * lane_bytes,
                                        rtl::Logic::L0));
  rtl::Signal sync(&hdl, hdl.create_signal("sync", 1, rtl::Logic::L0));
  rtl::Signal valid(&hdl, hdl.create_signal("valid", 1, rtl::Logic::L0));
  cosim::WideLaneDriver drv(hdl, "drv", clk, data, sync, valid, lane_bytes);
  cosim::WideLaneMonitor mon(hdl, "mon", clk, data, sync, valid, lane_bytes);

  std::vector<atm::Cell> sent;
  for (std::size_t i = 0; i < cells; ++i) {
    atm::Cell c;
    c.header.vpi = 1;
    c.header.vci = static_cast<std::uint16_t>(i & 0xFFFF);
    c.payload[0] = static_cast<std::uint8_t>(i);
    sent.push_back(c);
    drv.enqueue(c);
  }
  const auto cycles_needed =
      static_cast<std::int64_t>((drv.clocks_per_cell() * cells + 8));
  WallTimer timer;
  hdl.run_until(kClk * cycles_needed);
  const double wall = timer.seconds();

  bool lossless = mon.cells().size() == sent.size();
  for (std::size_t i = 0; lossless && i < sent.size(); ++i) {
    lossless = mon.cells()[i] == sent[i];
  }
  const auto& st = hdl.stats();
  return {lane_bytes,
          drv.clocks_per_cell(),
          static_cast<double>(cells) / wall,
          static_cast<double>(st.process_activations) /
              static_cast<double>(cells),
          static_cast<double>(st.value_changes) / static_cast<double>(cells),
          lossless};
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e4_abstraction_map");
  constexpr std::size_t kCells = 3000;

  std::printf("E5: abstraction interfaces (Fig. 4) — struct <-> bit-level\n");
  std::printf("one abstract cell event expands into a cycle-timed octet "
              "stream plus control signals\n");
  bench::rule('=');
  std::printf("%5s %10s %12s %14s %14s %9s\n", "lane", "clk/cell",
              "cells/s", "activ./cell", "changes/cell", "lossless");
  bench::rule();
  double activations_8bit = 0;
  for (std::size_t lane : {1u, 2u, 4u}) {
    const WidthResult r = run_width(lane, kCells);
    if (lane == 1) activations_8bit = r.hdl_activations_per_cell;
    report.begin_row("lane_" + std::to_string(r.lane_bytes) + "B");
    report.metric("clocks_per_cell",
                  static_cast<std::uint64_t>(r.clocks_per_cell));
    report.metric("cells_per_sec", r.cells_per_sec);
    report.metric("activations_per_cell", r.hdl_activations_per_cell);
    report.metric("value_changes_per_cell", r.hdl_value_changes_per_cell);
    report.metric("lossless", static_cast<std::uint64_t>(r.lossless));
    std::printf("%4zuB %10zu %12.0f %14.1f %14.1f %9s\n", r.lane_bytes,
                r.clocks_per_cell, r.cells_per_sec,
                r.hdl_activations_per_cell, r.hdl_value_changes_per_cell,
                r.lossless ? "yes" : "NO");
  }
  bench::rule();

  std::printf("\ntime-scale ratio (paper: ~1:100 between an OPNET cell event "
              "and VSS clock steps)\n");
  bench::rule('=');
  std::printf("  1 abstract cell event -> %zu HDL clock cycles on an 8-bit "
              "lane -> %.0f kernel activations\n",
              std::size_t{53}, activations_8bit);
  std::printf("  measured expansion ratio 1:%.0f (activations per abstract "
              "event)\n", activations_8bit);
  bench::rule();
  return 0;
}

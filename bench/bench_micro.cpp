// Micro-benchmarks (google-benchmark) for the kernel primitives every
// experiment builds on: event-list operations, delta cycles, HEC/CRC,
// GCRA, cell codecs and board pin packing.
#include <benchmark/benchmark.h>

#include "src/atm/aal5.hpp"
#include "src/atm/cell.hpp"
#include "src/atm/gcra.hpp"
#include "src/atm/hec.hpp"
#include "src/board/config.hpp"
#include "src/dsim/scheduler.hpp"
#include "src/hw/cell_bits.hpp"
#include "src/rtl/module.hpp"

using namespace castanet;

namespace {

void BM_SchedulerScheduleExecute(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(SimTime::from_ns(i % 97), [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleExecute);

void BM_SchedulerCancel(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    std::vector<EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(s.schedule_at(SimTime::from_ns(i), [] {}));
    }
    for (const EventHandle& h : handles) s.cancel(h);
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancel);

void BM_RtlClockCycle(benchmark::State& state) {
  rtl::Simulator sim;
  rtl::Signal clk(&sim, sim.create_signal("clk", 1, rtl::Logic::L0));
  rtl::Bus count(&sim, sim.create_signal("count", 16, rtl::Logic::L0));
  sim.add_process("counter", {clk.id()}, [&] {
    if (sim.rose(clk.id())) {
      count.write_uint((count.read_uint() + 1) & 0xFFFF);
    }
  });
  rtl::ClockGen gen(sim, clk, SimTime::from_ns(50));
  for (auto _ : state) {
    sim.run_until(sim.now() + SimTime::from_ns(50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtlClockCycle);

void BM_HecCompute(benchmark::State& state) {
  std::uint8_t hdr[4] = {0x12, 0x34, 0x56, 0x78};
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::compute_hec(hdr));
    hdr[0] = static_cast<std::uint8_t>(hdr[0] + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HecCompute);

void BM_HecCheckCorrect(benchmark::State& state) {
  atm::Cell c;
  c.header.vpi = 1;
  c.header.vci = 100;
  auto bytes = c.to_bytes();
  int bit = 0;
  for (auto _ : state) {
    std::uint8_t hdr[5] = {bytes[0], bytes[1], bytes[2], bytes[3], bytes[4]};
    hdr[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    benchmark::DoNotOptimize(atm::check_and_correct(hdr));
    bit = (bit + 1) % 40;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HecCheckCorrect);

void BM_Aal5Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> frame(1500, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::aal5_crc32(frame.data(), frame.size()));
  }
  state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_Aal5Crc32);

void BM_GcraConforms(benchmark::State& state) {
  atm::Gcra g(SimTime::from_us(10), SimTime::from_us(3));
  SimTime t;
  for (auto _ : state) {
    t += SimTime::from_us(10);
    benchmark::DoNotOptimize(g.conforms(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GcraConforms);

void BM_CellSerialize(benchmark::State& state) {
  atm::Cell c;
  c.header.vpi = 7;
  c.header.vci = 777;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.to_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellSerialize);

void BM_CellToBitsRoundTrip(benchmark::State& state) {
  atm::Cell c;
  c.header.vci = 42;
  for (auto _ : state) {
    const rtl::LogicVector v = hw::cell_to_bits(c);
    benchmark::DoNotOptimize(hw::bits_to_cell(v, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellToBitsRoundTrip);

void BM_LogicVectorResolve(benchmark::State& state) {
  const rtl::LogicVector a(424, rtl::Logic::Z);
  const rtl::LogicVector b(424, rtl::Logic::L1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogicVectorResolve);

void BM_BoardPackUnpack(benchmark::State& state) {
  const std::vector<board::LaneSlice> slices = {{0, 0, 8}, {1, 0, 8}};
  std::uint8_t lanes[board::kByteLanes] = {};
  std::uint64_t v = 0;
  for (auto _ : state) {
    board::pack_slices(slices, v, lanes);
    benchmark::DoNotOptimize(board::unpack_slices(slices, lanes));
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoardPackUnpack);

}  // namespace

BENCHMARK_MAIN();

// Experiment E2 — Fig. 1 end to end: functional verification of the ATM
// accounting unit against its algorithm reference model, with fault
// injection.
//
// For each injected RTL defect the co-verification flow runs the same
// reused stimulus through reference and DUT and reports how many mismatches
// the system-level comparison surfaced.  A correct flow shows zero
// mismatches for the clean design and nonzero for every defect.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/castanet/comparator.hpp"
#include "src/castanet/coverify.hpp"
#include "src/hw/accounting.hpp"
#include "src/hw/reference.hpp"
#include "src/traffic/mpeg.hpp"
#include "src/traffic/processes.hpp"
#include "src/traffic/trace.hpp"

using namespace castanet;

namespace {

const SimTime kClk = clock_period_hz(20'000'000);

traffic::CellTrace make_stimulus(std::size_t cells) {
  Rng rng(11);
  traffic::MpegParams mp;
  mp.link_cell_period = SimTime::from_us(4);
  std::vector<std::unique_ptr<traffic::CellSource>> inputs;
  inputs.push_back(
      std::make_unique<traffic::MpegSource>(atm::VcId{2, 200}, 1, mp,
                                            rng.fork()));
  inputs.push_back(std::make_unique<traffic::CbrSource>(
      atm::VcId{1, 100}, 2, SimTime::from_us(9)));
  traffic::MergedSource merged(std::move(inputs));
  traffic::CellTrace t;
  Rng clp(3);
  for (std::size_t i = 0; i < cells; ++i) {
    traffic::CellArrival a = merged.next();
    if (a.cell.header.vci == 200 && clp.bernoulli(0.3)) {
      a.cell.header.clp = true;
    }
    t.append(a);
  }
  return t;
}

struct Verdict {
  std::size_t mismatches;
  std::uint64_t cells;
  std::uint64_t messages;
};

Verdict run_flow(const traffic::CellTrace& trace, hw::AccountingFault fault) {
  hw::AccountingRef ref(16);
  ref.set_tariff(0, hw::Tariff{400, 100});
  ref.set_tariff(1, hw::Tariff{2, 0});
  ref.bind_connection({2, 200}, 0, 0);
  ref.bind_connection({1, 100}, 1, 1);
  for (const auto& a : trace.arrivals()) ref.observe(a.cell);

  netsim::Simulation net;
  netsim::Node& env = net.add_node("env");
  rtl::Simulator hdl;
  rtl::Signal clk(&hdl, hdl.create_signal("clk", 1, rtl::Logic::L0));
  rtl::Signal rst(&hdl, hdl.create_signal("rst", 1, rtl::Logic::L0));
  rtl::ClockGen clock(hdl, clk, kClk);
  hw::CellPort snoop = hw::make_cell_port(hdl, "snoop");
  hw::CellPortDriver driver(hdl, "drv", clk, snoop);
  hw::AccountingUnit acct(hdl, "acct", clk, rst, snoop, 16);
  acct.set_fault(fault);
  acct.set_tariff(0, hw::Tariff{400, 100});
  acct.set_tariff(1, hw::Tariff{2, 0});
  acct.bind_connection({2, 200}, 0, 0);
  acct.bind_connection({1, 100}, 1, 1);

  cosim::CoVerification::Params params;
  params.sync.policy = cosim::SyncPolicy::kGlobalOrder;
  params.sync.clock_period = kClk;
  cosim::CoVerification cov(net, hdl, env, 1, params);
  cov.set_response_handler([](const cosim::TimedMessage&) {});
  cov.entity().register_input(0, 53, [&](const cosim::TimedMessage& m) {
    driver.enqueue(*m.cell);
  });
  auto& gen = env.add_process<traffic::GeneratorProcess>(
      "gen", std::make_unique<traffic::TraceSource>(trace), trace.size());
  net.connect(gen, 0, cov.gateway(), 0);

  cov.run_until(trace.arrivals().back().time + SimTime::from_ms(1));

  cosim::ResponseComparator cmp;
  for (std::uint64_t c = 0; c < 2; ++c) {
    cmp.compare_value(c * 10 + 0, ref.count(c), acct.count(c), "count");
    cmp.compare_value(c * 10 + 1, ref.clp1_count(c), acct.clp1_count(c),
                      "clp1");
    cmp.compare_value(c * 10 + 2, ref.charge(c), acct.charge(c), "charge");
  }
  cmp.finish();
  return {cmp.mismatches().size(), acct.cells_observed(),
          cov.stats().messages_to_hdl};
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e2_coverify_flow");
  const traffic::CellTrace trace = make_stimulus(600);
  struct Case {
    const char* label;
    hw::AccountingFault fault;
    bool expect_detect;
  };
  const Case cases[] = {
      {"clean RTL", hw::AccountingFault::kNone, false},
      {"fault: CLP1 cells not counted", hw::AccountingFault::kIgnoreClp1,
       true},
      {"fault: 16-bit charge wraparound",
       hw::AccountingFault::kCharge16BitWrap, true},
  };

  std::printf("E2: co-verification flow with fault injection (Fig. 1)\n");
  std::printf("stimulus: %zu cells (MPEG video + CBR trunk, 30%% CLP-tagged "
              "video)\n", trace.size());
  bench::rule('=');
  std::printf("%-36s %8s %12s %10s\n", "device under test", "cells",
              "mismatches", "verdict");
  bench::rule();
  bool all_ok = true;
  for (const Case& c : cases) {
    const Verdict v = run_flow(trace, c.fault);
    const bool detected = v.mismatches > 0;
    const bool ok = detected == c.expect_detect;
    all_ok = all_ok && ok;
    report.begin_row(c.label);
    report.metric("cells", static_cast<std::uint64_t>(v.cells));
    report.metric("mismatches", static_cast<std::uint64_t>(v.mismatches));
    report.metric("fault_detected", static_cast<std::uint64_t>(detected));
    report.metric("verdict_ok", static_cast<std::uint64_t>(ok));
    std::printf("%-36s %8llu %12zu %10s\n", c.label,
                static_cast<unsigned long long>(v.cells), v.mismatches,
                ok ? (detected ? "CAUGHT" : "PASS") : "UNEXPECTED");
  }
  bench::rule();
  std::printf("flow verdict: %s\n", all_ok ? "all faults detected, clean "
                                             "design passes"
                                           : "FLOW BROKEN");
  return all_ok ? 0 : 1;
}

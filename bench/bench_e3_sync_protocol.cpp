// Experiment E3/E4 — §3.1 and Fig. 3: the conservative synchronization
// protocol.
//
// Table 1: for each window policy, a CBR message stream (spacing = one cell
// time, honouring the δ assumption) is synchronized; we report windows
// granted, mean window width, messages per grant, causality errors (always
// 0 — the protocol's guarantee) and wall throughput of the protocol engine.
//
// Table 2 (Fig. 3): the event-scheduling discipline — how many messages
// would have landed in the HDL simulator's past if the receiving simulator
// had free-run ahead (the causality errors a naive coupling commits), vs
// the zero the windows permit.
//
// Table 3 (ablation): per-type δ_j windows vs one global δ = min_j δ_j when
// message types have different processing delays.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/castanet/sync.hpp"
#include "src/core/rng.hpp"

using namespace castanet;
using namespace castanet::cosim;
using bench::WallTimer;

namespace {

const SimTime kClk = SimTime::from_ns(50);
constexpr std::uint64_t kCellCycles = 53;

struct Load {
  std::vector<TimedMessage> messages;  // nondecreasing time stamps
};

Load cbr_load(std::size_t n, std::size_t types) {
  Load load;
  std::vector<SimTime> next(types);
  for (std::size_t t = 0; t < types; ++t) {
    next[t] = kClk * static_cast<std::int64_t>(t * 17 + 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Round-robin across types keeps global order while each queue's
    // spacing stays >= delta.
    const std::size_t t = i % types;
    load.messages.push_back(
        make_cell_message(static_cast<MessageType>(t), next[t], atm::Cell{}));
    next[t] += kClk * static_cast<std::int64_t>(kCellCycles * types);
  }
  std::sort(load.messages.begin(), load.messages.end(),
            [](const TimedMessage& a, const TimedMessage& b) {
              return a.timestamp < b.timestamp;
            });
  return load;
}

struct PolicyResult {
  std::uint64_t windows;
  double mean_window_us;
  std::uint64_t delivered;
  std::uint64_t causality;
  double wall_ms;
};

PolicyResult run_policy(SyncPolicy policy, const Load& load,
                        std::size_t types, std::uint64_t delta) {
  ConservativeSync::Params p;
  p.policy = policy;
  p.clock_period = kClk;
  ConservativeSync sync(p);
  for (std::size_t t = 0; t < types; ++t) {
    sync.declare_input(static_cast<MessageType>(t), delta);
  }
  WallTimer timer;
  std::uint64_t delivered = 0;
  SimTime prev_granted = SimTime::zero();
  double window_sum_us = 0.0;
  std::uint64_t grants = 0;
  for (const TimedMessage& m : load.messages) {
    sync.push(m);
    const SimTime w = sync.window();
    if (w > prev_granted) {
      window_sum_us += (w - prev_granted).seconds() * 1e6;
      prev_granted = w;
      ++grants;
    }
    delivered += sync.take_deliverable(w).size();
  }
  // Drain (lockstep needs many grants).
  const SimTime end =
      load.messages.back().timestamp + SimTime::from_ms(1);
  sync.push(make_time_update(end));
  while (delivered < load.messages.size()) {
    const SimTime w = sync.window();
    if (w > prev_granted) {
      window_sum_us += (w - prev_granted).seconds() * 1e6;
      prev_granted = w;
      ++grants;
    }
    const auto batch = sync.take_deliverable(w);
    delivered += batch.size();
    if (batch.empty() && w >= end) break;
  }
  return {grants, grants ? window_sum_us / static_cast<double>(grants) : 0.0,
          delivered, sync.causality_errors(), timer.seconds() * 1e3};
}

const char* policy_name(SyncPolicy p) {
  switch (p) {
    case SyncPolicy::kTimeWindow: return "time-window (paper §3.1)";
    case SyncPolicy::kGlobalOrder: return "global-order";
    case SyncPolicy::kLockstep: return "lockstep baseline";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "e3_sync_protocol");
  bench::TelemetryCli telemetry_cli(argc, argv);
  constexpr std::size_t kMessages = 20000;
  constexpr std::size_t kTypes = 4;

  std::printf("E3: conservative synchronization (§3.1)\n");
  std::printf("workload: %zu time-stamped cell messages on %zu input queues,"
              " spacing = 1 cell time\n", kMessages, kTypes);
  bench::rule('=');
  std::printf("%-28s %9s %11s %10s %10s %9s\n", "policy", "windows",
              "avg win us", "delivered", "causality", "wall ms");
  bench::rule();
  const Load load = cbr_load(kMessages, kTypes);
  for (SyncPolicy p : {SyncPolicy::kTimeWindow, SyncPolicy::kGlobalOrder,
                       SyncPolicy::kLockstep}) {
    const PolicyResult r = run_policy(p, load, kTypes, kCellCycles);
    report.begin_row(policy_name(p));
    report.metric("windows", r.windows);
    report.metric("avg_window_us", r.mean_window_us);
    report.metric("delivered", r.delivered);
    report.metric("causality_errors", r.causality);
    report.metric("wall_ms", r.wall_ms);
    std::printf("%-28s %9llu %11.3f %10llu %10llu %9.2f\n", policy_name(p),
                static_cast<unsigned long long>(r.windows), r.mean_window_us,
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.causality), r.wall_ms);
  }
  bench::rule();

  // --- Fig. 3: causality errors a free-running coupling would commit -------
  std::printf("\nE4 (Fig. 3): causality errors avoided by the protocol\n");
  bench::rule('=');
  std::printf("%-44s %12s\n", "coupling discipline", "violations");
  bench::rule();
  // Naive coupling: the HDL side free-runs one full cell time ahead after
  // every message; count messages that then arrive in its past.
  {
    std::uint64_t naive_violations = 0;
    SimTime hdl_time = SimTime::zero();
    for (const TimedMessage& m : load.messages) {
      if (m.timestamp < hdl_time) ++naive_violations;
      hdl_time = m.timestamp + kClk * static_cast<std::int64_t>(kCellCycles);
    }
    std::printf("%-44s %12llu\n",
                "free-running receiver (no protocol)",
                static_cast<unsigned long long>(naive_violations));
  }
  {
    const PolicyResult r =
        run_policy(SyncPolicy::kTimeWindow, load, kTypes, kCellCycles);
    std::printf("%-44s %12llu\n", "CASTANET time-window protocol",
                static_cast<unsigned long long>(r.causality));
  }
  bench::rule();

  // --- ablation: lookahead (delta) sweep ------------------------------------
  // The window the §3.1 rule grants beyond the originator's clock grows
  // with min_j delta_j — the classic lookahead effect of conservative
  // synchronization.  Message spacing tracks delta so the soundness
  // assumption holds at every point.
  std::printf("\nE3 ablation: processing-delay (lookahead) sweep, 1 queue\n");
  bench::rule('=');
  std::printf("%10s %9s %11s %14s\n", "delta clk", "windows", "avg win us",
              "msgs/window");
  bench::rule();
  for (std::uint64_t delta : {1u, 13u, 53u, 106u, 212u, 424u}) {
    Load l;
    SimTime t = kClk;
    for (std::size_t i = 0; i < kMessages; ++i) {
      l.messages.push_back(make_cell_message(0, t, atm::Cell{}));
      t += kClk * static_cast<std::int64_t>(delta);
    }
    const PolicyResult r = run_policy(SyncPolicy::kTimeWindow, l, 1, delta);
    std::printf("%10llu %9llu %11.3f %14.2f\n",
                static_cast<unsigned long long>(delta),
                static_cast<unsigned long long>(r.windows), r.mean_window_us,
                static_cast<double>(r.delivered) /
                    static_cast<double>(r.windows));
  }
  bench::rule();
  return 0;
}

// castanet_report — consolidates farm telemetry artifacts into one report.
//
// A farm run leaves per-shard metrics JSON snapshots and Chrome traces on
// disk (castanet_farm --metrics/--trace retags one path per session).  This
// tool folds them back together: counters summed, histograms merged exactly,
// a per-flow latency quantile table, and the top-N spans by total duration
// across every trace.
//
//   castanet_report shard1.metrics.json shard2.metrics.json
//   castanet_report m/*.json --trace t/*.json --out run_report.json
//   castanet_report --validate report.json        # metrics-schema gate
//
//   --trace FILE...   Chrome trace files to aggregate into the span table
//   --top N           span table size (default 10)
//   --out FILE        write the report JSON here (table always on stderr)
//   --validate FILE   schema check only: the file must round-trip through
//                     the snapshot codec unchanged; exit 0/1
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/castanet/report.hpp"
#include "src/core/error.hpp"

namespace castanet {
namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " METRICS.json... [--trace TRACE.json...] [--top N]\n"
               "       [--out FILE] | --validate FILE\n";
  return 2;
}

int validate_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "castanet_report: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream text;
  text << f.rdbuf();
  const std::string err = cosim::report::validate_metrics_json(text.str());
  if (!err.empty()) {
    std::cerr << "castanet_report: " << path << ": " << err << "\n";
    return 1;
  }
  std::cerr << "castanet_report: " << path << ": metrics schema ok\n";
  return 0;
}

int report_main(int argc, char** argv) {
  std::vector<std::string> metrics_paths;
  std::vector<std::string> trace_paths;
  std::string out_path;
  std::size_t top_n = 10;
  bool in_traces = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate" && i + 1 < argc) {
      return validate_file(argv[++i]);
    } else if (arg == "--trace") {
      in_traces = true;
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::atoi(argv[++i]));
      in_traces = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
      in_traces = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (in_traces) {
      trace_paths.push_back(arg);
    } else {
      metrics_paths.push_back(arg);
    }
  }
  if (metrics_paths.empty()) return usage(argv[0]);

  const cosim::report::RunReport rep =
      cosim::report::consolidate(metrics_paths, trace_paths, top_n);
  std::cerr << rep.to_table();
  const std::string json = rep.to_json().dump(2);
  if (out_path.empty()) {
    std::cout << json << "\n";
  } else {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "castanet_report: cannot write " << out_path << "\n";
      return 1;
    }
    f << json << "\n";
    std::cerr << "castanet_report: written to " << out_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace castanet

int main(int argc, char** argv) {
  try {
    return castanet::report_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "castanet_report: " << e.what() << "\n";
    return 1;
  }
}

// castanet_farm — multi-process verification session farm.
//
// Loads a tsload-style experiment file (scenario × seed × transport matrix),
// shards the resulting sessions across forked worker processes, and writes
// an aggregated JSON report.  Every session is deterministic in its spec, so
// `--serial` produces byte-identical per-session results to any `-j N` run —
// which is exactly what `--check` asserts.
//
//   castanet_farm --experiment experiments/cross_run.json -j8
//   castanet_farm --experiment experiments/cross_run.json -j4 --check
//   castanet_farm --experiment experiments/farm_smoke.json --serial --out r.json
//
// Scenarios:
//   accounting  three-backend accounting rig (RTL + reference + board)
//   switch      4-port ATM switch rig (RTL + reference)
//   board       accounting rig with the board replaying stimulus in real
//               time (board_us_per_test_cycle) — the farm overlaps those
//               hardware waits, which is where the wall-clock speedup lives
//
// Session parameters (experiment defaults / matrix / sessions entries):
//   seed                   varies the stimulus (CLP tagging pattern)
//   transport              "in-process" | "socket"
//   cells                  stimulus length (default 40)
//   pipelined              run backends on worker threads (default false)
//   ipc_overhead_ns        modeled per-message IPC cost (default 0)
//   board_us_per_test_cycle  real-time wait per board test cycle (default 0;
//                            "board" scenario defaults to 200)
//   trace_out              telemetry trace path; automatically tagged with
//                          the session id + worker so runs never collide
//   metrics_out            per-session metrics JSON path, tagged like
//                          trace_out; implies telemetry capture
//   metrics                bool: capture a telemetry snapshot per session
//                          and ship it to the parent for the merged report
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "examples/rigs/accounting_rig.hpp"
#include "examples/rigs/switch_rig.hpp"
#include "src/castanet/farm.hpp"
#include "src/castanet/report.hpp"
#include "src/castanet/wire.hpp"
#include "src/core/error.hpp"
#include "src/core/telemetry.hpp"
#include "src/traffic/trace.hpp"

namespace castanet {
namespace {

using cosim::farm::SessionResult;
using cosim::farm::SessionSpec;

/// Seed-dependent stimulus: every (2 + seed % 5)-th cell gets its CLP bit
/// tagged, so different seeds produce different charges and digests while
/// staying bit-reproducible.
traffic::CellTrace mutate_trace(const traffic::CellTrace& base,
                                std::uint64_t seed) {
  traffic::CellTrace out;
  const std::size_t period = 2 + static_cast<std::size_t>(seed % 5);
  std::size_t i = 0;
  for (traffic::CellArrival a : base.arrivals()) {
    if (i++ % period == 0) a.cell.header.clp = true;
    out.append(a);
  }
  return out;
}

cosim::VerificationSession::Params session_params(const SessionSpec& spec) {
  cosim::VerificationSession::Params sp;
  sp.transport = spec.transport;
  sp.ipc_overhead_per_message =
      SimTime::from_ns(spec.params.int_or("ipc_overhead_ns", 0));
  sp.pipelined = spec.params.bool_or("pipelined", false);
  return sp;
}

/// Arms the telemetry Hub for one session when the spec asks for traces
/// (`trace_out`), per-session metrics files (`metrics_out`) or in-memory
/// snapshot capture (`metrics: true`).  The farm already tagged both output
/// paths with session id + worker, so concurrent shards never collide.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(const SessionSpec& spec) {
    metrics_out_ = spec.params.string_or("metrics_out", "");
    trace_out_ = spec.params.string_or("trace_out", "");
    active_ = spec.params.bool_or("metrics", false) || !metrics_out_.empty() ||
              !trace_out_.empty();
    if (!active_) return;
    telemetry::Hub::instance().enable();
    if (!trace_out_.empty()) {
      telemetry::Hub::instance().stream_trace_to(trace_out_);
    }
  }

  /// Captures the final Hub snapshot into the result (shipped to the farm
  /// parent over the socketpair) and the metrics_out file.  Call once, after
  /// the scenario finished and published its stats.
  void capture(SessionResult& r) {
    if (!active_) return;
    r.metrics = telemetry::Hub::instance().snapshot();
    r.has_metrics = true;
    if (!metrics_out_.empty()) {
      std::ofstream f(metrics_out_);
      if (f) f << r.metrics.to_json();
    }
  }

  ~ScopedTelemetry() {
    if (active_) {
      telemetry::Hub::instance().stop_trace_stream();
      telemetry::Hub::instance().disable();
    }
  }

 private:
  bool active_ = false;
  std::string metrics_out_;
  std::string trace_out_;
};

void digest_comparator(cosim::wire::Writer& w,
                       const cosim::SessionComparator& cmp) {
  w.u64(cmp.responses_compared());
  w.u64(cmp.responses_matched());
  w.u64(cmp.divergences().size());
  for (const cosim::Divergence& d : cmp.divergences()) {
    w.u64(d.backend);
    w.u64(d.stream);
    w.u64(d.index);
    w.i64(d.primary_time.ps());
    w.i64(d.backend_time.ps());
    w.str(d.detail);
  }
}

SessionResult run_accounting(const SessionSpec& spec) {
  ScopedTelemetry telemetry_guard(spec);
  rigs::AccountingRig::Params rp;
  rp.session = session_params(spec);
  rp.board_real_time_per_test_cycle = std::chrono::microseconds(
      spec.params.int_or("board_us_per_test_cycle",
                         spec.scenario == "board" ? 200 : 0));
  rigs::AccountingRig rig(rp);
  const std::size_t cells =
      static_cast<std::size_t>(spec.params.int_or("cells", 40));
  const traffic::CellTrace trace =
      mutate_trace(rigs::AccountingRig::record_trace(cells), spec.seed);
  rig.drive(trace);
  cosim::farm::worker_heartbeat(0.0);
  rig.run(trace.arrivals().back().time + SimTime::from_ms(1));

  const auto& cmp = rig.session->comparator();
  const auto stats = rig.session->stats();
  SessionResult r;
  r.ok = cmp.clean();
  r.responses = stats.responses;
  r.divergences = cmp.divergences().size();
  cosim::wire::Writer w;
  w.u64(rig.ref.count(0));
  w.u64(rig.ref.clp1_count(0));
  w.u64(rig.ref.charge(0));
  w.u64(rig.acct.count(0));
  w.u64(rig.acct.clp1_count(0));
  w.u64(rig.acct.charge(0));
  digest_comparator(w, cmp);
  r.digest = cosim::wire::fnv1a(w.data().data(), w.data().size());
  r.detail = "count0=" + std::to_string(rig.ref.count(0)) +
             " clp1_0=" + std::to_string(rig.ref.clp1_count(0)) +
             " charge0=" + std::to_string(rig.ref.charge(0));
  if (!r.ok) r.error = cmp.report();
  cosim::farm::worker_heartbeat(static_cast<double>(stats.responses));
  telemetry_guard.capture(r);
  return r;
}

SessionResult run_switch(const SessionSpec& spec) {
  ScopedTelemetry telemetry_guard(spec);
  rigs::SwitchRig::Params rp;
  rp.session = session_params(spec);
  rigs::SwitchRig rig(rp);
  const std::size_t cells =
      static_cast<std::size_t>(spec.params.int_or("cells", 16));
  std::vector<traffic::CellTrace> traces =
      rigs::SwitchRig::record_traces(cells);
  for (traffic::CellTrace& t : traces) t = mutate_trace(t, spec.seed);
  rig.drive(traces);
  cosim::farm::worker_heartbeat(0.0);
  rig.run(rigs::SwitchRig::horizon(traces) + SimTime::from_ms(2));

  const auto& cmp = rig.session.comparator();
  const auto stats = rig.session.stats();
  SessionResult r;
  r.ok = cmp.clean();
  r.responses = stats.responses;
  r.divergences = cmp.divergences().size();
  cosim::wire::Writer w;
  w.u64(stats.messages_to_hdl);
  w.u64(stats.responses);
  digest_comparator(w, cmp);
  r.digest = cosim::wire::fnv1a(w.data().data(), w.data().size());
  r.detail = "responses=" + std::to_string(stats.responses) +
             " matched=" + std::to_string(cmp.responses_matched());
  if (!r.ok) r.error = cmp.report();
  cosim::farm::worker_heartbeat(static_cast<double>(stats.responses));
  telemetry_guard.capture(r);
  return r;
}

SessionResult run_session(const SessionSpec& spec) {
  if (spec.scenario == "accounting" || spec.scenario == "board") {
    return run_accounting(spec);
  }
  if (spec.scenario == "switch") return run_switch(spec);
  throw ConfigError("castanet_farm: unknown scenario '" + spec.scenario +
                    "' (have: accounting, switch, board)");
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --experiment FILE [-j N] [--serial] [--check] [--out FILE]\n"
               "  --experiment FILE  tsload-style experiment json (required)\n"
               "  -j N               worker processes (default 1)\n"
               "  --serial           run inline in this process (baseline)\n"
               "  --check            run serial AND farmed, assert identical\n"
               "                     per-session results and merged counters\n"
               "  --out FILE         write the JSON report here (default "
               "stdout)\n"
               "  --metrics FILE     per-session metrics JSON (tagged with\n"
               "                     session id + worker); enables telemetry\n"
               "  --trace FILE       per-session Chrome trace (tagged too)\n"
               "  --report [FILE]    consolidated run report: table on\n"
               "                     stderr, JSON to FILE when given;\n"
               "                     enables telemetry\n";
  return 2;
}

bool results_identical(const std::vector<SessionResult>& a,
                       const std::vector<SessionResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].ok != b[i].ok ||
        a[i].error != b[i].error || a[i].responses != b[i].responses ||
        a[i].divergences != b[i].divergences ||
        a[i].digest != b[i].digest || a[i].detail != b[i].detail) {
      return false;
    }
  }
  return true;
}

/// Deterministic subset of the merged snapshot: counters and histograms are
/// driven purely by simulated time + stimulus, so a farmed merge must equal
/// the serial merge exactly.  Wall-clock timings legitimately differ.
bool merged_counters_identical(const telemetry::MetricsSnapshot& farm,
                               const telemetry::MetricsSnapshot& serial,
                               std::string& why) {
  using Kind = telemetry::MetricRow::Kind;
  for (const telemetry::MetricRow& s : serial.rows) {
    if (s.kind != Kind::kCounter && s.kind != Kind::kHistogram) continue;
    const telemetry::MetricRow* f = farm.find(s.name);
    if (f == nullptr || f->kind != s.kind) {
      why = "row \"" + s.name + "\" missing from the farmed merge";
      return false;
    }
    if (f->count != s.count) {
      why = "row \"" + s.name + "\": farm count " + std::to_string(f->count) +
            " != serial " + std::to_string(s.count);
      return false;
    }
    if (s.kind == Kind::kHistogram && !f->hist.identical(s.hist)) {
      why = "histogram \"" + s.name + "\" differs between farm and serial";
      return false;
    }
  }
  for (const telemetry::MetricRow& f : farm.rows) {
    if (f.kind != Kind::kCounter && f.kind != Kind::kHistogram) continue;
    if (serial.find(f.name) == nullptr) {
      why = "farmed merge has extra row \"" + f.name + "\"";
      return false;
    }
  }
  return true;
}

int farm_main(int argc, char** argv) {
  std::string experiment;
  std::string out_path;
  std::string metrics_path;
  std::string trace_path;
  std::string report_path;
  int jobs = 1;
  bool serial = false;
  bool check = false;
  bool want_report = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--experiment" && i + 1 < argc) {
      experiment = argv[++i];
    } else if (arg == "-j" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      jobs = std::atoi(arg.c_str() + 2);
    } else if (arg == "--serial") {
      serial = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--report") {
      want_report = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') report_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (experiment.empty() || jobs < 1) return usage(argv[0]);

  std::vector<SessionSpec> specs =
      cosim::farm::load_experiment_file(experiment);
  // CLI telemetry flags apply to every session; the farm retags the output
  // paths per session + worker so shards never collide.
  for (SessionSpec& spec : specs) {
    if (!metrics_path.empty()) spec.params.set("metrics_out", metrics_path);
    if (!trace_path.empty()) spec.params.set("trace_out", trace_path);
    if (want_report || check) spec.params.set("metrics", true);
  }
  std::cerr << "castanet_farm: " << specs.size() << " sessions from "
            << experiment << "\n";

  cosim::farm::FarmReport report;
  if (serial && !check) {
    report = cosim::farm::run_serial(specs, run_session);
  } else {
    report = cosim::farm::run_farm(specs, run_session, {jobs});
  }
  if (check) {
    const cosim::farm::FarmReport baseline =
        cosim::farm::run_serial(specs, run_session);
    if (!results_identical(report.results, baseline.results)) {
      std::cerr << "castanet_farm: FARM/SERIAL MISMATCH\n"
                << "farm:   " << report.to_json().dump(2) << "\n"
                << "serial: " << baseline.to_json().dump(2) << "\n";
      return 1;
    }
    std::string why;
    if (!merged_counters_identical(report.metrics, baseline.metrics, why)) {
      std::cerr << "castanet_farm: FARM/SERIAL MERGED METRICS MISMATCH: "
                << why << "\n";
      return 1;
    }
    std::cerr << "castanet_farm: farmed results byte-identical to serial ("
              << report.results.size() << " sessions, "
              << report.metrics.rows.size() << " merged metric rows, farm "
              << report.wall_seconds << "s vs serial "
              << baseline.wall_seconds << "s)\n";
  }

  if (want_report) {
    cosim::report::RunReport run_report;
    for (const SessionResult& r : report.results) {
      if (!r.has_metrics) continue;
      run_report.shards.push_back(
          cosim::report::ShardMetrics{r.id, r.metrics});
    }
    run_report.merged = report.metrics;
    std::cerr << run_report.to_table();
    if (!report_path.empty()) {
      std::ofstream f(report_path);
      if (!f) {
        std::cerr << "castanet_farm: cannot write " << report_path << "\n";
        return 1;
      }
      f << run_report.to_json().dump(2) << "\n";
      std::cerr << "castanet_farm: run report written to " << report_path
                << "\n";
    }
  }

  const std::string json = report.to_json().dump(2);
  if (out_path.empty()) {
    std::cout << json << "\n";
  } else {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "castanet_farm: cannot write " << out_path << "\n";
      return 1;
    }
    f << json << "\n";
    std::cerr << "castanet_farm: report written to " << out_path << "\n";
  }
  for (const SessionResult& r : report.results) {
    std::cerr << "  [" << (r.ok ? "PASS" : "FAIL") << "] " << r.id;
    if (!r.error.empty()) std::cerr << " — " << r.error;
    std::cerr << "\n";
  }
  return report.all_ok() ? 0 : 1;
}

}  // namespace
}  // namespace castanet

int main(int argc, char** argv) {
  try {
    return castanet::farm_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "castanet_farm: " << e.what() << "\n";
    return 1;
  }
}

// castanet_lint — static analysis CLI over the shipped example designs.
//
// Elaborates the example rigs (without driving any stimulus), runs the
// full analyzer stack (netlist + board + sync, DESIGN.md §10) on each and
// reports the findings.
//
//   castanet_lint [--design switch|board|all] [--json] [--strict]
//                 [--depth elaboration|probed] [--suppress RULE@SIGNAL]...
//
//   --design   which rig(s) to analyze                      (default: all)
//   --json     machine-readable report instead of text
//   --strict   abort on the first design with error-severity findings,
//              via Report::throw_if (exit 2) — the CI wiring uses the
//              default mode and the exit code instead
//   --depth    elaboration = no kernel advances; probed = settle each RTL
//              backend a few clock periods for the full rule set
//              (default: probed)
//   --suppress withhold findings of RULE on the named signal (repeatable;
//              SIGNAL may end in '*' for a prefix glob, RULE may be '*';
//              a bare SIGNAL with no '@' suppresses every rule on it).
//              Suppressed findings are counted in the report summary.
//
// Exit code: 0 when no design produced an error-severity diagnostic,
// 1 otherwise, 2 on usage errors or a --strict abort.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "examples/rigs/accounting_rig.hpp"
#include "examples/rigs/switch_rig.hpp"
#include "src/lint/lint.hpp"

using namespace castanet;

namespace {

struct DesignReport {
  std::string name;
  lint::Report report;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--design switch|board|all] [--json] [--strict]\n"
               "       [--depth elaboration|probed] [--suppress "
               "RULE@SIGNAL]...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string design = "all";
  bool json = false;
  lint::Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--design") == 0 && i + 1 < argc) {
      design = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      opts.strict = true;
    } else if (std::strcmp(argv[i], "--suppress") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t at = spec.find('@');
      lint::RuleSuppression s;
      if (at == std::string::npos) {
        s.rule = "*";
        s.signal = spec;
      } else {
        s.rule = spec.substr(0, at);
        s.signal = spec.substr(at + 1);
      }
      if (s.signal.empty()) return usage(argv[0]);
      opts.suppressions.push_back(std::move(s));
    } else if (std::strcmp(argv[i], "--depth") == 0 && i + 1 < argc) {
      const std::string d = argv[++i];
      if (d == "elaboration") {
        opts.depth = lint::NetlistDepth::kElaboration;
      } else if (d == "probed") {
        opts.depth = lint::NetlistDepth::kProbed;
      } else {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (design != "switch" && design != "board" && design != "all") {
    return usage(argv[0]);
  }

  std::vector<DesignReport> reports;
  try {
    if (design == "switch" || design == "all") {
      rigs::SwitchRig rig;
      reports.push_back({"switch", lint::analyze_session(rig.session, opts)});
    }
    if (design == "board" || design == "all") {
      rigs::AccountingRig rig;
      reports.push_back({"board", lint::analyze_session(*rig.session, opts)});
    }
  } catch (const lint::LintError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::size_t errors = 0;
  if (json) {
    std::printf("{\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      // Report::to_json is a complete object; indent it under the design key.
      std::string body = reports[i].report.to_json();
      if (!body.empty() && body.back() == '\n') body.pop_back();
      std::printf("\"%s\": %s%s\n", reports[i].name.c_str(), body.c_str(),
                  i + 1 < reports.size() ? "," : "");
    }
    std::printf("}\n");
  } else {
    for (const DesignReport& r : reports) {
      std::printf("== design: %s ==\n%s", r.name.c_str(),
                  r.report.to_text().c_str());
    }
  }
  for (const DesignReport& r : reports) errors += r.report.errors();
  return errors == 0 ? 0 : 1;
}

// castanet_lint — static analysis CLI over the shipped example designs.
//
// Elaborates the example rigs (without driving any stimulus), runs the
// full analyzer stack (netlist + dataflow + board + sync, DESIGN.md
// §10/§13) on each and reports the findings.
//
//   castanet_lint [--design switch|board|all] [--json] [--strict]
//                 [--depth elaboration|probed] [--dataflow]
//                 [--suppress RULE@SIGNAL]... [--baseline FILE]
//                 [--metrics FILE] [--fix-dry-run]
//   castanet_lint --validate FILE
//
//   --design      which rig(s) to analyze                   (default: all)
//   --json        machine-readable report instead of text
//   --strict      abort on the first design with error-severity findings,
//                 via Report::throw_if (exit 2) — the CI wiring uses the
//                 default mode and the exit code instead
//   --depth       elaboration = no kernel advances; probed = settle each
//                 RTL backend a few clock periods for the full rule set
//                 (default: probed)
//   --dataflow    also run the DF-* abstract-interpretation rules
//                 (src/lint/dataflow.hpp) on every RTL backend
//   --suppress    withhold findings of RULE on the named signal
//                 (repeatable; SIGNAL may end in '*' for a prefix glob,
//                 RULE may be '*' or a prefix glob like 'DF-*'; a bare
//                 SIGNAL with no '@' suppresses every rule on it).
//                 Suppressed findings are counted in the report summary,
//                 and a rule suppressed on every signal skips its
//                 analysis entirely.
//   --baseline    JSON file of known findings ({"switch": [{"rule": ...,
//                 "location": ...}], "board": [...]}); exit 1 when any
//                 diagnostic is NOT in the baseline (CI ratchet)
//   --metrics     enable the telemetry hub and write its snapshot
//                 (including the lint.dataflow.* counters) to FILE
//   --fix-dry-run for board configs with pin conflicts, print the patched
//                 configuration the proposed remap produces
//   --validate    standalone mode: schema-check a --json report file via
//                 structural round-trip (exit 0 valid / 2 invalid)
//
// Exit code: 0 when no design produced an error-severity diagnostic and
// the baseline (if given) covers every finding, 1 otherwise, 2 on usage
// errors, --strict aborts or --validate failures.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "examples/rigs/accounting_rig.hpp"
#include "examples/rigs/switch_rig.hpp"
#include "src/castanet/backend.hpp"
#include "src/core/json.hpp"
#include "src/core/telemetry.hpp"
#include "src/lint/lint.hpp"

using namespace castanet;

namespace {

struct DesignReport {
  std::string name;
  lint::Report report;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--design switch|board|all] [--json] [--strict]\n"
               "       [--depth elaboration|probed] [--dataflow]\n"
               "       [--suppress RULE@SIGNAL]... [--baseline FILE]\n"
               "       [--metrics FILE] [--fix-dry-run]\n"
               "       %s --validate FILE\n",
               argv0, argv0);
  return 2;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Checks every diagnostic against the baseline's (rule, location) pairs;
/// returns the number of findings the baseline does not cover.
std::size_t check_baseline(const json::Value& baseline,
                           const std::vector<DesignReport>& reports) {
  std::size_t missing = 0;
  for (const DesignReport& r : reports) {
    const json::Value* allowed = baseline.find(r.name);
    for (const lint::Diagnostic& d : r.report.diagnostics()) {
      bool covered = false;
      if (allowed != nullptr && allowed->is_array()) {
        for (const json::Value& e : allowed->as_array()) {
          if (e.string_or("rule", "") == d.rule &&
              e.string_or("location", "") == d.location) {
            covered = true;
            break;
          }
        }
      }
      if (!covered) {
        ++missing;
        std::fprintf(stderr,
                     "castanet_lint: finding not in baseline: [%s] %s %s: "
                     "%s\n",
                     r.name.c_str(), d.rule.c_str(), d.location.c_str(),
                     d.message.c_str());
      }
    }
  }
  return missing;
}

}  // namespace

int main(int argc, char** argv) {
  std::string design = "all";
  std::string baseline_path;
  std::string metrics_path;
  std::string validate_path;
  bool json = false;
  bool fix_dry_run = false;
  lint::Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--design") == 0 && i + 1 < argc) {
      design = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      opts.strict = true;
    } else if (std::strcmp(argv[i], "--dataflow") == 0) {
      opts.dataflow = true;
    } else if (std::strcmp(argv[i], "--fix-dry-run") == 0) {
      fix_dry_run = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--validate") == 0 && i + 1 < argc) {
      validate_path = argv[++i];
    } else if (std::strcmp(argv[i], "--suppress") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t at = spec.find('@');
      lint::RuleSuppression s;
      if (at == std::string::npos) {
        s.rule = "*";
        s.signal = spec;
      } else {
        s.rule = spec.substr(0, at);
        s.signal = spec.substr(at + 1);
      }
      if (s.signal.empty()) return usage(argv[0]);
      opts.suppressions.push_back(std::move(s));
    } else if (std::strcmp(argv[i], "--depth") == 0 && i + 1 < argc) {
      const std::string d = argv[++i];
      if (d == "elaboration") {
        opts.depth = lint::NetlistDepth::kElaboration;
      } else if (d == "probed") {
        opts.depth = lint::NetlistDepth::kProbed;
      } else {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (design != "switch" && design != "board" && design != "all") {
    return usage(argv[0]);
  }

  if (!validate_path.empty()) {
    bool ok = false;
    const std::string text = read_file(validate_path, ok);
    if (!ok) {
      std::fprintf(stderr, "castanet_lint: cannot read %s\n",
                   validate_path.c_str());
      return 2;
    }
    const std::string err = lint::validate_lint_json(text);
    if (!err.empty()) {
      std::fprintf(stderr, "castanet_lint: %s: %s\n", validate_path.c_str(),
                   err.c_str());
      return 2;
    }
    std::printf("castanet_lint: %s: valid lint report\n",
                validate_path.c_str());
    return 0;
  }

  if (!metrics_path.empty()) telemetry::Hub::instance().enable();

  std::vector<DesignReport> reports;
  std::vector<std::pair<std::string, board::ConfigDataSet>> configs;
  try {
    if (design == "switch" || design == "all") {
      rigs::SwitchRig rig;
      reports.push_back({"switch", lint::analyze_session(rig.session, opts)});
    }
    if (design == "board" || design == "all") {
      rigs::AccountingRig rig;
      reports.push_back({"board", lint::analyze_session(*rig.session, opts)});
      for (std::size_t i = 0; i < rig.session->backend_count(); ++i) {
        if (auto* brd = dynamic_cast<cosim::BoardBackend*>(
                &rig.session->backend(i))) {
          configs.emplace_back("board", brd->board().config());
        }
      }
    }
  } catch (const lint::LintError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (json) {
    std::printf("{\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      // Report::to_json is a complete object; indent it under the design key.
      std::string body = reports[i].report.to_json();
      if (!body.empty() && body.back() == '\n') body.pop_back();
      std::printf("\"%s\": %s%s\n", reports[i].name.c_str(), body.c_str(),
                  i + 1 < reports.size() ? "," : "");
    }
    std::printf("}\n");
  } else {
    for (const DesignReport& r : reports) {
      std::printf("== design: %s ==\n%s", r.name.c_str(),
                  r.report.to_text().c_str());
    }
  }

  if (fix_dry_run) {
    for (const auto& [name, cfg] : configs) {
      const lint::PinRemap remap = lint::propose_pin_remap(cfg);
      if (!remap.changed) {
        std::printf("== %s: no pin remap needed ==\n", name.c_str());
        continue;
      }
      std::printf("== %s: patched config (%zu slice move(s)%s) ==\n%s",
                  name.c_str(), remap.moves.size(),
                  remap.complete ? "" : "; some slices could not be placed",
                  lint::render_board_config(remap.patched).c_str());
    }
  }

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary);
    out << telemetry::Hub::instance().snapshot().to_json();
    if (!out) {
      std::fprintf(stderr, "castanet_lint: cannot write %s\n",
                   metrics_path.c_str());
      return 2;
    }
  }

  std::size_t failures = 0;
  if (!baseline_path.empty()) {
    try {
      failures += check_baseline(json::parse_file(baseline_path), reports);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "castanet_lint: bad baseline: %s\n", e.what());
      return 2;
    }
  }
  for (const DesignReport& r : reports) failures += r.report.errors();
  return failures == 0 ? 0 : 1;
}
